"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidIntervalError(ReproError, ValueError):
    """Raised when an interval's end point precedes its start point."""


class InvalidPartitioningError(ReproError, ValueError):
    """Raised when a partitioning is empty, unsorted, or non-contiguous."""


class UnknownPredicateError(ReproError, KeyError):
    """Raised when a predicate name does not denote an Allen relation."""


class QueryError(ReproError, ValueError):
    """Raised for malformed join queries (unknown relations, bad predicates,
    missing attributes, or contradictory conditions)."""


class UnsatisfiableQueryError(QueryError):
    """Raised when reasoning proves a query can never produce output.

    For example two conditions that enforce opposite less-than orders
    between the same pair of relations, or an Allen path-consistency
    contradiction.
    """


class PlanningError(ReproError, ValueError):
    """Raised when no algorithm can execute the given query class."""


class MapReduceError(ReproError, RuntimeError):
    """Raised when a simulated MapReduce job fails."""


class FileSystemError(MapReduceError):
    """Raised for errors in the simulated distributed file system."""


class WorkloadError(ReproError, ValueError):
    """Raised for invalid workload-generator configurations."""
