"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidIntervalError(ReproError, ValueError):
    """Raised when an interval's end point precedes its start point."""


class InvalidPartitioningError(ReproError, ValueError):
    """Raised when a partitioning is empty, unsorted, or non-contiguous."""


class UnknownPredicateError(ReproError, KeyError):
    """Raised when a predicate name does not denote an Allen relation."""


class QueryError(ReproError, ValueError):
    """Raised for malformed join queries (unknown relations, bad predicates,
    missing attributes, or contradictory conditions)."""


class UnsatisfiableQueryError(QueryError):
    """Raised when reasoning proves a query can never produce output.

    For example two conditions that enforce opposite less-than orders
    between the same pair of relations, or an Allen path-consistency
    contradiction.
    """


class PlanningError(ReproError, ValueError):
    """Raised when no algorithm can execute the given query class."""


class MapReduceError(ReproError, RuntimeError):
    """Raised when a simulated MapReduce job fails."""


class FileSystemError(MapReduceError):
    """Raised for errors in the simulated distributed file system."""


class FaultInjectedError(MapReduceError):
    """Raised when a :mod:`repro.faults` plan injects a failure into a
    task attempt.

    Carries the event ``kind`` (``"crash"`` / ``"corrupt-output"``) and
    the lifecycle ``point`` it fired at.  Within the retry budget these
    are caught by the task-attempt loop and the attempt is re-run; past
    the budget they propagate like any other task failure.
    """

    def __init__(self, kind: str, point: str) -> None:
        super().__init__(f"injected {kind} fault at {point}")
        self.kind = kind
        self.point = point

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.kind, self.point))


class TaskTimeoutError(MapReduceError):
    """Raised when a task attempt exceeds the configured per-task
    timeout (``--task-timeout`` / ``$REPRO_TASK_TIMEOUT``).

    Enforced at the attempt boundary; within the retry budget the
    attempt is re-run with the established backoff semantics, past the
    budget it propagates like any other task failure.
    """

    def __init__(
        self, job: str, phase: str, task_index: int,
        seconds: float, limit: float,
    ) -> None:
        super().__init__(
            f"{phase} task {task_index} of job {job!r} took "
            f"{seconds:.3f}s, exceeding the {limit:.3f}s task timeout"
        )
        self.job = job
        self.phase = phase
        self.task_index = task_index
        self.seconds = seconds
        self.limit = limit

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (
            type(self),
            (self.job, self.phase, self.task_index,
             self.seconds, self.limit),
        )


class WorkerPoolError(MapReduceError):
    """Raised when the ``processes`` executor's worker pool breaks.

    Unlike a bare pool failure this records *what was in flight*: the
    job name, the phase, and the task indices whose results had not been
    received when the pool died (with chunked dispatch this is the whole
    submitted batch — the pool cannot say which chunk crashed it).
    """

    def __init__(self, job: str, phase: str, pending_tasks, cause: str) -> None:
        pending = tuple(pending_tasks)
        shown = ", ".join(map(str, pending[:8]))
        if len(pending) > 8:
            shown += f", … ({len(pending)} total)"
        super().__init__(
            f"worker pool crashed during the {phase} phase of job {job!r} "
            f"(pending task indices: [{shown}]): {cause}"
        )
        self.job = job
        self.phase = phase
        self.pending_tasks = pending
        self.cause = cause


class WorkloadError(ReproError, ValueError):
    """Raised for invalid workload-generator configurations."""
