"""Allen-relationship histograms and temporal profiles.

The paper's conclusion lists "more avenues for analyzing interval data on
map-reduce, e.g. temporal pattern mining" as future work.  This module
provides the two primitives such analyses start from:

* :func:`allen_histogram` — for two interval sets, the exact count of
  pairs standing in each of the thirteen Allen relations.  Sequence
  relations (quadratically many pairs) are counted *without enumeration*
  by rank counting over sorted endpoints; colocation relations are
  counted from the intersection sweep (output-sensitive).  The histogram
  sums to ``len(left) * len(right)`` — a built-in self-check.
* :func:`concurrency_profile` — how many intervals are simultaneously
  active over time, as step-function breakpoints.  The benchmark scaling
  notes in EXPERIMENTS.md are derived from exactly this quantity
  (offered load / join density).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.intervals.allen import ALLEN_PREDICATES, relation_between
from repro.intervals.interval import Interval
from repro.intervals.sweep import intersecting_pairs

__all__ = ["allen_histogram", "concurrency_profile", "peak_concurrency"]


def _count_before(left: Sequence[Interval], right: Sequence[Interval]) -> int:
    """#pairs with left.end < right.start, via sorted rank counting."""
    if not left or not right:
        return 0
    ends = np.sort(np.array([iv.end for iv in left], dtype=float))
    starts = np.array([iv.start for iv in right], dtype=float)
    # For each right start, the number of left ends strictly below it.
    return int(np.searchsorted(ends, starts, side="left").sum())


def allen_histogram(
    left: Sequence[Interval], right: Sequence[Interval]
) -> Dict[str, int]:
    """Exact per-relation pair counts between two interval sets.

    >>> h = allen_histogram([Interval(0, 2)], [Interval(3, 5), Interval(1, 4)])
    >>> h["before"], h["overlaps"]
    (1, 1)
    """
    counts: Counter = Counter({name: 0 for name in ALLEN_PREDICATES})
    counts["before"] = _count_before(left, right)
    counts["after"] = _count_before(right, left)
    left_items = [(iv, index) for index, iv in enumerate(left)]
    right_items = [(iv, index) for index, iv in enumerate(right)]
    for (liv, _), (riv, _) in intersecting_pairs(left_items, right_items):
        counts[relation_between(liv, riv).name] += 1
    return dict(counts)


def concurrency_profile(
    intervals: Iterable[Interval],
) -> List[Tuple[float, int]]:
    """Step-function breakpoints ``(time, active_count)``.

    The returned count is the number of intervals active from ``time``
    (inclusive) until the next breakpoint.  Closed-interval semantics: an
    interval is active at both endpoints, so at a point where one
    interval ends and another starts both count.

    >>> concurrency_profile([Interval(0, 2), Interval(1, 3)])
    [(0, 1), (1, 2), (2.0000..., 1), (3.0000..., 0)]  # doctest: +SKIP
    """
    events: List[Tuple[float, int]] = []
    for iv in intervals:
        events.append((iv.start, +1))
        # Closed end: deactivate just past the endpoint.
        events.append((np.nextafter(iv.end, np.inf), -1))
    events.sort()
    profile: List[Tuple[float, int]] = []
    active = 0
    index = 0
    while index < len(events):
        time = events[index][0]
        while index < len(events) and events[index][0] == time:
            active += events[index][1]
            index += 1
        profile.append((time, active))
    return profile


def peak_concurrency(intervals: Iterable[Interval]) -> int:
    """The maximum number of simultaneously active intervals."""
    profile = concurrency_profile(intervals)
    return max((count for _, count in profile), default=0)
