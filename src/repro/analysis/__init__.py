"""Interval analytics beyond joins: Allen-relationship histograms and
temporal concurrency profiles (the paper's future-work direction)."""

from repro.analysis.histogram import (
    allen_histogram,
    concurrency_profile,
    peak_concurrency,
)

__all__ = ["allen_histogram", "concurrency_profile", "peak_concurrency"]
