"""Allen's interval algebra (Allen, CACM 1983).

This module defines the thirteen basic relations between two intervals,
together with the metadata the paper's algorithms rely on:

* whether the relation is a *colocation* predicate (the two intervals must
  share at least one point) or a *sequence* predicate (``before``/``after``,
  the intervals are disjoint) — Section 1 of the paper;
* the *less-than-order* each predicate enforces between its two operand
  relations (Section 5.1, Figure 1) — i.e. which operand is guaranteed to
  start no later than the other;
* the project/split/replicate operator assignment used for 2-way joins
  (Section 4, Figure 1).

The thirteen relations are mutually exclusive and jointly exhaustive: for
any two intervals exactly one relation holds (property-tested in
``tests/properties``).

Operator-table derivation
-------------------------
The figure in the paper's source text is garbled, so the table is re-derived
from first principles (see DESIGN.md):

* For every colocation predicate enforcing ``X < Y`` the start point of the
  later interval lies within the earlier interval's closed span, hence
  ``Split(earlier) & Project(later)`` always colocates a satisfying pair at
  the reducer owning the later interval's start partition.
* When the predicate forces equal start points (``starts``, ``started_by``,
  ``equals``) both intervals project onto the same partition, so
  ``Project & Project`` suffices.
* For sequence predicates the satisfying partner may be arbitrarily far to
  the right, hence ``Replicate(earlier) & Project(later)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Tuple, Union

from repro.errors import UnknownPredicateError
from repro.intervals.interval import Interval

__all__ = [
    "MapOperator",
    "Order",
    "AllenPredicate",
    "ALLEN_PREDICATES",
    "COLOCATION_PREDICATES",
    "SEQUENCE_PREDICATES",
    "get_predicate",
    "relation_between",
    "BEFORE",
    "AFTER",
    "MEETS",
    "MET_BY",
    "OVERLAPS",
    "OVERLAPPED_BY",
    "STARTS",
    "STARTED_BY",
    "DURING",
    "CONTAINS",
    "FINISHES",
    "FINISHED_BY",
    "EQUALS",
]


class MapOperator(enum.Enum):
    """The three communication primitives of Section 3."""

    PROJECT = "project"
    SPLIT = "split"
    REPLICATE = "replicate"


class Order(enum.Enum):
    """Which operand of ``A P B`` is enforced to start no later.

    ``LEFT_FIRST`` means every satisfying pair has ``A.start <= B.start``;
    ``RIGHT_FIRST`` the converse.  Predicates that force equal start points
    enforce both.
    """

    LEFT_FIRST = "left_first"
    RIGHT_FIRST = "right_first"


@dataclass(frozen=True)
class AllenPredicate:
    """One of the thirteen basic relations of Allen's algebra.

    Attributes
    ----------
    name:
        Canonical lowercase name (``"overlaps"``, ``"before"``, ...).
    symbol:
        Allen's traditional one/two-letter symbol (``"o"``, ``"<"``, ...).
    holds:
        The truth function over a pair of :class:`Interval` values.
    inverse_name:
        Name of the converse relation: ``P(a, b)`` iff ``inverse(b, a)``.
    is_sequence:
        True for ``before``/``after``; all other relations are colocation
        predicates (satisfying intervals share at least one point).
    orders:
        The less-than-orders the predicate enforces (Figure 1).
    left_operator / right_operator:
        The Section-4 map operator applied to the left/right relation when
        computing the 2-way join ``A P B``.
    """

    name: str
    symbol: str
    holds: Callable[[Interval, Interval], bool]
    inverse_name: str
    is_sequence: bool
    orders: FrozenSet[Order]
    left_operator: MapOperator
    right_operator: MapOperator

    # ------------------------------------------------------------------
    @property
    def is_colocation(self) -> bool:
        """True for the eleven predicates requiring a shared point."""
        return not self.is_sequence

    @property
    def inverse(self) -> "AllenPredicate":
        """The converse relation (``before`` <-> ``after`` etc.)."""
        return ALLEN_PREDICATES[self.inverse_name]

    def enforces_left_first(self) -> bool:
        """Whether every satisfying pair has ``left.start <= right.start``."""
        return Order.LEFT_FIRST in self.orders

    def enforces_right_first(self) -> bool:
        """Whether every satisfying pair has ``right.start <= left.start``."""
        return Order.RIGHT_FIRST in self.orders

    def __call__(self, left: Interval, right: Interval) -> bool:
        return self.holds(left, right)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# ----------------------------------------------------------------------
# Truth functions.  u = left operand, v = right operand.
# ----------------------------------------------------------------------

def _before(u: Interval, v: Interval) -> bool:
    return u.end < v.start


def _after(u: Interval, v: Interval) -> bool:
    return v.end < u.start


def _meets(u: Interval, v: Interval) -> bool:
    # The two extra strict inequalities keep the thirteen relations mutually
    # exclusive for closed intervals that degenerate to points: a point
    # touching another interval's endpoint classifies as starts/finishes
    # (shared endpoint semantics) rather than meets.
    return u.end == v.start and u.start < v.start and v.start < v.end


def _met_by(u: Interval, v: Interval) -> bool:
    return _meets(v, u)


def _overlaps(u: Interval, v: Interval) -> bool:
    return u.start < v.start and v.start < u.end and u.end < v.end


def _overlapped_by(u: Interval, v: Interval) -> bool:
    return _overlaps(v, u)


def _starts(u: Interval, v: Interval) -> bool:
    return u.start == v.start and u.end < v.end


def _started_by(u: Interval, v: Interval) -> bool:
    return _starts(v, u)


def _during(u: Interval, v: Interval) -> bool:
    return v.start < u.start and u.end < v.end


def _contains(u: Interval, v: Interval) -> bool:
    return _during(v, u)


def _finishes(u: Interval, v: Interval) -> bool:
    return u.end == v.end and v.start < u.start


def _finished_by(u: Interval, v: Interval) -> bool:
    return _finishes(v, u)


def _equals(u: Interval, v: Interval) -> bool:
    return u.start == v.start and u.end == v.end


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_LEFT = frozenset({Order.LEFT_FIRST})
_RIGHT = frozenset({Order.RIGHT_FIRST})
_BOTH = frozenset({Order.LEFT_FIRST, Order.RIGHT_FIRST})

_P = MapOperator.PROJECT
_S = MapOperator.SPLIT
_R = MapOperator.REPLICATE


def _predicate(
    name: str,
    symbol: str,
    fn: Callable[[Interval, Interval], bool],
    inverse: str,
    sequence: bool,
    orders: FrozenSet[Order],
    ops: Tuple[MapOperator, MapOperator],
) -> AllenPredicate:
    return AllenPredicate(
        name=name,
        symbol=symbol,
        holds=fn,
        inverse_name=inverse,
        is_sequence=sequence,
        orders=orders,
        left_operator=ops[0],
        right_operator=ops[1],
    )


BEFORE = _predicate("before", "<", _before, "after", True, _LEFT, (_R, _P))
AFTER = _predicate("after", ">", _after, "before", True, _RIGHT, (_P, _R))
MEETS = _predicate("meets", "m", _meets, "met_by", False, _LEFT, (_S, _P))
MET_BY = _predicate("met_by", "mi", _met_by, "meets", False, _RIGHT, (_P, _S))
OVERLAPS = _predicate(
    "overlaps", "o", _overlaps, "overlapped_by", False, _LEFT, (_S, _P)
)
OVERLAPPED_BY = _predicate(
    "overlapped_by", "oi", _overlapped_by, "overlaps", False, _RIGHT, (_P, _S)
)
STARTS = _predicate("starts", "s", _starts, "started_by", False, _BOTH, (_P, _P))
STARTED_BY = _predicate(
    "started_by", "si", _started_by, "starts", False, _BOTH, (_P, _P)
)
DURING = _predicate("during", "d", _during, "contains", False, _RIGHT, (_P, _S))
CONTAINS = _predicate("contains", "di", _contains, "during", False, _LEFT, (_S, _P))
FINISHES = _predicate(
    "finishes", "f", _finishes, "finished_by", False, _RIGHT, (_P, _S)
)
FINISHED_BY = _predicate(
    "finished_by", "fi", _finished_by, "finishes", False, _LEFT, (_S, _P)
)
EQUALS = _predicate("equals", "=", _equals, "equals", False, _BOTH, (_P, _P))


ALLEN_PREDICATES: Dict[str, AllenPredicate] = {
    p.name: p
    for p in (
        BEFORE,
        AFTER,
        MEETS,
        MET_BY,
        OVERLAPS,
        OVERLAPPED_BY,
        STARTS,
        STARTED_BY,
        DURING,
        CONTAINS,
        FINISHES,
        FINISHED_BY,
        EQUALS,
    )
}

#: Aliases accepted by :func:`get_predicate` in addition to canonical names.
_ALIASES: Dict[str, str] = {
    "contained_by": "during",
    "containedby": "during",
    "overlapped-by": "overlapped_by",
    "met-by": "met_by",
    "started-by": "started_by",
    "finished-by": "finished_by",
    "equal": "equals",
    "<": "before",
    ">": "after",
    "m": "meets",
    "mi": "met_by",
    "o": "overlaps",
    "oi": "overlapped_by",
    "s": "starts",
    "si": "started_by",
    "d": "during",
    "di": "contains",
    "f": "finishes",
    "fi": "finished_by",
    "=": "equals",
    "==": "equals",
}

COLOCATION_PREDICATES: Tuple[AllenPredicate, ...] = tuple(
    p for p in ALLEN_PREDICATES.values() if p.is_colocation
)
SEQUENCE_PREDICATES: Tuple[AllenPredicate, ...] = (BEFORE, AFTER)


def get_predicate(name: Union[str, AllenPredicate]) -> AllenPredicate:
    """Look up an Allen predicate by name, symbol, or instance.

    Accepts canonical names (``"overlaps"``), Allen symbols (``"o"``),
    common aliases (``"contained_by"``), and is case-insensitive.

    Raises
    ------
    UnknownPredicateError
        If the name does not denote one of the thirteen relations.
    """
    if isinstance(name, AllenPredicate):
        return name
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return ALLEN_PREDICATES[key]
    except KeyError:
        raise UnknownPredicateError(
            f"unknown Allen predicate {name!r}; expected one of "
            f"{sorted(ALLEN_PREDICATES)}"
        ) from None


def relation_between(u: Interval, v: Interval) -> AllenPredicate:
    """The unique basic relation holding between two intervals.

    For closed intervals — including degenerate point intervals — exactly
    one of the thirteen relations holds under this library's truth
    functions (property-tested in ``tests/properties``).
    """
    for predicate in ALLEN_PREDICATES.values():
        if predicate.holds(u, v):
            return predicate
    raise AssertionError(  # pragma: no cover - exhaustiveness is tested
        f"no Allen relation holds between {u} and {v}"
    )


def relations_holding(u: Interval, v: Interval) -> List[AllenPredicate]:
    """All basic relations holding between two intervals (normally one)."""
    return [p for p in ALLEN_PREDICATES.values() if p.holds(u, v)]


def classify_predicates(
    predicates: Iterable[Union[str, AllenPredicate]],
) -> Tuple[bool, bool]:
    """Return ``(has_colocation, has_sequence)`` over a predicate collection."""
    has_colocation = False
    has_sequence = False
    for pred in predicates:
        predicate = get_predicate(pred)
        if predicate.is_sequence:
            has_sequence = True
        else:
            has_colocation = True
    return has_colocation, has_sequence
