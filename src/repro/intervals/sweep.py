"""Plane-sweep primitives and per-predicate kernels for 2-way interval joins.

Every reducer-local join eventually enumerates interval pairs satisfying a
single Allen predicate.  Historically this module offered one generic
path — filter the intersection sweep by ``predicate.holds`` — which pays
for every intersecting pair even when the predicate is far more
selective (``meets`` touches only pairs sharing one endpoint; ``equals``
only identical intervals).  Following the endpoint-index designs of
Piatov et al. (cache-efficient sweeping for extended Allen predicates),
each predicate now has a dedicated *kernel* in a registry:

* :func:`intersecting_pairs` — the classical endpoint sweep producing every
  pair of intervals (one from each side) sharing at least one point, in
  ``O(n log n + k)``.  Still the fallback for predicates with no kernel.
* :func:`before_pairs` — output-sensitive enumeration for the sequence
  predicate ``before`` (``after`` swaps sides), using a sorted prefix scan.
* :data:`KERNELS` — one output-sensitive kernel per Allen predicate:
  endpoint hash-groups for ``equals``/``starts``/``finishes`` families,
  a sorted-start bisect for ``meets``/``overlaps`` families, and a
  dual-sorted prefix/suffix scan for ``during``/``contains``.  Inverse
  predicates reuse their converse's kernel with the sides swapped.

:func:`join_pairs` dispatches through the registry; callers never need to
know which kernel ran.  All kernels enumerate exactly the pairs the
predicate's truth function accepts (property-tested against the
brute-force nested loop), so routing a join through :func:`join_pairs`
is always behaviour-preserving.

Payloads travel with the intervals so callers can join arbitrary records.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.intervals.allen import AllenPredicate, get_predicate
from repro.intervals.interval import Interval

__all__ = [
    "intersecting_pairs",
    "before_pairs",
    "column_items",
    "join_pairs",
    "KERNELS",
    "register_kernel",
    "kernel_for",
]


def column_items(starts, ends, payloads) -> List[Tuple[Interval, int]]:
    """Sweep items from endpoint columns: ``(Interval, payload)`` pairs
    in column order.

    The columnar data plane's reducers call the kernels with payload
    *ids* instead of row objects — every kernel orders items only by
    ``item[0].start`` / ``item[0].end`` (stably), so enumeration over
    ``(Interval, gid)`` items is pair-for-pair identical to the records
    plane's ``(Interval, row)`` items.
    """
    return [
        (Interval(start, end), payload)
        for start, end, payload in zip(
            starts.tolist(), ends.tolist(), payloads.tolist()
        )
    ]

L = TypeVar("L")
R = TypeVar("R")

Item = Tuple[Interval, L]
#: A kernel enumerates the satisfying cross-side pairs of one predicate.
Kernel = Callable[
    [Sequence[Tuple[Interval, L]], Sequence[Tuple[Interval, R]]],
    Iterator[Tuple[Tuple[Interval, L], Tuple[Interval, R]]],
]


def intersecting_pairs(
    left: Sequence[Tuple[Interval, L]],
    right: Sequence[Tuple[Interval, R]],
) -> Iterator[Tuple[Tuple[Interval, L], Tuple[Interval, R]]]:
    """All cross-side pairs of intervals sharing at least one point.

    Implements the standard sort-merge interval intersection: both sides
    are sorted by start; for each item the opposite side's active window
    (items starting no later whose end has not yet passed) is scanned.
    Each intersecting pair is produced exactly once.
    """
    ls = sorted(left, key=lambda item: item[0].start)
    rs = sorted(right, key=lambda item: item[0].start)
    i = j = 0
    while i < len(ls) and j < len(rs):
        li, ri = ls[i], rs[j]
        if li[0].start <= ri[0].start:
            # li is the next interval to open; pair it with every already-
            # open right interval still covering li's start.
            for k in range(j, len(rs)):
                other = rs[k]
                if other[0].start > li[0].end:
                    break
                if other[0].end >= li[0].start:
                    yield li, other
            i += 1
        else:
            for k in range(i, len(ls)):
                other = ls[k]
                if other[0].start > ri[0].end:
                    break
                if other[0].end >= ri[0].start:
                    yield other, ri
            j += 1
    # Drain the remaining side against the other's still-open intervals.
    while i < len(ls):
        li = ls[i]
        for k in range(j, len(rs)):
            other = rs[k]
            if other[0].start > li[0].end:
                break
            if other[0].end >= li[0].start:
                yield li, other
        i += 1
    while j < len(rs):
        ri = rs[j]
        for k in range(i, len(ls)):
            other = ls[k]
            if other[0].start > ri[0].end:
                break
            if other[0].end >= ri[0].start:
                yield other, ri
        j += 1


def before_pairs(
    left: Sequence[Tuple[Interval, L]],
    right: Sequence[Tuple[Interval, R]],
) -> Iterator[Tuple[Tuple[Interval, L], Tuple[Interval, R]]]:
    """All pairs with ``left.end < right.start`` (Allen ``before``).

    Output-sensitive: the left side is sorted by end point once; each right
    interval then pairs with the strict prefix of left intervals ending
    before its start.
    """
    ls = sorted(left, key=lambda item: item[0].end)
    ends = [item[0].end for item in ls]
    for ri in right:
        cutoff = bisect.bisect_left(ends, ri[0].start)
        for k in range(cutoff):
            yield ls[k], ri


# ----------------------------------------------------------------------
# Per-predicate kernels.  Conventions: ``u`` is the left operand, ``v``
# the right; every kernel enumerates exactly the pairs where the
# predicate's truth function holds, and inverse predicates reuse their
# converse's kernel through :func:`_swapped`.
# ----------------------------------------------------------------------

def _swapped(kernel: Kernel) -> Kernel:
    """The converse kernel: ``P(u, v)`` iff ``inverse(v, u)``, so run the
    inverse's kernel with the sides exchanged and flip each pair back."""

    def swapped(left, right):
        for ritem, litem in kernel(right, left):
            yield litem, ritem

    return swapped


def _meets_kernel(left, right):
    """``u.end == v.start`` with both intervals non-degenerate on the
    touching side: index rights by start, bisect each left's end."""
    rs = sorted(
        (item for item in right if item[0].start < item[0].end),
        key=lambda item: item[0].start,
    )
    starts = [item[0].start for item in rs]
    for litem in left:
        u = litem[0]
        if not u.start < u.end:
            continue
        lo = bisect.bisect_left(starts, u.end)
        hi = bisect.bisect_right(starts, u.end)
        for k in range(lo, hi):
            yield litem, rs[k]


def _overlaps_kernel(left, right):
    """``u.start < v.start < u.end < v.end``: the candidate window of each
    left is the rights starting strictly inside ``u``; the last condition
    is checked per candidate (every candidate already intersects)."""
    rs = sorted(right, key=lambda item: item[0].start)
    starts = [item[0].start for item in rs]
    for litem in left:
        u = litem[0]
        lo = bisect.bisect_right(starts, u.start)
        hi = bisect.bisect_left(starts, u.end)
        for k in range(lo, hi):
            if rs[k][0].end > u.end:
                yield litem, rs[k]


def _starts_kernel(left, right):
    """``u.start == v.start and u.end < v.end``: hash-group rights by
    start point, bisect the group's sorted ends."""
    by_start: Dict[float, List] = defaultdict(list)
    for item in right:
        by_start[item[0].start].append(item)
    ends_by_start: Dict[float, List[float]] = {}
    for start, group in by_start.items():
        group.sort(key=lambda item: item[0].end)
        ends_by_start[start] = [item[0].end for item in group]
    for litem in left:
        u = litem[0]
        group = by_start.get(u.start)
        if not group:
            continue
        for k in range(bisect.bisect_right(ends_by_start[u.start], u.end), len(group)):
            yield litem, group[k]


def _finishes_kernel(left, right):
    """``u.end == v.end and v.start < u.start``: hash-group rights by end
    point, bisect the group's sorted starts."""
    by_end: Dict[float, List] = defaultdict(list)
    for item in right:
        by_end[item[0].end].append(item)
    starts_by_end: Dict[float, List[float]] = {}
    for end, group in by_end.items():
        group.sort(key=lambda item: item[0].start)
        starts_by_end[end] = [item[0].start for item in group]
    for litem in left:
        u = litem[0]
        group = by_end.get(u.end)
        if not group:
            continue
        for k in range(bisect.bisect_left(starts_by_end[u.end], u.start)):
            yield litem, group[k]


def _equals_kernel(left, right):
    """Hash join on the ``(start, end)`` pair."""
    table: Dict[Tuple[float, float], List] = defaultdict(list)
    for item in right:
        table[(item[0].start, item[0].end)].append(item)
    for litem in left:
        u = litem[0]
        for ritem in table.get((u.start, u.end), ()):
            yield litem, ritem


def _during_kernel(left, right):
    """``v.start < u.start and u.end < v.end``: two sorted endpoint
    indexes over the right side; each left scans whichever one-sided
    candidate set is smaller and filters by the other condition."""
    by_start = sorted(right, key=lambda item: item[0].start)
    starts = [item[0].start for item in by_start]
    by_end = sorted(right, key=lambda item: item[0].end)
    ends = [item[0].end for item in by_end]
    n = len(right)
    for litem in left:
        u = litem[0]
        p = bisect.bisect_left(starts, u.start)  # rights starting before u
        q = bisect.bisect_right(ends, u.end)  # n - q rights ending after u
        if p <= n - q:
            for k in range(p):
                if by_start[k][0].end > u.end:
                    yield litem, by_start[k]
        else:
            for k in range(q, n):
                if by_end[k][0].start < u.start:
                    yield litem, by_end[k]


#: Kernel registry, keyed by canonical predicate name.  ``join_pairs``
#: dispatches here; predicates without an entry fall back to filtering
#: the intersection sweep.
KERNELS: Dict[str, Kernel] = {}


def register_kernel(
    predicate: Union[str, AllenPredicate], kernel: Kernel
) -> None:
    """Register (or replace) the kernel enumerating one predicate's pairs.

    The kernel must yield exactly the cross-side pairs for which the
    predicate's truth function holds — :func:`join_pairs` trusts it
    without re-checking.
    """
    KERNELS[get_predicate(predicate).name] = kernel


def kernel_for(
    predicate: Union[str, AllenPredicate],
) -> Optional[Kernel]:
    """The registered kernel for a predicate, or ``None`` (fallback)."""
    return KERNELS.get(get_predicate(predicate).name)


register_kernel("before", before_pairs)
register_kernel("after", _swapped(before_pairs))
register_kernel("meets", _meets_kernel)
register_kernel("met_by", _swapped(_meets_kernel))
register_kernel("overlaps", _overlaps_kernel)
register_kernel("overlapped_by", _swapped(_overlaps_kernel))
register_kernel("starts", _starts_kernel)
register_kernel("started_by", _swapped(_starts_kernel))
register_kernel("during", _during_kernel)
register_kernel("contains", _swapped(_during_kernel))
register_kernel("finishes", _finishes_kernel)
register_kernel("finished_by", _swapped(_finishes_kernel))
register_kernel("equals", _equals_kernel)


def filtered_intersecting_pairs(
    left: Sequence[Tuple[Interval, L]],
    right: Sequence[Tuple[Interval, R]],
    predicate: Union[str, AllenPredicate],
) -> Iterator[Tuple[Tuple[Interval, L], Tuple[Interval, R]]]:
    """The generic colocation path: filter the intersection sweep.

    Correct for every colocation predicate (their satisfying pairs all
    intersect); kept as the fallback for unregistered predicates.
    """
    pred = get_predicate(predicate)
    for litem, ritem in intersecting_pairs(left, right):
        if pred.holds(litem[0], ritem[0]):
            yield litem, ritem


def join_pairs(
    left: Sequence[Tuple[Interval, L]],
    right: Sequence[Tuple[Interval, R]],
    predicate: Union[str, AllenPredicate],
) -> Iterator[Tuple[Tuple[Interval, L], Tuple[Interval, R]]]:
    """All cross-side pairs satisfying one Allen predicate.

    Dispatches through :data:`KERNELS`; predicates without a registered
    kernel filter the intersection stream.
    """
    pred = get_predicate(predicate)
    kernel = KERNELS.get(pred.name)
    if kernel is not None:
        yield from kernel(left, right)
    else:
        yield from filtered_intersecting_pairs(left, right, pred)
