"""Plane-sweep primitives for 2-way interval joins.

Every reducer-local join eventually enumerates interval pairs satisfying a
single Allen predicate.  Two access paths are provided:

* :func:`intersecting_pairs` — the classical endpoint sweep producing every
  pair of intervals (one from each side) sharing at least one point, in
  ``O(n log n + k)``.  All eleven colocation predicates imply intersection,
  so their joins filter this stream.
* :func:`before_pairs` — output-sensitive enumeration for the sequence
  predicate ``before`` (``after`` is handled by swapping sides), using a
  sorted prefix scan.

Payloads travel with the intervals so callers can join arbitrary records.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Sequence, Tuple, TypeVar, Union

from repro.intervals.allen import AFTER, BEFORE, AllenPredicate, get_predicate
from repro.intervals.interval import Interval

__all__ = ["intersecting_pairs", "before_pairs", "join_pairs"]

L = TypeVar("L")
R = TypeVar("R")

Item = Tuple[Interval, L]


def intersecting_pairs(
    left: Sequence[Tuple[Interval, L]],
    right: Sequence[Tuple[Interval, R]],
) -> Iterator[Tuple[Tuple[Interval, L], Tuple[Interval, R]]]:
    """All cross-side pairs of intervals sharing at least one point.

    Implements the standard sort-merge interval intersection: both sides
    are sorted by start; for each item the opposite side's active window
    (items starting no later whose end has not yet passed) is scanned.
    Each intersecting pair is produced exactly once.
    """
    ls = sorted(left, key=lambda item: item[0].start)
    rs = sorted(right, key=lambda item: item[0].start)
    i = j = 0
    while i < len(ls) and j < len(rs):
        li, ri = ls[i], rs[j]
        if li[0].start <= ri[0].start:
            # li is the next interval to open; pair it with every already-
            # open right interval still covering li's start.
            for k in range(j, len(rs)):
                other = rs[k]
                if other[0].start > li[0].end:
                    break
                if other[0].end >= li[0].start:
                    yield li, other
            i += 1
        else:
            for k in range(i, len(ls)):
                other = ls[k]
                if other[0].start > ri[0].end:
                    break
                if other[0].end >= ri[0].start:
                    yield other, ri
            j += 1
    # Drain the remaining side against the other's still-open intervals.
    while i < len(ls):
        li = ls[i]
        for k in range(j, len(rs)):
            other = rs[k]
            if other[0].start > li[0].end:
                break
            if other[0].end >= li[0].start:
                yield li, other
        i += 1
    while j < len(rs):
        ri = rs[j]
        for k in range(i, len(ls)):
            other = ls[k]
            if other[0].start > ri[0].end:
                break
            if other[0].end >= ri[0].start:
                yield other, ri
        j += 1


def before_pairs(
    left: Sequence[Tuple[Interval, L]],
    right: Sequence[Tuple[Interval, R]],
) -> Iterator[Tuple[Tuple[Interval, L], Tuple[Interval, R]]]:
    """All pairs with ``left.end < right.start`` (Allen ``before``).

    Output-sensitive: the left side is sorted by end point once; each right
    interval then pairs with the strict prefix of left intervals ending
    before its start.
    """
    ls = sorted(left, key=lambda item: item[0].end)
    ends = [item[0].end for item in ls]
    for ri in right:
        cutoff = bisect.bisect_left(ends, ri[0].start)
        for k in range(cutoff):
            yield ls[k], ri


def join_pairs(
    left: Sequence[Tuple[Interval, L]],
    right: Sequence[Tuple[Interval, R]],
    predicate: Union[str, AllenPredicate],
) -> Iterator[Tuple[Tuple[Interval, L], Tuple[Interval, R]]]:
    """All cross-side pairs satisfying one Allen predicate.

    Dispatches to the appropriate sweep: colocation predicates filter the
    intersection stream; ``before``/``after`` use the prefix scan.
    """
    pred = get_predicate(predicate)
    if pred.name == BEFORE.name:
        yield from before_pairs(left, right)
    elif pred.name == AFTER.name:
        for li, ri in before_pairs(right, left):
            yield ri, li
    else:
        for li, ri in intersecting_pairs(left, right):
            if pred.holds(li[0], ri[0]):
                yield li, ri
