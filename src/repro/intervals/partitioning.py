"""Partitioning of the time range and the Project / Split / Replicate
communication primitives (Section 3 of the paper).

A partitioning divides the complete time range ``[t0, tn)`` into ``l``
contiguous partition-intervals ``[t_i, t_{i+1})``; each partition-interval
doubles as a reducer id.  A map function processes an interval by
*projecting* (one pair, the partition holding the start point), *splitting*
(one pair per partition the interval intersects) or *replicating* (one pair
per partition from the start partition to the end of time) it.

Two construction strategies are provided:

* :meth:`Partitioning.uniform` — equi-width partitions, the paper's setup;
* :meth:`Partitioning.equi_depth` — boundaries at quantiles of observed
  start points, an extension for skewed data evaluated in ablation A2.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidPartitioningError
from repro.intervals.interval import Interval

__all__ = ["Partitioning"]


@dataclass(frozen=True)
class Partitioning:
    """A sequence of contiguous half-open partition-intervals.

    The partitioning is stored as its boundary points
    ``b0 < b1 < ... < bl``; partition ``i`` is ``[b_i, b_{i+1})``.  The last
    partition is treated as closed on the right so that every interval whose
    points lie within ``[b0, bl]`` maps somewhere; intervals outside the
    range are clamped to the first/last partition (mirroring how a Hadoop
    range partitioner would route out-of-range keys).
    """

    boundaries: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) < 2:
            raise InvalidPartitioningError(
                "a partitioning needs at least two boundary points"
            )
        for lo, hi in zip(self.boundaries, self.boundaries[1:]):
            if hi <= lo:
                raise InvalidPartitioningError(
                    f"boundaries must strictly increase, got {lo!r} >= {hi!r}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, t_min: float, t_max: float, parts: int) -> "Partitioning":
        """Equi-width partitioning of ``[t_min, t_max)`` into ``parts``."""
        if parts < 1:
            raise InvalidPartitioningError("parts must be >= 1")
        if t_max <= t_min:
            raise InvalidPartitioningError("t_max must exceed t_min")
        step = (t_max - t_min) / parts
        bounds = [t_min + i * step for i in range(parts)]
        bounds.append(t_max)
        return cls(tuple(bounds))

    @classmethod
    def equi_depth(
        cls, start_points: Sequence[float], parts: int
    ) -> "Partitioning":
        """Partition boundaries at quantiles of the observed start points.

        Produces partitions receiving roughly equal numbers of projected
        intervals even under skew.  Duplicate quantiles (heavy ties) are
        collapsed, so fewer than ``parts`` partitions may result.
        """
        if parts < 1:
            raise InvalidPartitioningError("parts must be >= 1")
        points = np.asarray(sorted(start_points), dtype=float)
        if points.size == 0:
            raise InvalidPartitioningError("equi_depth needs at least one point")
        lo = float(points[0])
        hi = float(points[-1])
        if hi <= lo:
            hi = lo + 1.0
        quantiles = np.quantile(points, np.linspace(0.0, 1.0, parts + 1))
        bounds: List[float] = [lo]
        for q in quantiles[1:-1]:
            q = float(q)
            if q > bounds[-1]:
                bounds.append(q)
        # Right edge must strictly exceed the largest start point so the
        # maximum projects into the final partition, not past it.
        edge = hi + max(1e-9, abs(hi) * 1e-12)
        if edge <= bounds[-1]:
            edge = bounds[-1] + 1.0
        bounds.append(edge)
        return cls(tuple(bounds))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.boundaries) - 1

    def partition_interval(self, index: int) -> Interval:
        """The closed hull ``[b_i, b_{i+1}]`` of partition ``index``.

        The right boundary point belongs to the *next* partition for
        projection purposes, but an interval touching it at a single point
        still colocates there, which is what Split must capture.
        """
        if not 0 <= index < len(self):
            raise IndexError(f"partition index {index} out of range")
        return Interval(self.boundaries[index], self.boundaries[index + 1])

    @property
    def t_min(self) -> float:
        return self.boundaries[0]

    @property
    def t_max(self) -> float:
        return self.boundaries[-1]

    # ------------------------------------------------------------------
    # Point / interval location
    # ------------------------------------------------------------------
    def locate(self, t: float) -> int:
        """The partition whose half-open range contains point ``t``.

        Points left of the range clamp to partition 0; points at or past
        the final boundary clamp to the last partition.
        """
        if t < self.boundaries[0]:
            return 0
        index = bisect.bisect_right(self.boundaries, t) - 1
        return min(index, len(self) - 1)

    def locate_array(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`locate` over a float64 column.

        One ``searchsorted`` replaces the per-point bisect on the
        columnar data plane; results are element-wise identical to
        :meth:`locate` (``side="right"`` matches ``bisect_right`` and the
        clip reproduces both clamps)."""
        bounds = np.asarray(self.boundaries, dtype=np.float64)
        index = np.searchsorted(bounds, points, side="right") - 1
        return np.clip(index, 0, len(self) - 1).astype(np.int64)

    # ------------------------------------------------------------------
    # The three primitives (Section 3)
    # ------------------------------------------------------------------
    def project(self, interval: Interval) -> int:
        """Project: the single partition holding the interval's start."""
        return self.locate(interval.start)

    def split(self, interval: Interval) -> range:
        """Split: every partition sharing at least one point with the
        interval, as a contiguous ``range`` of partition indices."""
        first = self.locate(interval.start)
        last = self.locate(interval.end)
        return range(first, last + 1)

    def replicate(self, interval: Interval) -> range:
        """Replicate: every partition having a point ``>=`` the interval's
        start — the start partition and everything after it."""
        return range(self.locate(interval.start), len(self))

    # ------------------------------------------------------------------
    def crosses_right(self, interval: Interval, index: int) -> bool:
        """Whether the interval's end point lies in a partition after
        ``index`` (condition B1 of Section 5.3)."""
        return self.locate(interval.end) > index

    def crosses_left(self, interval: Interval, index: int) -> bool:
        """Whether the interval's start point lies in a partition before
        ``index`` (condition B2 of Section 5.3)."""
        return self.locate(interval.start) < index

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partitioning({len(self)} parts over [{self.t_min}, {self.t_max}))"
