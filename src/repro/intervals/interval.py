"""The :class:`Interval` value type.

An interval ``[start, end]`` is a closed range of time points (or, more
generally, points along any totally ordered real axis — the paper also uses
intervals for spatial extents such as a building's length).  The start and
end points are included; a point is the degenerate interval with
``start == end``, which is how real-valued attributes are embedded into the
interval machinery (Section 9 of the paper).

Instances are immutable, hashable, and ordered by ``(start, end)`` — the
natural order used by the paper's *less-than-order* (Section 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

from repro.errors import InvalidIntervalError

__all__ = ["Interval", "span", "point"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` with ``start <= end``.

    Parameters
    ----------
    start:
        The first point included in the interval.
    end:
        The last point included in the interval.  Must be ``>= start``.

    Examples
    --------
    >>> u = Interval(2, 5)
    >>> v = Interval(4, 9)
    >>> u.intersects(v)
    True
    >>> u.length
    3
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if math.isnan(self.start) or math.isnan(self.end):
            raise InvalidIntervalError("interval endpoints must not be NaN")
        if self.end < self.start:
            raise InvalidIntervalError(
                f"interval end ({self.end!r}) precedes start ({self.start!r})"
            )

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def length(self) -> float:
        """The extent ``end - start``; zero for point intervals."""
        return self.end - self.start

    @property
    def is_point(self) -> bool:
        """True when the interval degenerates to a single point."""
        return self.start == self.end

    def contains_point(self, t: float) -> bool:
        """Whether time point ``t`` lies inside the closed interval."""
        return self.start <= t <= self.end

    def intersects(self, other: "Interval") -> bool:
        """Whether the two closed intervals share at least one point.

        This is the *colocation* test: every colocation predicate of
        Allen's algebra implies :meth:`intersects`.
        """
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The common sub-interval, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def union_span(self, other: "Interval") -> "Interval":
        """The smallest interval covering both operands (their hull)."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def shift(self, delta: float) -> "Interval":
        """A copy translated by ``delta`` along the axis."""
        return Interval(self.start + delta, self.end + delta)

    def scale(self, factor: float, origin: float = 0.0) -> "Interval":
        """A copy scaled about ``origin`` by a non-negative ``factor``."""
        if factor < 0:
            raise InvalidIntervalError("scale factor must be non-negative")
        return Interval(
            origin + (self.start - origin) * factor,
            origin + (self.end - origin) * factor,
        )

    # ------------------------------------------------------------------
    # Less-than-order (Section 5.1)
    # ------------------------------------------------------------------
    def less_than(self, other: "Interval") -> bool:
        """The paper's less-than-order: ``self.start <= other.start``.

        Note this is a *pre*-order, not a strict order: two intervals with
        equal starts are each less-than the other.
        """
        return self.start <= other.start

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[float, float]:
        """The ``(start, end)`` pair."""
        return (self.start, self.end)

    def __iter__(self) -> Iterator[float]:
        yield self.start
        yield self.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end}]"


def point(t: float) -> Interval:
    """The degenerate interval ``[t, t]`` embedding a real value."""
    return Interval(t, t)


def span(intervals: Iterable[Interval]) -> Interval:
    """The hull of a non-empty collection of intervals.

    Raises
    ------
    InvalidIntervalError
        If the collection is empty.
    """
    it = iter(intervals)
    try:
        first = next(it)
    except StopIteration:
        raise InvalidIntervalError("span() of an empty collection") from None
    lo, hi = first.start, first.end
    for iv in it:
        if iv.start < lo:
            lo = iv.start
        if iv.end > hi:
            hi = iv.end
    return Interval(lo, hi)
