"""Classic temporal-set operations: coalescing, gaps, coverage, clipping.

These are the standard temporal-database companions to interval joins:
workload generators use them to reason about densities, the analysis
module uses them for concurrency profiles, and they round out the
library for downstream users (the paper's packet-train construction is
itself a coalescing of per-flow point events).

All functions treat intervals as closed and operate on plain sequences,
returning new lists; inputs are never mutated.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import InvalidIntervalError
from repro.intervals.interval import Interval

__all__ = [
    "coalesce",
    "gaps",
    "total_coverage",
    "clip",
    "subtract",
    "intersect_sets",
]


def coalesce(
    intervals: Iterable[Interval], min_gap: float = 0.0
) -> List[Interval]:
    """Merge intervals whose gaps are at most ``min_gap``.

    With the default ``min_gap = 0`` touching and overlapping intervals
    merge (closed semantics: ``[0,2]`` and ``[2,5]`` share the point 2).
    A positive ``min_gap`` additionally bridges short gaps — exactly the
    packet-train rule with ``min_gap`` as the inter-arrival cut-off.

    >>> coalesce([Interval(0, 2), Interval(2, 5), Interval(7, 8)])
    [Interval(start=0, end=5), Interval(start=7, end=8)]
    """
    if min_gap < 0:
        raise InvalidIntervalError("min_gap must be non-negative")
    ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    merged: List[Interval] = []
    for iv in ordered:
        if merged and iv.start - merged[-1].end <= min_gap:
            last = merged[-1]
            if iv.end > last.end:
                merged[-1] = Interval(last.start, iv.end)
        else:
            merged.append(iv)
    return merged


def gaps(intervals: Iterable[Interval]) -> List[Interval]:
    """The maximal uncovered intervals between coalesced runs.

    >>> gaps([Interval(0, 2), Interval(5, 6)])
    [Interval(start=2, end=5)]
    """
    merged = coalesce(intervals)
    return [
        Interval(a.end, b.start) for a, b in zip(merged, merged[1:])
    ]


def total_coverage(intervals: Iterable[Interval]) -> float:
    """Total length of the union of the intervals."""
    return sum(iv.length for iv in coalesce(intervals))


def clip(
    intervals: Iterable[Interval], window: Interval
) -> List[Interval]:
    """Intersect every interval with a window, dropping the disjoint."""
    out: List[Interval] = []
    for iv in intervals:
        clipped = iv.intersection(window)
        if clipped is not None:
            out.append(clipped)
    return out


def subtract(
    intervals: Iterable[Interval], holes: Iterable[Interval]
) -> List[Interval]:
    """The parts of ``intervals`` not covered by ``holes``.

    Uses open-hole semantics on interior points: a hole removes its
    closed span, and a surviving fragment keeps the hole's boundary
    point only when it has positive extent beyond it.

    >>> subtract([Interval(0, 10)], [Interval(3, 5)])
    [Interval(start=0, end=3), Interval(start=5, end=10)]
    """
    merged_holes = coalesce(holes)
    out: List[Interval] = []
    for iv in coalesce(intervals):
        cursor = iv.start
        for hole in merged_holes:
            if hole.end < cursor or hole.start > iv.end:
                continue
            if hole.start > cursor:
                out.append(Interval(cursor, hole.start))
            cursor = max(cursor, hole.end)
            if cursor >= iv.end:
                break
        if cursor < iv.end:
            out.append(Interval(cursor, iv.end))
    return out


def intersect_sets(
    left: Iterable[Interval], right: Iterable[Interval]
) -> List[Interval]:
    """The union-of-intersections of two interval sets, coalesced.

    >>> intersect_sets([Interval(0, 10)], [Interval(5, 20)])
    [Interval(start=5, end=10)]
    """
    merged_left = coalesce(left)
    merged_right = coalesce(right)
    out: List[Interval] = []
    i = j = 0
    while i < len(merged_left) and j < len(merged_right):
        a, b = merged_left[i], merged_right[j]
        common = a.intersection(b)
        if common is not None:
            out.append(common)
        if a.end <= b.end:
            i += 1
        else:
            j += 1
    return coalesce(out)
