"""Less-than-order utilities (Section 5.1 of the paper).

An interval ``u`` is *less than* interval ``v`` when ``u.start <= v.start``.
Within a set of intervals the *left-most* (*right-most*) intervals are those
whose start point is minimal (maximal); ties are allowed.

These helpers are used throughout the algorithms: RCCIS sorts each
reducer's intervals by less-than-order before searching for crossing sets,
and every grid algorithm locates an output tuple's reducer via the
right-most interval of each component.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TypeVar, Callable

from repro.errors import ReproError
from repro.intervals.interval import Interval

__all__ = [
    "less_than",
    "sort_by_order",
    "leftmost",
    "rightmost",
    "leftmost_all",
    "rightmost_all",
]

T = TypeVar("T")


def less_than(u: Interval, v: Interval) -> bool:
    """The paper's less-than-order: ``u.start <= v.start``."""
    return u.start <= v.start


def sort_by_order(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort intervals by less-than-order (start point, then end point)."""
    return sorted(intervals, key=lambda iv: (iv.start, iv.end))


def _require_non_empty(items: Sequence[T]) -> None:
    if not items:
        raise ReproError("ordering over an empty interval collection")


def leftmost(
    items: Sequence[T], key: Callable[[T], Interval] = lambda x: x  # type: ignore[assignment]
) -> T:
    """An item whose interval has the minimal start point."""
    _require_non_empty(items)
    return min(items, key=lambda item: key(item).start)


def rightmost(
    items: Sequence[T], key: Callable[[T], Interval] = lambda x: x  # type: ignore[assignment]
) -> T:
    """An item whose interval has the maximal start point."""
    _require_non_empty(items)
    return max(items, key=lambda item: key(item).start)


def leftmost_all(
    items: Sequence[T], key: Callable[[T], Interval] = lambda x: x  # type: ignore[assignment]
) -> List[T]:
    """All items tied for the minimal start point."""
    _require_non_empty(items)
    best = min(key(item).start for item in items)
    return [item for item in items if key(item).start == best]


def rightmost_all(
    items: Sequence[T], key: Callable[[T], Interval] = lambda x: x  # type: ignore[assignment]
) -> List[T]:
    """All items tied for the maximal start point."""
    _require_non_empty(items)
    best = max(key(item).start for item in items)
    return [item for item in items if key(item).start == best]
