"""Allen composition table and path-consistency reasoning.

The paper observes (Section 9) that a query whose predicates enforce
contradictory less-than-orders between two components can never produce
output.  This module generalises that observation: it implements Allen's
composition (transitivity) table and the classical path-consistency
algorithm over interval constraint networks, which lets the planner prove
*a priori* that some queries are empty without running a single MapReduce
job.

Rather than hand-transcribing the 13x13 composition table (169 cells, an
error-prone exercise), the table is *derived* at first use by exhaustive
enumeration of all triples of proper intervals with endpoints on a small
integer grid.  Any realizable configuration of three proper intervals
involves at most six distinct endpoint values, and Allen relations depend
only on the relative order of endpoints, so a grid of six values realises
every possible configuration.  The result is therefore the exact classical
table.  (Identities such as ``before ∘ after = full`` are asserted in the
test suite.)
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple, Union

from repro.errors import UnsatisfiableQueryError
from repro.intervals.allen import (
    ALLEN_PREDICATES,
    AllenPredicate,
    get_predicate,
    relation_between,
)
from repro.intervals.interval import Interval

__all__ = [
    "RelationSet",
    "FULL_SET",
    "compose",
    "compose_sets",
    "composition_table",
    "ConstraintNetwork",
    "path_consistency",
]

#: A (possibly non-singleton) disjunction of basic Allen relations,
#: represented by their canonical names.
RelationSet = FrozenSet[str]

#: The non-informative constraint: any of the thirteen relations may hold.
FULL_SET: RelationSet = frozenset(ALLEN_PREDICATES)

_TABLE: Dict[Tuple[str, str], RelationSet] = {}


def _grid_intervals(n_points: int) -> List[Interval]:
    """All proper intervals with endpoints in ``range(n_points)``."""
    return [
        Interval(s, e)
        for s in range(n_points)
        for e in range(s + 1, n_points)
    ]


def _build_table() -> Dict[Tuple[str, str], RelationSet]:
    """Derive the exact composition table by grid enumeration.

    For three proper intervals only the relative order of their six
    endpoints matters, so endpoints drawn from six integer values realise
    every configuration; we use seven for an extra safety margin at
    negligible cost.
    """
    intervals = _grid_intervals(7)
    observed: Dict[Tuple[str, str], set] = {}
    for a, b in itertools.product(intervals, repeat=2):
        r_ab = relation_between(a, b).name
        for c in intervals:
            r_bc = relation_between(b, c).name
            r_ac = relation_between(a, c).name
            observed.setdefault((r_ab, r_bc), set()).add(r_ac)
    return {key: frozenset(values) for key, values in observed.items()}


def composition_table() -> Mapping[Tuple[str, str], RelationSet]:
    """The full 13x13 composition table, built lazily and cached."""
    global _TABLE
    if not _TABLE:
        _TABLE = _build_table()
    return _TABLE


def compose(
    first: Union[str, AllenPredicate], second: Union[str, AllenPredicate]
) -> RelationSet:
    """Compose two basic relations: possible relations of ``A`` to ``C``
    given ``A first B`` and ``B second C``."""
    p1 = get_predicate(first).name
    p2 = get_predicate(second).name
    return composition_table()[(p1, p2)]


def compose_sets(first: RelationSet, second: RelationSet) -> RelationSet:
    """Compose two disjunctive relation sets (union over cell products)."""
    table = composition_table()
    out: set = set()
    for p1 in first:
        for p2 in second:
            out |= table[(p1, p2)]
            if len(out) == len(FULL_SET):
                return FULL_SET
    return frozenset(out)


def invert_set(relations: RelationSet) -> RelationSet:
    """The converse of a disjunctive relation set."""
    return frozenset(ALLEN_PREDICATES[name].inverse_name for name in relations)


def _unsatisfiable_pair(
    message: str, pair: Tuple[str, str]
) -> UnsatisfiableQueryError:
    """An emptiness error carrying the variable pair whose constraint
    emptied, so callers (EXPLAIN) can name the conflicting conditions."""
    error = UnsatisfiableQueryError(message)
    error.pair = pair  # type: ignore[attr-defined]
    return error


class ConstraintNetwork:
    """A qualitative constraint network over named temporal variables.

    Each directed pair of variables carries a :data:`RelationSet`; absent
    edges default to :data:`FULL_SET`.  Converse edges are kept in sync.

    Examples
    --------
    >>> net = ConstraintNetwork(["A", "B", "C"])
    >>> net.constrain("A", "B", {"before"})
    >>> net.constrain("B", "C", {"before"})
    >>> sorted(net.constraint("A", "C"))          # after path consistency
    ['before', 'during', 'finishes', ...]         # doctest: +SKIP
    """

    def __init__(self, variables: Iterable[str]):
        self.variables: List[str] = list(dict.fromkeys(variables))
        if len(self.variables) < 1:
            raise ValueError("a constraint network needs at least one variable")
        self._edges: Dict[Tuple[str, str], RelationSet] = {}

    # ------------------------------------------------------------------
    def constraint(self, a: str, b: str) -> RelationSet:
        """Current constraint on the ordered pair ``(a, b)``."""
        if a == b:
            return frozenset({"equals"})
        return self._edges.get((a, b), FULL_SET)

    def constrain(
        self, a: str, b: str, relations: Iterable[Union[str, AllenPredicate]]
    ) -> None:
        """Intersect the ``(a, b)`` constraint with ``relations``.

        Raises
        ------
        UnsatisfiableQueryError
            If the intersection is empty — the network admits no solution.
        """
        names = frozenset(get_predicate(r).name for r in relations)
        updated = self.constraint(a, b) & names
        if not updated:
            raise _unsatisfiable_pair(
                f"constraint between {a!r} and {b!r} became empty", (a, b)
            )
        self._edges[(a, b)] = updated
        self._edges[(b, a)] = invert_set(updated)

    def copy(self) -> "ConstraintNetwork":
        clone = ConstraintNetwork(self.variables)
        clone._edges = dict(self._edges)
        return clone


def path_consistency(network: ConstraintNetwork) -> ConstraintNetwork:
    """Run the PC-2 style path-consistency algorithm to a fixed point.

    Returns a tightened copy of the network.  Raises
    :class:`UnsatisfiableQueryError` when some constraint becomes empty,
    which *proves* the network (and hence the query it models) has no
    solution.  Path consistency is sound but not complete for Allen's
    algebra: a surviving network is not guaranteed satisfiable, so this is
    used only as an early-exit optimisation, never to claim non-emptiness.
    """
    net = network.copy()
    variables = net.variables
    queue = {
        (a, b)
        for a in variables
        for b in variables
        if a != b and net.constraint(a, b) != FULL_SET
    }
    while queue:
        i, j = queue.pop()
        c_ij = net.constraint(i, j)
        for k in variables:
            if k == i or k == j:
                continue
            # Tighten (i, k) through j.
            tightened = net.constraint(i, k) & compose_sets(
                c_ij, net.constraint(j, k)
            )
            if tightened != net.constraint(i, k):
                if not tightened:
                    raise _unsatisfiable_pair(
                        f"path consistency emptied constraint ({i!r}, {k!r})",
                        (i, k),
                    )
                net._edges[(i, k)] = tightened
                net._edges[(k, i)] = invert_set(tightened)
                queue.add((i, k))
            # Tighten (k, j) through i.
            tightened = net.constraint(k, j) & compose_sets(
                net.constraint(k, i), c_ij
            )
            if tightened != net.constraint(k, j):
                if not tightened:
                    raise _unsatisfiable_pair(
                        f"path consistency emptied constraint ({k!r}, {j!r})",
                        (k, j),
                    )
                net._edges[(k, j)] = tightened
                net._edges[(j, k)] = invert_set(tightened)
                queue.add((k, j))
    return net
