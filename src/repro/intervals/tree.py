"""A static interval tree (centered / Edelsbrunner style) for stabbing and
overlap queries.

Reducers in every algorithm of the paper must locally evaluate Allen
predicates between the interval sets they receive.  A centered interval
tree answers "which stored intervals intersect query interval q" in
``O(log n + k)``, which turns the reducer-local join from quadratic to
output-sensitive for colocation predicates.

The tree is built once over a fixed collection (reducers receive all their
input before running — the MapReduce contract), so a static structure
suffices and keeps the implementation simple and cache-friendly.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

from repro.intervals.interval import Interval

__all__ = ["IntervalTree"]

T = TypeVar("T")


class _Node(Generic[T]):
    __slots__ = ("center", "left", "right", "by_start", "by_end")

    def __init__(
        self,
        center: float,
        by_start: List[Tuple[float, Interval, T]],
        by_end: List[Tuple[float, Interval, T]],
    ):
        self.center = center
        self.left: Optional["_Node[T]"] = None
        self.right: Optional["_Node[T]"] = None
        #: intervals crossing ``center`` sorted ascending by start
        self.by_start = by_start
        #: the same intervals sorted descending by end
        self.by_end = by_end


class IntervalTree(Generic[T]):
    """A static centered interval tree mapping intervals to payloads.

    Parameters
    ----------
    items:
        ``(interval, payload)`` pairs.  Duplicates are allowed; all stored
        pairs whose interval matches a query are reported.

    Examples
    --------
    >>> tree = IntervalTree([(Interval(0, 5), "a"), (Interval(4, 9), "b")])
    >>> sorted(payload for _, payload in tree.overlapping(Interval(5, 6)))
    ['a', 'b']
    >>> [payload for _, payload in tree.stabbing(2)]
    ['a']
    """

    def __init__(self, items: Iterable[Tuple[Interval, T]]):
        entries = list(items)
        self._size = len(entries)
        self._root = self._build(entries) if entries else None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _build(entries: List[Tuple[Interval, T]]) -> _Node[T]:
        endpoints = sorted(
            {iv.start for iv, _ in entries} | {iv.end for iv, _ in entries}
        )
        center = endpoints[len(endpoints) // 2]
        lefts: List[Tuple[Interval, T]] = []
        rights: List[Tuple[Interval, T]] = []
        crossing: List[Tuple[Interval, T]] = []
        for iv, payload in entries:
            if iv.end < center:
                lefts.append((iv, payload))
            elif iv.start > center:
                rights.append((iv, payload))
            else:
                crossing.append((iv, payload))
        by_start = sorted(
            ((iv.start, iv, payload) for iv, payload in crossing),
            key=lambda t: t[0],
        )
        by_end = sorted(
            ((iv.end, iv, payload) for iv, payload in crossing),
            key=lambda t: -t[0],
        )
        node = _Node(center, by_start, by_end)
        if lefts:
            node.left = IntervalTree._build(lefts)
        if rights:
            node.right = IntervalTree._build(rights)
        return node

    # ------------------------------------------------------------------
    def stabbing(self, t: float) -> Iterator[Tuple[Interval, T]]:
        """All stored pairs whose interval contains point ``t``."""
        node = self._root
        while node is not None:
            if t < node.center:
                # Crossing intervals starting at or before t contain t.
                for start, iv, payload in node.by_start:
                    if start > t:
                        break
                    yield iv, payload
                node = node.left
            elif t > node.center:
                for end, iv, payload in node.by_end:
                    if end < t:
                        break
                    yield iv, payload
                node = node.right
            else:
                for _, iv, payload in node.by_start:
                    yield iv, payload
                return

    def overlapping(self, query: Interval) -> Iterator[Tuple[Interval, T]]:
        """All stored pairs whose interval shares a point with ``query``."""
        yield from self._overlapping(self._root, query)

    @classmethod
    def _overlapping(
        cls, node: Optional[_Node[T]], query: Interval
    ) -> Iterator[Tuple[Interval, T]]:
        if node is None:
            return
        if query.end < node.center:
            for start, iv, payload in node.by_start:
                if start > query.end:
                    break
                yield iv, payload
            yield from cls._overlapping(node.left, query)
        elif query.start > node.center:
            for end, iv, payload in node.by_end:
                if end < query.start:
                    break
                yield iv, payload
            yield from cls._overlapping(node.right, query)
        else:
            for _, iv, payload in node.by_start:
                yield iv, payload
            yield from cls._overlapping(node.left, query)
            yield from cls._overlapping(node.right, query)
