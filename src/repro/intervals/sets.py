"""Consistent interval-sets and crossing interval-sets (Sections 5.2, 5.3).

These are the two structural notions RCCIS is built on.  To keep this
module free of any dependency on the query layer, a *condition* is the
plain triple ``(left_relation, predicate, right_relation)`` and an
*interval-set* is a mapping from relation name to the single interval the
set holds for that relation (condition A1 — no two intervals of a set may
come from the same relation — is thereby structural).

The functions here are direct, checkable transcriptions of the paper's
definitions; the production crossing-set *finder* used inside RCCIS lives
in :mod:`repro.core.algorithms.crossing` and is validated against these
definitions in the test suite.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple, Union

from repro.intervals.allen import AllenPredicate, get_predicate
from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning

__all__ = ["Condition", "normalize_conditions", "is_consistent", "crosses"]

#: ``(left_relation_name, predicate, right_relation_name)``
Condition = Tuple[str, AllenPredicate, str]


def normalize_conditions(
    conditions: Iterable[Tuple[str, Union[str, AllenPredicate], str]],
) -> Tuple[Condition, ...]:
    """Resolve predicate names to :class:`AllenPredicate` instances."""
    return tuple(
        (left, get_predicate(pred), right) for left, pred, right in conditions
    )


def is_consistent(
    interval_set: Mapping[str, Interval],
    conditions: Sequence[Condition],
) -> bool:
    """Whether an interval-set is *consistent* for the given query.

    Condition A1 (one interval per relation) holds by construction of the
    mapping; condition A2 requires every query condition whose two
    relations are both present in the set to be satisfied by the
    corresponding intervals.  Every subset of a consistent set is itself
    consistent, since dropping relations only removes applicable
    conditions.
    """
    for left, predicate, right in conditions:
        if left in interval_set and right in interval_set:
            if not predicate.holds(interval_set[left], interval_set[right]):
                return False
    return True


def crosses(
    interval_set: Mapping[str, Interval],
    conditions: Sequence[Condition],
    partitioning: Partitioning,
    partition_index: int,
) -> bool:
    """Whether an interval-set *crosses* a partition-interval (Section 5.3).

    The set crosses partition ``p`` when

    * every member interval intersects ``p``, and
    * for every query condition joining a member relation to an absent
      relation: if the predicate enforces the member to start first (B1)
      the member's end point lies beyond ``p``'s right boundary; if it
      enforces the absent partner to start first (B2) the member's start
      point lies before ``p``'s left boundary.  A predicate enforcing both
      orders (equal starts) imposes both crossings, which is unsatisfiable
      for a single partition — correctly so, because an equal-start partner
      would itself intersect ``p`` and thus could never be absent.

    Note the definition deliberately does *not* require the set to be
    consistent; RCCIS checks consistency (C1) and crossing (C2) as separate
    conditions.
    """
    part = partitioning.partition_interval(partition_index)
    for interval in interval_set.values():
        if not interval.intersects(part):
            return False
    present = set(interval_set)
    for left, predicate, right in conditions:
        if left in present and right not in present:
            member = interval_set[left]
            if predicate.enforces_left_first() and not partitioning.crosses_right(
                member, partition_index
            ):
                return False
            if predicate.enforces_right_first() and not partitioning.crosses_left(
                member, partition_index
            ):
                return False
        elif right in present and left not in present:
            member = interval_set[right]
            if predicate.enforces_left_first() and not partitioning.crosses_left(
                member, partition_index
            ):
                return False
            if predicate.enforces_right_first() and not partitioning.crosses_right(
                member, partition_index
            ):
                return False
    return True
