"""Interval data model: the :class:`Interval` type, Allen's algebra, the
project/split/replicate partitioning primitives, and the consistent /
crossing interval-set machinery of the paper's Section 5."""

from repro.intervals.coalesce import (
    coalesce,
    gaps,
    intersect_sets,
    subtract,
    total_coverage,
)
from repro.intervals.allen import (
    ALLEN_PREDICATES,
    AllenPredicate,
    MapOperator,
    Order,
    get_predicate,
    relation_between,
)
from repro.intervals.interval import Interval, point, span
from repro.intervals.order import leftmost, less_than, rightmost, sort_by_order
from repro.intervals.partitioning import Partitioning
from repro.intervals.sets import crosses, is_consistent, normalize_conditions
from repro.intervals.sweep import before_pairs, intersecting_pairs, join_pairs
from repro.intervals.tree import IntervalTree

__all__ = [
    "ALLEN_PREDICATES",
    "coalesce",
    "gaps",
    "intersect_sets",
    "subtract",
    "total_coverage",
    "AllenPredicate",
    "MapOperator",
    "Order",
    "get_predicate",
    "relation_between",
    "Interval",
    "point",
    "span",
    "leftmost",
    "less_than",
    "rightmost",
    "sort_by_order",
    "Partitioning",
    "crosses",
    "is_consistent",
    "normalize_conditions",
    "before_pairs",
    "intersecting_pairs",
    "join_pairs",
    "IntervalTree",
]
