"""Event sinks: where finished spans go.

The sink protocol is two methods — ``emit(span)``, called once per span
as it closes (serialised by the recorder's lock), and ``close()``,
called when the recorder shuts down.  Three built-ins cover the common
cases:

* :class:`InMemorySink` — keeps the spans (and the roots of their tree)
  in memory; what tests assert against.
* :class:`JsonlSink` — appends one JSON object per span to a file, in
  close order; cheap to grep and to stream.
* :class:`ChromeTraceSink` — writes the Chrome trace-event JSON format
  (``{"traceEvents": [...]}`` with complete ``"ph": "X"`` events), which
  loads directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing`` for a flame-graph view of a run.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, TextIO, Union

from repro.obs.span import Span, jsonable

__all__ = [
    "TraceSink",
    "InMemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "open_sink",
    "load_spans_jsonl",
]


class TraceSink:
    """Base class / protocol for span sinks."""

    def emit(self, span: Span) -> None:
        """Receive one finished span (called under the recorder lock)."""

    def close(self) -> None:
        """Flush and release resources; called once at recorder close."""


def _ensure_parent_dir(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)


class InMemorySink(TraceSink):
    """Collects finished spans in memory — the testing sink."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    @property
    def roots(self) -> List[Span]:
        """Spans with no parent — the recorded trees."""
        return [span for span in self.spans if span.parent_id is None]

    def emit(self, span: Span) -> None:
        self.spans.append(span)


class JsonlSink(TraceSink):
    """Writes one JSON object per finished span to a JSONL file."""

    def __init__(self, target: Union[str, TextIO]) -> None:
        if isinstance(target, str):
            _ensure_parent_dir(target)
            self._handle: TextIO = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, span: Span) -> None:
        self._handle.write(json.dumps(span.to_dict(), default=str))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class ChromeTraceSink(TraceSink):
    """Exports spans as Chrome trace-event JSON (Perfetto-loadable).

    Every span becomes one *complete* event (``"ph": "X"``) with
    microsecond timestamps relative to the recorder epoch; the span's
    kind becomes the event category and its attributes and counter
    deltas land in ``args``.
    """

    def __init__(self, path: str, process_name: str = "repro") -> None:
        self.path = path
        self.process_name = process_name
        self._events: List[Dict[str, Any]] = []
        self._closed = False

    def emit(self, span: Span) -> None:
        args: Dict[str, Any] = dict(jsonable(span.attributes))
        if span.counters:
            args["counters"] = span.counters
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        self._events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": span.thread_id,
                "args": args,
            }
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _ensure_parent_dir(self.path)
        payload = {
            "traceEvents": self._events
            + [
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": 0,
                    "args": {"name": self.process_name},
                }
            ],
            "displayTimeUnit": "ms",
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)


def load_spans_jsonl(path: str) -> List[Span]:
    """Read a :class:`JsonlSink` trace back into :class:`Span` objects.

    What ``repro report`` uses to rebuild a dashboard from a trace
    artifact after the run is gone.  Blank lines are skipped; children
    lists stay empty (the file is flat, ``parent`` ids carry the tree).
    """
    spans, warnings = load_spans_jsonl_tolerant(path)
    if warnings:
        raise ValueError(warnings[0])
    return spans


def load_spans_jsonl_tolerant(path: str) -> "tuple[List[Span], List[str]]":
    """Like :func:`load_spans_jsonl`, but degrades gracefully.

    Unparsable or non-object lines are skipped and reported as warning
    strings instead of raising, so ``repro report`` can render whatever
    an older or truncated trace still contains.
    """
    spans: List[Span] = []
    warnings: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                warnings.append(f"{path}:{number}: unparsable JSON ({exc})")
                continue
            if not isinstance(payload, dict):
                warnings.append(
                    f"{path}:{number}: expected a span object, got "
                    f"{type(payload).__name__}"
                )
                continue
            spans.append(Span.from_dict(payload))
    return spans, warnings


def open_sink(path: str, fmt: str) -> TraceSink:
    """Build the sink for a CLI/benchmark trace artifact.

    ``fmt`` is ``"chrome"`` (trace-event JSON) or ``"jsonl"``.
    """
    if fmt == "chrome":
        return ChromeTraceSink(path)
    if fmt == "jsonl":
        return JsonlSink(path)
    raise ValueError(f"unknown trace format {fmt!r}; use 'chrome' or 'jsonl'")
