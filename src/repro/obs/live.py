"""Live run telemetry: the heartbeat bus and everything built on it.

Every other observability surface (traces, the dashboard, EXPLAIN
reconciliation, the profiler) is post-hoc — nothing is visible until the
run ends.  This module supplies the *live* path the paper's Hadoop
setting assumes: running tasks emit :class:`Heartbeat` events (phase,
task index, attempt, records processed, last-progress timestamp) to a
driver-side :class:`TelemetryHub` over an executor-appropriate channel —

* ``serial`` — a direct callback into the hub (same thread),
* ``threads`` — a thread-safe :class:`queue.Queue` drained by a
  collector thread,
* ``processes`` — a multiprocessing manager queue (the picklable form
  of ``multiprocessing.Queue``; a raw ``mp.Queue`` cannot travel inside
  an existing pool's task payloads) drained by a collector thread.

On top of the hub:

* **progress + ETA** — the analytic ``predict()`` tier supplies
  per-cycle work weights (records read, shuffled records); the hub
  scales them by the observed per-phase completion fractions and
  extrapolates the remaining wall time.  Rendered by ``repro top`` and
  ``repro run --progress``.
* **observed-straggler watchdog** — a daemon thread flags tasks whose
  heartbeats stall past ``LiveConfig.stall_seconds``; with
  ``--speculative`` the runner launches backup attempts for flagged
  tasks through the *same* speculation path scripted fault plans use.
* **live HTTP endpoint** — :class:`StatusServer` (stdlib
  ``http.server`` on a daemon thread; ``repro run --serve-status PORT``)
  serves ``/metrics`` (Prometheus text), ``/progress`` (JSON snapshot)
  and ``/`` (the HTML dashboard rendered from in-flight spans).

All live families live in the ``live`` metric group, which — like
``wall`` and ``profile`` — is excluded from parity fingerprints: the
heartbeat cadence is wall-clock-driven and therefore machine-dependent.
The passivity contract is pinned by
``tests/integration/test_live_parity.py``: with telemetry off the run is
bit-identical to an unobserved one; with it on, output tuples and
run-group metrics stay bit-identical across all three executors.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import GROUP_LIVE, MetricsRegistry

__all__ = [
    "LIVE_ENV",
    "LIVE_STALL_ENV",
    "LiveConfig",
    "resolve_live",
    "Heartbeat",
    "TaskBeat",
    "TelemetryHub",
    "StatusServer",
    "ProgressPrinter",
    "fetch_progress",
    "render_progress_line",
    "render_top",
]

#: Environment switches (how CI runs a whole suite with live telemetry).
LIVE_ENV = "REPRO_LIVE"
LIVE_STALL_ENV = "REPRO_LIVE_STALL"

_FALSEY = ("", "0", "false", "no", "off")

#: Heartbeat event kinds.
BEAT_START = "start"
BEAT_PROGRESS = "progress"
BEAT_FINISH = "finish"


@dataclass(frozen=True)
class LiveConfig:
    """Tuning knobs of the live telemetry path.

    ``stall_seconds`` is the watchdog threshold: a running task whose
    last heartbeat is older than this is flagged as an observed
    straggler.  ``poll_interval`` is the watchdog/publisher cadence;
    ``heartbeat_interval`` throttles in-task progress beats (start and
    finish always emit).
    """

    stall_seconds: float = 5.0
    poll_interval: float = 0.05
    heartbeat_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.stall_seconds <= 0:
            raise ReproError("stall_seconds must be positive")
        if self.poll_interval <= 0 or self.heartbeat_interval < 0:
            raise ReproError("live intervals must be positive")


def _env_stall() -> float:
    text = os.environ.get(LIVE_STALL_ENV, "").strip()
    if not text:
        return LiveConfig.stall_seconds
    try:
        return float(text)
    except ValueError:
        raise ReproError(
            f"{LIVE_STALL_ENV} must be a number of seconds, got {text!r}"
        ) from None


def resolve_live(explicit: Any = None) -> Optional[LiveConfig]:
    """Resolve the live-telemetry configuration, or ``None`` for off.

    ``explicit`` wins when not ``None``: ``False`` forces off, ``True``
    enables the defaults (honouring ``$REPRO_LIVE_STALL``), a number is
    a stall threshold in seconds, and a :class:`LiveConfig` is adopted
    as-is.  Otherwise ``$REPRO_LIVE`` decides — mirroring
    :func:`repro.obs.profile.resolve_profile` precedence exactly.
    """
    if isinstance(explicit, LiveConfig):
        return explicit
    if explicit is not None:
        if explicit is False:
            return None
        if explicit is True:
            return LiveConfig(stall_seconds=_env_stall())
        if isinstance(explicit, (int, float)):
            return LiveConfig(stall_seconds=float(explicit))
        value = str(explicit).strip().lower()
        if value in _FALSEY:
            return None
        return LiveConfig(stall_seconds=_env_stall())
    value = os.environ.get(LIVE_ENV, "").strip().lower()
    if value in _FALSEY:
        return None
    return LiveConfig(stall_seconds=_env_stall())


# ----------------------------------------------------------------------
# The heartbeat event and its emission channels.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Heartbeat:
    """One per-task liveness event.

    ``records`` is the cumulative records processed by the attempt so
    far (``None`` for a bare liveness ping); ``timestamp`` is the
    emitter's ``time.monotonic()`` — the hub additionally stamps arrival
    time, which is what staleness checks use, so cross-process clock
    skew cannot fake a stall.
    """

    kind: str
    job: str
    phase: str
    task_index: int
    attempt: int
    records: Optional[int]
    timestamp: float


class _DirectChannel:
    """``serial``: heartbeats call straight into the hub."""

    __slots__ = ("_hub",)

    def __init__(self, hub: "TelemetryHub") -> None:
        self._hub = hub

    def send(self, beat: Heartbeat) -> None:
        self._hub.ingest(beat)


class _QueueChannel:
    """``threads``/``processes``: heartbeats enqueue; a hub collector
    thread drains.  Picklable exactly when the queue is (the manager
    queue proxy used under ``processes`` is; ``queue.Queue`` never
    leaves the process)."""

    __slots__ = ("_queue",)

    def __init__(self, q: Any) -> None:
        self._queue = q

    def send(self, beat: Heartbeat) -> None:
        self._queue.put(beat)


class TaskBeat:
    """The heartbeat emitter handed to one task attempt.

    ``start()``/``finish()`` always emit; ``progress()`` is throttled to
    one event per ``interval`` seconds so a tight map loop costs one
    clock read per call, not one queue put.  Picklable whenever its
    channel is, so the same object rides a ``processes`` payload into
    the worker.
    """

    __slots__ = (
        "channel", "job", "phase", "task_index", "attempt",
        "interval", "_last",
    )

    def __init__(
        self,
        channel: Any,
        job: str,
        phase: str,
        task_index: int,
        attempt: int = 0,
        interval: float = 0.05,
    ) -> None:
        self.channel = channel
        self.job = job
        self.phase = phase
        self.task_index = task_index
        self.attempt = attempt
        self.interval = interval
        self._last = 0.0

    def __getstate__(self) -> Tuple[Any, ...]:
        return (
            self.channel, self.job, self.phase, self.task_index,
            self.attempt, self.interval, self._last,
        )

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        (
            self.channel, self.job, self.phase, self.task_index,
            self.attempt, self.interval, self._last,
        ) = state

    def _emit(self, kind: str, records: Optional[int]) -> None:
        now = time.monotonic()
        self._last = now
        self.channel.send(
            Heartbeat(
                kind, self.job, self.phase, self.task_index,
                self.attempt, records, now,
            )
        )

    def start(self) -> None:
        self._emit(BEAT_START, 0)

    def progress(self, records: Optional[int] = None, force: bool = False) -> None:
        if not force and time.monotonic() - self._last < self.interval:
            return
        self._emit(BEAT_PROGRESS, records)

    def finish(self, records: Optional[int] = None) -> None:
        self._emit(BEAT_FINISH, records)

    def for_attempt(self, attempt: int) -> "TaskBeat":
        """The same task identity, re-bound to a new attempt number."""
        return TaskBeat(
            self.channel, self.job, self.phase, self.task_index,
            attempt, self.interval,
        )


# ----------------------------------------------------------------------
# Driver-side state.
# ----------------------------------------------------------------------

@dataclass
class _TaskState:
    attempt: int = 0
    records: int = 0
    last_seen: float = 0.0
    started: bool = False
    finished: bool = False


@dataclass
class _PhaseState:
    total: int = 0
    done: int = 0
    started_at: float = 0.0
    finished: bool = False


@dataclass
class _JobState:
    name: str
    order: int
    phases: "Dict[str, _PhaseState]" = field(default_factory=dict)
    finished: bool = False


class TelemetryHub:
    """The driver-side heartbeat collector, progress model and watchdog.

    Strictly additive: the hub only *reads* the run (heartbeats, phase
    boundaries, the pre-run prediction) and *writes* the ``live`` metric
    group — never counters, spans or outputs.  All state mutations take
    the hub lock; the watchdog is a daemon thread that both flags
    observed stragglers and republishes the progress gauges every
    ``poll_interval``.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        config: Optional[LiveConfig] = None,
    ) -> None:
        self.config = config or LiveConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.RLock()
        self._closed = threading.Event()
        self._started_at = time.monotonic()
        self._jobs: "Dict[str, _JobState]" = {}
        self._tasks: Dict[Tuple[str, str, int], _TaskState] = {}
        self._stalled: "set[Tuple[str, str, int]]" = set()
        self._plan: Optional[Dict[str, Any]] = None
        self._first_eta: Optional[float] = None
        self._last_eta: Optional[float] = None
        self._heartbeats = 0
        self._thread_q: Optional[queue.Queue] = None
        self._collectors: List[threading.Thread] = []
        self._manager: Optional[Any] = None
        self._mp_q: Optional[Any] = None
        self._watchdog: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "TelemetryHub":
        """Start the watchdog; collector threads start lazily with the
        first channel of their kind."""
        if self._watchdog is None:
            self._watchdog = threading.Thread(
                target=self._watch, name="repro-live-watchdog", daemon=True
            )
            self._watchdog.start()
        return self

    def close(self) -> None:
        """Stop the watchdog and collectors, drain the queues, publish
        the final ETA-vs-actual gauges."""
        if self._closed.is_set():
            return
        self._closed.set()
        for thread in [self._watchdog, *self._collectors]:
            if thread is not None:
                thread.join(timeout=2.0)
        # Late beats that raced the collector shutdown.
        for q in (self._thread_q, self._mp_q):
            self._drain(q)
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
        with self._lock:
            self._publish_locked(time.monotonic())
            elapsed = time.monotonic() - self._started_at
            final = self.metrics.gauge(
                "repro_live_run_seconds",
                "Final ETA-vs-actual accounting: the run's actual wall "
                "seconds, the analytic prediction, and the first live "
                "ETA computed.",
                labels=("kind",),
                group=GROUP_LIVE,
            )
            final.set(elapsed, kind="actual")
            if self._plan is not None:
                final.set(
                    float(self._plan.get("modelled_seconds", 0.0)),
                    kind="predicted",
                )
            if self._first_eta is not None:
                final.set(self._first_eta, kind="eta_initial")

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def _drain(self, q: Optional[Any]) -> None:
        if q is None:
            return
        while True:
            try:
                self.ingest(q.get_nowait())
            except queue.Empty:
                return
            except (OSError, EOFError, BrokenPipeError):
                return  # manager already gone

    def _collect(self, q: Any) -> None:
        while True:
            try:
                beat = q.get(timeout=self.config.poll_interval)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            except (OSError, EOFError, BrokenPipeError):
                return
            self.ingest(beat)

    def _start_collector(self, q: Any) -> None:
        thread = threading.Thread(
            target=self._collect, args=(q,),
            name="repro-live-collector", daemon=True,
        )
        thread.start()
        self._collectors.append(thread)

    # -- channels --------------------------------------------------------
    def channel(self, executor: str = "serial") -> Any:
        """The heartbeat channel appropriate to one executor."""
        if executor == "threads":
            with self._lock:
                if self._thread_q is None:
                    self._thread_q = queue.Queue()
                    self._start_collector(self._thread_q)
                return _QueueChannel(self._thread_q)
        if executor == "processes":
            with self._lock:
                if self._mp_q is None:
                    import multiprocessing

                    self._manager = multiprocessing.Manager()
                    self._mp_q = self._manager.Queue()
                    self._start_collector(self._mp_q)
                return _QueueChannel(self._mp_q)
        return _DirectChannel(self)

    def task_beat(
        self,
        job: str,
        phase: str,
        task_index: int,
        attempt: int = 0,
        executor: str = "serial",
    ) -> TaskBeat:
        """A :class:`TaskBeat` bound to one task attempt."""
        return TaskBeat(
            self.channel(executor), job, phase, task_index, attempt,
            interval=self.config.heartbeat_interval,
        )

    # -- run-structure hooks (called by the runner / executor) ----------
    def set_plan(
        self,
        algorithm: str,
        cycles: Optional[List[Dict[str, Any]]] = None,
        modelled_seconds: float = 0.0,
    ) -> None:
        """Attach the analytic plan prediction the ETA model scales.

        ``cycles`` entries carry ``records_read`` / ``shuffled_records``
        (as :meth:`CyclePrediction.as_dict` emits them); they become the
        per-cycle work weights of the progress model.
        """
        with self._lock:
            self._plan = {
                "algorithm": algorithm,
                "cycles": list(cycles or []),
                "modelled_seconds": float(modelled_seconds),
            }

    def _job(self, job: str) -> _JobState:
        state = self._jobs.get(job)
        if state is None:
            state = _JobState(name=job, order=len(self._jobs))
            self._jobs[job] = state
        return state

    def job_started(self, job: str) -> None:
        with self._lock:
            self._job(job)

    def job_finished(self, job: str) -> None:
        with self._lock:
            state = self._job(job)
            state.finished = True
            for phase in state.phases.values():
                phase.finished = True
            self._publish_locked(time.monotonic())

    def phase_started(self, job: str, phase: str, total_tasks: int) -> None:
        with self._lock:
            self._job(job).phases[phase] = _PhaseState(
                total=max(int(total_tasks), 0),
                started_at=time.monotonic(),
            )

    def phase_finished(self, job: str, phase: str) -> None:
        with self._lock:
            state = self._job(job).phases.get(phase)
            if state is not None:
                state.finished = True
            self._publish_locked(time.monotonic())

    # -- heartbeat ingestion ---------------------------------------------
    def ingest(self, beat: Heartbeat) -> None:
        """Fold one heartbeat into the live state (any thread)."""
        if not isinstance(beat, Heartbeat):
            return
        now = time.monotonic()
        with self._lock:
            self._heartbeats += 1
            key = (beat.job, beat.phase, beat.task_index)
            task = self._tasks.get(key)
            if task is None:
                task = self._tasks[key] = _TaskState()
            task.last_seen = now
            task.attempt = max(task.attempt, beat.attempt)
            if beat.records is not None and beat.records > task.records:
                task.records = beat.records
            if beat.kind == BEAT_START:
                task.started = True
            elif beat.kind == BEAT_FINISH and not task.finished:
                task.finished = True
                job = self._jobs.get(beat.job)
                if job is not None:
                    phase = job.phases.get(beat.phase)
                    if phase is not None and phase.done < phase.total:
                        phase.done += 1
            self.metrics.counter(
                "repro_live_heartbeats_total",
                "Per-task heartbeat events received by the telemetry hub.",
                labels=("job", "phase"),
                group=GROUP_LIVE,
            ).inc(job=beat.job, phase=beat.phase)

    def publish(self) -> None:
        """Refresh the ``repro_live_*`` gauges right now.

        The watchdog publishes every poll tick; an HTTP scrape calls
        this first so ``/metrics`` always reflects the current state
        even between ticks (or before the first one).
        """
        with self._lock:
            self._publish_locked(time.monotonic())

    # -- watchdog ----------------------------------------------------------
    def _watch(self) -> None:
        while not self._closed.wait(self.config.poll_interval):
            now = time.monotonic()
            with self._lock:
                self._flag_stalled_locked(now)
                self._publish_locked(now)

    def _flag_stalled_locked(self, now: float) -> None:
        threshold = self.config.stall_seconds
        for key, task in self._tasks.items():
            if task.finished or not task.started or key in self._stalled:
                continue
            if now - task.last_seen > threshold:
                self._stalled.add(key)
                self.metrics.counter(
                    "repro_live_stalled_total",
                    "Tasks the watchdog flagged as observed stragglers "
                    "(no heartbeat for stall_seconds while running).",
                    labels=("job", "phase"),
                    group=GROUP_LIVE,
                ).inc(job=key[0], phase=key[1])

    def stalled_indices(self, job: str, phase: str) -> FrozenSet[int]:
        """Task indices the watchdog flagged for one job phase — what
        the runner's speculation pass consumes."""
        with self._lock:
            return frozenset(
                index for (j, p, index) in self._stalled
                if j == job and p == phase
            )

    # -- progress / ETA ---------------------------------------------------
    def _cycle_weights(self, jobs: List[_JobState]) -> List[Dict[str, float]]:
        """Per-job phase weights, scaled from the analytic prediction.

        Cycle ``i`` of the prediction weights observed job ``i`` (extra
        observed jobs reuse the last cycle); without a prediction every
        job weighs 1.0 split evenly across phases.
        """
        cycles = (self._plan or {}).get("cycles") or []
        weights = []
        for job in jobs:
            cycle = cycles[min(job.order, len(cycles) - 1)] if cycles else {}
            reads = float(cycle.get("records_read", 0.0) or 0.0)
            shuffled = float(cycle.get("shuffled_records", 0.0) or 0.0)
            if reads <= 0 and shuffled <= 0:
                weights.append({"map": 1.0, "shuffle": 1.0, "reduce": 1.0})
            else:
                # Reads drive the map phase; shuffled records drive both
                # the shuffle and the reduce phase (Section 6's
                # communication-cost shape).
                weights.append({
                    "map": max(reads, 1.0),
                    "shuffle": max(shuffled, 1.0),
                    "reduce": max(shuffled, 1.0),
                })
        return weights

    def _progress_locked(self, now: float) -> Tuple[float, Optional[float]]:
        """(overall fraction, eta seconds) of the run right now."""
        jobs = sorted(self._jobs.values(), key=lambda j: j.order)
        predicted_cycles = len((self._plan or {}).get("cycles") or [])
        if not jobs and not predicted_cycles:
            return 0.0, None
        weights = self._cycle_weights(jobs)
        done_weight = 0.0
        total_weight = 0.0
        for job, phase_weights in zip(jobs, weights):
            job_weight = sum(phase_weights.values())
            total_weight += job_weight
            if job.finished:
                done_weight += job_weight
                continue
            for phase, weight in phase_weights.items():
                state = job.phases.get(phase)
                if state is None:
                    continue
                if state.finished:
                    done_weight += weight
                elif state.total:
                    done_weight += weight * (state.done / state.total)
        # Predicted cycles not started yet still belong in the total.
        if predicted_cycles > len(jobs):
            cycles = (self._plan or {}).get("cycles") or []
            for order in range(len(jobs), predicted_cycles):
                cycle = cycles[order]
                reads = float(cycle.get("records_read", 0.0) or 0.0)
                shuffled = float(cycle.get("shuffled_records", 0.0) or 0.0)
                total_weight += (
                    max(reads, 1.0) + 2 * max(shuffled, 1.0)
                    if reads > 0 or shuffled > 0
                    else 3.0
                )
        if total_weight <= 0:
            return 0.0, None
        fraction = min(1.0, done_weight / total_weight)
        elapsed = now - self._started_at
        if fraction <= 1e-9:
            return 0.0, None
        eta = elapsed * (1.0 - fraction) / fraction
        if self._first_eta is None and 0.0 < fraction < 1.0:
            self._first_eta = elapsed + eta
        self._last_eta = eta
        return fraction, eta

    def _publish_locked(self, now: float) -> None:
        running = {}
        finished = {}
        records = {}
        for (job, phase, _), task in self._tasks.items():
            key = (job, phase)
            if task.finished:
                finished[key] = finished.get(key, 0) + 1
            elif task.started:
                running[key] = running.get(key, 0) + 1
            records[key] = records.get(key, 0) + task.records
        tasks_gauge = self.metrics.gauge(
            "repro_live_tasks",
            "Tasks currently running / finished per job phase, from "
            "heartbeats.",
            labels=("job", "phase", "state"),
            group=GROUP_LIVE,
        )
        records_gauge = self.metrics.gauge(
            "repro_live_records_processed",
            "Cumulative records processed per job phase, from progress "
            "heartbeats.",
            labels=("job", "phase"),
            group=GROUP_LIVE,
        )
        keys = set(running) | set(finished) | set(records)
        for job, phase in keys:
            tasks_gauge.set(
                running.get((job, phase), 0), job=job, phase=phase,
                state="running",
            )
            tasks_gauge.set(
                finished.get((job, phase), 0), job=job, phase=phase,
                state="finished",
            )
            records_gauge.set(
                records.get((job, phase), 0), job=job, phase=phase
            )
        progress_gauge = self.metrics.gauge(
            "repro_live_phase_progress_ratio",
            "Completed fraction of each job phase's task wave.",
            labels=("job", "phase"),
            group=GROUP_LIVE,
        )
        for job in self._jobs.values():
            for phase, state in job.phases.items():
                ratio = (
                    1.0 if state.finished
                    else (state.done / state.total if state.total else 0.0)
                )
                progress_gauge.set(ratio, job=job.name, phase=phase)
        fraction, eta = self._progress_locked(now)
        self.metrics.gauge(
            "repro_live_run_progress_ratio",
            "Overall run progress: observed completion fractions scaled "
            "by the analytic per-cycle work weights.",
            group=GROUP_LIVE,
        ).set(fraction)
        if eta is not None:
            self.metrics.gauge(
                "repro_live_eta_seconds",
                "Estimated wall seconds until the run completes.",
                group=GROUP_LIVE,
            ).set(eta)

    # -- snapshots ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able live progress snapshot (what ``/progress`` serves)."""
        now = time.monotonic()
        with self._lock:
            fraction, eta = self._progress_locked(now)
            jobs = []
            for job in sorted(self._jobs.values(), key=lambda j: j.order):
                phases = []
                for phase, state in job.phases.items():
                    phase_tasks = [
                        (key[2], task)
                        for key, task in self._tasks.items()
                        if key[0] == job.name and key[1] == phase
                    ]
                    phases.append({
                        "phase": phase,
                        "total_tasks": state.total,
                        "done_tasks": state.done,
                        "finished": state.finished,
                        "running_tasks": sum(
                            1 for _, t in phase_tasks
                            if t.started and not t.finished
                        ),
                        "records_processed": sum(
                            t.records for _, t in phase_tasks
                        ),
                    })
                jobs.append({
                    "job": job.name,
                    "finished": job.finished,
                    "phases": phases,
                })
            plan = self._plan or {}
            return {
                "algorithm": plan.get("algorithm"),
                "elapsed_seconds": now - self._started_at,
                "progress": fraction,
                "eta_seconds": eta,
                "modelled_seconds": plan.get("modelled_seconds"),
                "predicted_cycles": len(plan.get("cycles") or []),
                "heartbeats": self._heartbeats,
                "closed": self._closed.is_set(),
                "jobs": jobs,
                "stalled": [
                    {"job": j, "phase": p, "task_index": i}
                    for (j, p, i) in sorted(self._stalled)
                ],
            }


# ----------------------------------------------------------------------
# The live status endpoint (stdlib http.server on a daemon thread).
# ----------------------------------------------------------------------

class _StatusHandler(BaseHTTPRequestHandler):
    # Keep the default access log off the run's stdout.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        server: "StatusServer" = self.server.status  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    server.metrics_text(),
                )
            elif path == "/progress":
                self._send(
                    200, "application/json; charset=utf-8",
                    json.dumps(server.progress(), sort_keys=True),
                )
            elif path == "/":
                self._send(200, "text/html; charset=utf-8", server.page())
            else:
                self._send(
                    404, "text/plain; charset=utf-8",
                    "unknown path; try /metrics, /progress or /\n",
                )
        except Exception as exc:  # pragma: no cover - defensive
            self._send(500, "text/plain; charset=utf-8", f"error: {exc}\n")


class StatusServer:
    """``repro run --serve-status PORT``: the live HTTP endpoint.

    Serves ``/metrics`` (Prometheus text exposition of the live
    registry), ``/progress`` (the hub's JSON snapshot) and ``/`` (the
    self-contained HTML dashboard rendered from the recorder's
    *in-flight* spans).  Runs on a daemon thread; pass port 0 to bind an
    ephemeral port (tests) and read it back from :attr:`port`.
    """

    def __init__(
        self,
        recorder: Any,
        port: int = 0,
        host: str = "127.0.0.1",
        title: str = "repro run (live)",
    ) -> None:
        self.recorder = recorder
        self.hub: Optional[TelemetryHub] = getattr(recorder, "live", None)
        self.title = title
        self._httpd = ThreadingHTTPServer((host, port), _StatusHandler)
        self._httpd.daemon_threads = True
        self._httpd.status = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "StatusServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-live-status",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    # -- route bodies -----------------------------------------------------
    def metrics_text(self) -> str:
        if self.hub is not None:
            self.hub.publish()
        return self.recorder.metrics.to_prometheus()

    def progress(self) -> Dict[str, Any]:
        if self.hub is None:
            return {"error": "live telemetry not attached"}
        return self.hub.snapshot()

    def page(self) -> str:
        from repro.obs.dashboard import render_dashboard

        spans = self.recorder.snapshot_spans()
        return render_dashboard(
            spans,
            self.recorder.metrics,
            title=self.title,
            now=self.recorder._now(),
        )


# ----------------------------------------------------------------------
# Terminal rendering: ``repro run --progress`` and ``repro top``.
# ----------------------------------------------------------------------

def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


def _fmt_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "--"
    return f"{eta:.1f}s"


def render_progress_line(snapshot: Dict[str, Any]) -> str:
    """One-line progress rendering (the ``--progress`` ticker)."""
    fraction = float(snapshot.get("progress") or 0.0)
    parts = [
        f"progress {fraction * 100:3.0f}% [{_bar(fraction)}]",
        f"elapsed {float(snapshot.get('elapsed_seconds') or 0.0):.1f}s",
        f"eta {_fmt_eta(snapshot.get('eta_seconds'))}",
    ]
    active = None
    for job in snapshot.get("jobs", []):
        if job.get("finished"):
            continue
        for phase in job.get("phases", []):
            if not phase.get("finished"):
                active = (
                    f"{job['job']} {phase['phase']} "
                    f"{phase['done_tasks']}/{phase['total_tasks']}"
                )
                break
        if active:
            break
    if active:
        parts.append(active)
    stalled = snapshot.get("stalled") or []
    if stalled:
        parts.append(f"stalled {len(stalled)}")
    return " · ".join(parts)


def render_top(snapshot: Dict[str, Any]) -> str:
    """The multi-line ``repro top`` terminal view of one snapshot."""
    lines = [
        "repro top — "
        f"algorithm {snapshot.get('algorithm') or '?'} · "
        f"elapsed {float(snapshot.get('elapsed_seconds') or 0.0):.1f}s · "
        f"progress {float(snapshot.get('progress') or 0.0) * 100:.0f}% · "
        f"eta {_fmt_eta(snapshot.get('eta_seconds'))}"
    ]
    for job in snapshot.get("jobs", []):
        for phase in job.get("phases", []):
            total = phase.get("total_tasks") or 0
            done = phase.get("done_tasks") or 0
            fraction = (
                1.0 if phase.get("finished")
                else (done / total if total else 0.0)
            )
            lines.append(
                f"  {job['job']:<24s} {phase['phase']:<8s}"
                f"[{_bar(fraction)}] {done}/{total}"
                + (
                    f" · {phase['records_processed']} records"
                    if phase.get("records_processed")
                    else ""
                )
            )
    for item in snapshot.get("stalled", []):
        lines.append(
            f"  stalled: {item['job']} {item['phase']}"
            f"[{item['task_index']}]"
        )
    if snapshot.get("closed"):
        lines.append("  run complete")
    return "\n".join(lines)


def fetch_progress(url: str, timeout: float = 2.0) -> Dict[str, Any]:
    """GET the ``/progress`` JSON snapshot of a serving run."""
    from urllib.request import urlopen

    target = url if "://" in url else f"http://{url}"
    if not target.rstrip("/").endswith("/progress"):
        target = target.rstrip("/") + "/progress"
    with urlopen(target, timeout=timeout) as response:  # noqa: S310
        return json.loads(response.read().decode("utf-8"))


class ProgressPrinter:
    """The ``repro run --progress`` ticker: a daemon thread re-rendering
    the hub snapshot to a stream every ``interval`` seconds, with a
    final ETA-vs-actual line on close."""

    def __init__(
        self, hub: TelemetryHub, stream: Any = None, interval: float = 0.5
    ) -> None:
        import sys

        self.hub = hub
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ProgressPrinter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-live-progress", daemon=True
            )
            self._thread.start()
        return self

    def _write(self, text: str, end: str) -> None:
        try:
            self.stream.write(text + end)
            self.stream.flush()
        except (OSError, ValueError):  # stream gone; stop quietly
            self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._write("\r" + render_progress_line(self.hub.snapshot()), "")

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        snapshot = self.hub.snapshot()
        actual = float(snapshot.get("elapsed_seconds") or 0.0)
        first_eta = self.hub._first_eta
        line = f"\rlive:       actual {actual:.2f}s"
        if first_eta is not None:
            err = (first_eta - actual) / actual * 100 if actual else 0.0
            line += f" · first ETA {first_eta:.2f}s ({err:+.0f}%)"
        self._write(line, "\n")
