"""The span data model of the observability layer.

A :class:`Span` is one timed region of a run.  Spans nest into the
hierarchy the tracer records::

    query -> algorithm -> job -> phase (map / shuffle / reduce) -> task

Each span carries wall-clock start/end (seconds relative to its
recorder's epoch), the thread that recorded it, free-form attributes
(including ``modelled_seconds`` cost-model charges where applicable) and
a counter-delta snapshot — the counters gained while the span was open.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "KIND_QUERY",
    "KIND_ALGORITHM",
    "KIND_JOB",
    "KIND_PHASE",
    "KIND_TASK",
]

#: Span kind of a whole query execution.
KIND_QUERY = "query"
#: Span kind of one algorithm's run inside a query.
KIND_ALGORITHM = "algorithm"
#: Span kind of one MapReduce job.
KIND_JOB = "job"
#: Span kind of a job phase (map, shuffle, reduce).
KIND_PHASE = "phase"
#: Span kind of one map or reduce task.
KIND_TASK = "task"


@dataclass
class Span:
    """One timed, attributed region of a traced run.

    Attributes
    ----------
    name, kind:
        Display name and hierarchy level (one of the ``KIND_*``
        constants, or a free-form string).
    span_id, parent_id:
        Recorder-unique id and the id of the enclosing span (``None``
        for roots).
    start, end:
        Seconds relative to the recorder's epoch; ``end`` is ``None``
        while the span is still open.
    thread_id:
        ``threading.get_ident()`` of the recording thread — reduce-task
        spans recorded by the ``threads`` executor carry their worker
        thread here.
    attributes:
        Free-form annotations (job name, task index, cost charges, …).
    counters:
        Counter deltas (``group -> name -> gained``) observed while the
        span was open.
    children:
        Child spans, in start order.
    """

    name: str
    kind: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    thread_id: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds the span was open (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly dict of the span (children omitted)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "thread": self.thread_id,
            "attributes": jsonable(self.attributes),
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (children are not
        reconstructed — JSONL traces are flat; use ``parent`` ids to
        re-link if a tree is needed).  Tolerant of older traces: missing
        fields fall back to neutral defaults instead of raising, so
        ``repro report`` can render what a previous version recorded."""
        return cls(
            name=str(payload.get("name", "?")),
            kind=str(payload.get("kind", "span")),
            span_id=payload.get("id", 0),
            parent_id=payload.get("parent"),
            start=payload.get("start", 0.0),
            end=payload.get("end"),
            thread_id=payload.get("thread", 0),
            attributes=dict(payload.get("attributes") or {}),
            counters=dict(payload.get("counters") or {}),
        )

    def render(self, indent: int = 0) -> str:
        """An indented one-line-per-span rendering of the subtree."""
        line = (
            f"{'  ' * indent}{self.kind}:{self.name} "
            f"[{self.duration * 1e3:.3f} ms]"
        )
        parts = [line]
        for child in self.children:
            parts.append(child.render(indent + 1))
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.kind}:{self.name}, id={self.span_id}, "
            f"children={len(self.children)})"
        )


def jsonable(value: Any) -> Any:
    """Recursively convert a value into JSON-serialisable primitives.

    Scalars pass through; mappings get string keys; sequences become
    lists; anything else is stringified.  Used by the JSONL and Chrome
    sinks so arbitrary span attributes (tuples, grid cells, rows) never
    break serialisation.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(item) for item in value]
    return str(value)
