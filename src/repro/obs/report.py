"""Post-run analysis of a trace: skew, stragglers, empty tasks.

The paper's Figure 4 is an argument about the *shape* of per-reducer
load; :class:`RunReport` turns a recorded run into exactly that
diagnosis.  For every executed job it summarises the physical
reduce-task load distribution with the Section-7 statistics
(:func:`repro.stats.metrics.load_balance`, Jain's index) and flags

* **skewed reducers** — tasks whose load exceeds ``imbalance_threshold``
  times the mean, in jobs whose max/mean imbalance or Jain fairness
  crosses the thresholds (the All-Replicate hot-tail of Figure 4);
* **stragglers** — reduce tasks whose recorded wall-clock duration
  exceeds ``straggler_factor`` times the job's median task duration;
* **empty-output tasks** — tasks that received input but emitted
  nothing (wasted shuffle volume; grid cells that never join).

When the run executed under fault injection (:mod:`repro.faults`), the
report also aggregates a :class:`FaultSummary` — failed / retried /
speculatively-wasted attempt counts from the ``faults`` counter group
plus the wall-clock spent in failed and speculative attempts (the
``kind="attempt"`` spans), i.e. the run's retry & speculation overhead.

When the trace carries plan predictions (``kind="plan"`` spans, emitted
whenever :func:`repro.core.executor.execute` runs with an observer),
the report also joins them against the observed per-algorithm
quantities as :class:`~repro.obs.explain.PlanReconciliation` rows —
the predicted-vs-actual cost-model scorecard.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.span import Span
from repro.stats.metrics import LoadBalance, load_balance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.job import JobResult
    from repro.obs.explain import PlanReconciliation
    from repro.obs.recorder import TraceRecorder

__all__ = ["TaskFlag", "JobLoadSummary", "FaultSummary", "RunReport"]


@dataclass(frozen=True)
class TaskFlag:
    """One flagged reduce task.

    ``reason`` is ``"skew"``, ``"straggler"`` or ``"empty-output"``;
    ``detail`` is a human-readable explanation.
    """

    job: str
    task_index: int
    reason: str
    detail: str
    load: int = 0
    duration: float = 0.0


@dataclass
class FaultSummary:
    """Retry/speculation overhead of one traced run.

    Counter totals come from the ``faults`` group; ``attempt_spans`` and
    ``overhead_seconds`` aggregate the recorded ``kind="attempt"`` spans
    (failed and speculative attempts — the work that did not commit).
    """

    tasks_failed: int = 0
    tasks_retried: int = 0
    speculative_wasted: int = 0
    attempt_spans: int = 0
    overhead_seconds: float = 0.0

    @property
    def any_faults(self) -> bool:
        return (
            self.tasks_failed > 0
            or self.speculative_wasted > 0
            or self.attempt_spans > 0
        )


@dataclass
class JobLoadSummary:
    """Per-job load-balance diagnosis.

    ``hot_keys`` holds the top-k hottest logical reducer keys of the
    job's shuffle (``(repr(key), records)``, hottest first — the
    Figure-4 tail, named); ``replication`` is the job's replication
    factor (map output records ÷ map input records).
    """

    name: str
    balance: LoadBalance
    skewed: bool
    hot_tasks: List[int] = field(default_factory=list)
    hot_keys: List[Tuple[str, int]] = field(default_factory=list)
    replication: float = 0.0


class RunReport:
    """Skew/straggler/empty-task diagnosis of one traced run.

    Build with :meth:`from_recorder` after executing with an observer
    attached; ``flags`` holds every finding, ``jobs`` the per-job load
    summaries, and :meth:`render` a printable report.
    """

    def __init__(
        self,
        jobs: List[JobLoadSummary],
        flags: List[TaskFlag],
        faults: Optional[FaultSummary] = None,
        reconciliations: Sequence["PlanReconciliation"] = (),
    ) -> None:
        self.jobs = jobs
        self.flags = flags
        #: retry/speculation overhead; zeros on fault-free runs.
        self.faults = faults if faults is not None else FaultSummary()
        #: predicted-vs-observed plan scorecards, one per algorithm
        #: whose trace carried a prediction; empty without plan spans.
        self.reconciliations = list(reconciliations)

    # ------------------------------------------------------------------
    @classmethod
    def from_recorder(
        cls,
        recorder: "TraceRecorder",
        *,
        imbalance_threshold: float = 2.0,
        fairness_threshold: float = 0.5,
        straggler_factor: float = 3.0,
        min_straggler_seconds: float = 0.0,
        top_keys: int = 5,
    ) -> "RunReport":
        """Analyse everything a :class:`TraceRecorder` observed."""
        return cls.from_observations(
            recorder.job_results,
            recorder.spans,
            imbalance_threshold=imbalance_threshold,
            fairness_threshold=fairness_threshold,
            straggler_factor=straggler_factor,
            min_straggler_seconds=min_straggler_seconds,
            top_keys=top_keys,
        )

    @classmethod
    def from_observations(
        cls,
        job_results: Sequence["JobResult"],
        spans: Sequence[Span] = (),
        *,
        imbalance_threshold: float = 2.0,
        fairness_threshold: float = 0.5,
        straggler_factor: float = 3.0,
        min_straggler_seconds: float = 0.0,
        top_keys: int = 5,
    ) -> "RunReport":
        """Analyse job results plus (optionally) their recorded spans."""
        jobs: List[JobLoadSummary] = []
        flags: List[TaskFlag] = []
        for result in job_results:
            loads = list(result.reduce_task_loads)
            balance = load_balance(dict(enumerate(loads)))
            skewed = len(loads) > 1 and (
                balance.imbalance > imbalance_threshold
                or balance.fairness < fairness_threshold
            )
            summary = JobLoadSummary(
                name=result.name,
                balance=balance,
                skewed=skewed,
                hot_keys=cls._hot_keys(result, top_keys),
                replication=cls._replication(result),
            )
            if skewed and balance.mean_load > 0:
                for index, load in enumerate(loads):
                    if load > imbalance_threshold * balance.mean_load:
                        summary.hot_tasks.append(index)
                        flags.append(
                            TaskFlag(
                                job=result.name,
                                task_index=index,
                                reason="skew",
                                detail=(
                                    f"load {load} is "
                                    f"{load / balance.mean_load:.1f}x the "
                                    f"mean ({balance.mean_load:.1f}); "
                                    f"Jain={balance.fairness:.3f}"
                                ),
                                load=load,
                            )
                        )
            outputs = list(result.reduce_task_outputs)
            for index, load in enumerate(loads):
                if load > 0 and index < len(outputs) and outputs[index] == 0:
                    flags.append(
                        TaskFlag(
                            job=result.name,
                            task_index=index,
                            reason="empty-output",
                            detail=(
                                f"received {load} records, emitted none"
                            ),
                            load=load,
                        )
                    )
            jobs.append(summary)

        flags.extend(
            cls._straggler_flags(
                spans, straggler_factor, min_straggler_seconds
            )
        )
        from repro.obs.explain import reconciliation_from_spans

        return cls(
            jobs,
            flags,
            cls._fault_summary(job_results, spans),
            reconciliation_from_spans(spans),
        )

    @staticmethod
    def _hot_keys(result: "JobResult", top_keys: int) -> List[Tuple[str, int]]:
        """Top-k hottest logical reducer keys, deterministically ordered
        by (descending load, ``repr(key)``)."""
        if top_keys <= 0:
            return []
        ranked = sorted(
            (
                (repr(key), load)
                for key, load in result.logical_reducer_loads.items()
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:top_keys]

    @staticmethod
    def _replication(result: "JobResult") -> float:
        """Map output ÷ map input records — the per-job replication
        factor of Tables 1-3 (0.0 for jobs that read nothing)."""
        reads = result.counters.value("framework", "map_input_records")
        emitted = result.counters.value("framework", "map_output_records")
        return emitted / reads if reads else 0.0

    @staticmethod
    def _fault_summary(
        job_results: Sequence["JobResult"], spans: Sequence[Span]
    ) -> FaultSummary:
        summary = FaultSummary()
        for result in job_results:
            summary.tasks_failed += result.counters.value(
                "faults", "tasks_failed"
            )
            summary.tasks_retried += result.counters.value(
                "faults", "tasks_retried"
            )
            summary.speculative_wasted += result.counters.value(
                "faults", "speculative_wasted"
            )
        for span in spans:
            if span.kind == "attempt":
                summary.attempt_spans += 1
                summary.overhead_seconds += span.duration
        return summary

    @staticmethod
    def _straggler_flags(
        spans: Sequence[Span],
        straggler_factor: float,
        min_straggler_seconds: float,
    ) -> List[TaskFlag]:
        by_job: Dict[str, List[Span]] = {}
        for span in spans:
            if (
                span.kind == "task"
                and span.attributes.get("phase") == "reduce"
            ):
                by_job.setdefault(
                    str(span.attributes.get("job", "?")), []
                ).append(span)
        flags: List[TaskFlag] = []
        for job, task_spans in by_job.items():
            if len(task_spans) < 2:
                continue
            median = statistics.median(s.duration for s in task_spans)
            if median <= 0:
                continue
            for span in task_spans:
                if (
                    span.duration > straggler_factor * median
                    and span.duration >= min_straggler_seconds
                ):
                    flags.append(
                        TaskFlag(
                            job=job,
                            task_index=int(
                                span.attributes.get("task_index", -1)
                            ),
                            reason="straggler",
                            detail=(
                                f"ran {span.duration * 1e3:.2f} ms, "
                                f"{span.duration / median:.1f}x the median "
                                f"task ({median * 1e3:.2f} ms)"
                            ),
                            duration=span.duration,
                        )
                    )
        return flags

    # ------------------------------------------------------------------
    @property
    def skewed_jobs(self) -> List[JobLoadSummary]:
        """Job summaries whose load distribution crossed a threshold."""
        return [job for job in self.jobs if job.skewed]

    @property
    def replication_factors(self) -> Dict[str, float]:
        """Per-job replication factor (``job name -> factor``)."""
        return {job.name: job.replication for job in self.jobs}

    def check_replication(
        self,
        baseline: Mapping[str, float],
        tolerance: float = 0.05,
    ) -> List[str]:
        """Flag jobs whose replication factor drifted from ``baseline``.

        ``baseline`` maps job names to expected factors (e.g. the stored
        ``benchmarks/replication_baseline.json``); a job regresses when
        ``|observed - expected| > tolerance * max(expected, 1)``.  Jobs
        absent from the baseline are ignored (new jobs are not
        regressions); returns human-readable flag strings, empty when
        everything is within tolerance.
        """
        flags: List[str] = []
        observed = self.replication_factors
        for name in sorted(baseline):
            if name not in observed:
                continue
            expected = float(baseline[name])
            actual = observed[name]
            allowed = tolerance * max(expected, 1.0)
            if abs(actual - expected) > allowed:
                flags.append(
                    f"replication regression in job {name}: "
                    f"expected {expected:.4f} +/- {allowed:.4f}, "
                    f"observed {actual:.4f}"
                )
        return flags

    def flags_for(
        self, reason: Optional[str] = None, job: Optional[str] = None
    ) -> List[TaskFlag]:
        """Flags filtered by reason and/or job name."""
        return [
            flag
            for flag in self.flags
            if (reason is None or flag.reason == reason)
            and (job is None or flag.job == job)
        ]

    def render(self) -> str:
        """A printable multi-line report."""
        lines: List[str] = ["run report"]
        for job in self.jobs:
            b = job.balance
            marker = "  !! skewed" if job.skewed else ""
            lines.append(
                f"  job {job.name}: {b.reducers} reduce tasks, "
                f"max={b.max_load}, mean={b.mean_load:.1f}, "
                f"p50={b.p50:.0f}, p95={b.p95:.0f}, "
                f"imbalance={b.imbalance:.2f}, gini={b.gini:.3f}, "
                f"Jain={b.fairness:.3f}, "
                f"replication={job.replication:.2f}{marker}"
            )
            if job.hot_keys:
                hottest = ", ".join(
                    f"{key}={load}" for key, load in job.hot_keys
                )
                lines.append(f"    hottest keys: {hottest}")
        if self.faults.any_faults:
            f = self.faults
            lines.append(
                f"  faults: {f.tasks_failed} failed, "
                f"{f.tasks_retried} retried, "
                f"{f.speculative_wasted} speculative wasted; "
                f"{f.attempt_spans} non-committing attempts cost "
                f"{f.overhead_seconds * 1e3:.2f} ms"
            )
        if not self.flags:
            lines.append("  no flagged tasks")
        for flag in self.flags:
            lines.append(
                f"  [{flag.reason}] {flag.job} task {flag.task_index}: "
                f"{flag.detail}"
            )
        for reconciliation in self.reconciliations:
            lines.append("")
            lines.extend(
                "  " + line for line in reconciliation.render().splitlines()
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunReport({len(self.jobs)} jobs, {len(self.flags)} flags, "
            f"{len(self.skewed_jobs)} skewed)"
        )
