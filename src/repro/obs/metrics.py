"""A thread-safe metrics registry with Prometheus-style exposition.

The :class:`MetricsRegistry` is the queryable side of the observability
layer: where :class:`~repro.obs.span.Span` records *when* something
happened, a metric records *how much* of it happened, keyed by a fixed
label set.  Three metric types cover every signal the simulator emits:

* :class:`Counter` — monotonically increasing totals (records mapped,
  tasks retried, bytes-ish shuffled).
* :class:`Gauge` — last-written values (replication factor of a job,
  consistent vs total reducers of a grid).
* :class:`Histogram` — distributions over **fixed bucket boundaries**
  (per-reducer loads, per-key skew, phase wall seconds).  Fixed
  boundaries make histograms mergeable by plain addition, exactly like
  :meth:`Counters.from_dict <repro.mapreduce.counters.Counters>` merges
  worker counter snapshots.

Every metric belongs to a **group**:

* ``"run"`` (default) — deterministic facts of the computation; these
  must be bit-identical across the serial/threads/processes executors
  and invariant under fault injection (retries replay, they do not
  change the answer).
* ``"wall"`` — wall-clock timings; honest but machine-dependent.
* ``"faults"`` — chaos bookkeeping (retries, discarded attempts);
  identical across executors for a pinned fault plan but empty on a
  fault-free run.
* ``"profile"`` — data-plane profiling facts (CPU seconds, pickle
  bytes, GC pauses; see :mod:`repro.obs.profile`).  Machine- and
  executor-dependent by nature, so excluded from parity like ``wall``.

:meth:`MetricsRegistry.fingerprint` exposes exactly that contract: the
parity tests compare fingerprints with ``exclude_groups=("wall",
"profile")`` (the default) and add ``"faults"`` to compare a chaos run
against a fault-free one.

Worker *processes* never see the registry — they ship counter snapshots
back (see ``runner._run_map_tasks_processes``) and the parent records
metrics from those, so the merge is deterministic by construction.
Worker *threads* write through the registry lock.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "MetricError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "GROUP_RUN",
    "GROUP_WALL",
    "GROUP_FAULTS",
    "GROUP_PROFILE",
    "GROUP_LIVE",
    "LOAD_BUCKETS",
    "SECONDS_BUCKETS",
]

#: Deterministic facts of the computation (executor-invariant).
GROUP_RUN = "run"
#: Wall-clock timings (machine-dependent, excluded from parity checks).
GROUP_WALL = "wall"
#: Fault-injection bookkeeping (empty on fault-free runs).
GROUP_FAULTS = "faults"
#: Data-plane profiling facts (machine-dependent, excluded from parity).
GROUP_PROFILE = "profile"
#: Live operational telemetry — heartbeat counts, progress/ETA gauges,
#: watchdog flags, data-plane fallback accounting.  Cadence-driven and
#: configuration-dependent, so excluded from parity fingerprints.
GROUP_LIVE = "live"

#: Fixed boundaries for tuple-load histograms (per-reducer and per-key).
LOAD_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 50000.0,
)

#: Fixed boundaries for wall-clock histograms, in seconds.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_VALID_GROUPS = (
    GROUP_RUN, GROUP_WALL, GROUP_FAULTS, GROUP_PROFILE, GROUP_LIVE
)


class MetricError(ReproError, ValueError):
    """Raised for metric misuse: type/label mismatches, bad buckets."""


def _check_labels(
    declared: Tuple[str, ...], provided: Mapping[str, Any], name: str
) -> Tuple[str, ...]:
    if set(provided) != set(declared):
        raise MetricError(
            f"metric {name!r} takes labels {list(declared)}, "
            f"got {sorted(provided)}"
        )
    return tuple(str(provided[label]) for label in declared)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_number(value: Any) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_pairs(
    names: Tuple[str, ...], values: Tuple[str, ...]
) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class Metric:
    """Base class: one named family of samples keyed by label values."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Tuple[str, ...],
        group: str,
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.label_names = labels
        self.group = group
        self._lock = lock
        self._samples: Dict[Tuple[str, ...], Any] = {}

    # -- introspection --------------------------------------------------
    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """``(label_values, value)`` pairs, sorted by label values."""
        with self._lock:
            return sorted(self._samples.items())

    def signature(self) -> Tuple[Any, ...]:
        return (self.kind, self.label_names, self.group)

    # -- serialisation hooks (overridden per type) ----------------------
    def _sample_dict(self, key: Tuple[str, ...], value: Any) -> Dict[str, Any]:
        return {"labels": list(key), "value": value}

    def _absorb_sample(self, key: Tuple[str, ...], payload: Any) -> None:
        raise NotImplementedError

    def _exposition_lines(self) -> List[str]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total; merge is addition."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        key = _check_labels(self.label_names, labels, self.name)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = _check_labels(self.label_names, labels, self.name)
        with self._lock:
            return self._samples.get(key, 0)

    def _absorb_sample(self, key: Tuple[str, ...], payload: Any) -> None:
        self._samples[key] = self._samples.get(key, 0) + payload

    def _exposition_lines(self) -> List[str]:
        lines = []
        for key, value in self.samples():
            labels = _label_pairs(self.label_names, key)
            lines.append(f"{self.name}{labels} {_format_number(value)}")
        return lines


class Gauge(Metric):
    """A last-write-wins value; merge keeps the merged-in value."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _check_labels(self.label_names, labels, self.name)
        with self._lock:
            self._samples[key] = value

    def value(self, **labels: Any) -> Optional[float]:
        key = _check_labels(self.label_names, labels, self.name)
        with self._lock:
            return self._samples.get(key)

    def _absorb_sample(self, key: Tuple[str, ...], payload: Any) -> None:
        self._samples[key] = payload

    def _exposition_lines(self) -> List[str]:
        lines = []
        for key, value in self.samples():
            labels = _label_pairs(self.label_names, key)
            lines.append(f"{self.name}{labels} {_format_number(value)}")
        return lines


class Histogram(Metric):
    """Cumulative-bucket distribution over fixed boundaries.

    Because every registry instantiates the same boundaries, two
    histograms merge by adding bucket counts — no resampling, no loss —
    which is what makes cross-worker aggregation deterministic.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Tuple[str, ...],
        group: str,
        lock: threading.Lock,
        buckets: Tuple[float, ...],
    ) -> None:
        super().__init__(name, help_text, labels, group, lock)
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricError(
                f"histogram {self.name!r} needs ascending bucket boundaries"
            )
        self.buckets = tuple(float(bound) for bound in buckets)

    def signature(self) -> Tuple[Any, ...]:
        return (self.kind, self.label_names, self.group, self.buckets)

    def observe(self, value: float, **labels: Any) -> None:
        key = _check_labels(self.label_names, labels, self.name)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._samples[key] = state
            index = bisect_left(self.buckets, value)
            state["counts"][index] += 1
            state["sum"] += value
            state["count"] += 1

    def state(self, **labels: Any) -> Optional[Dict[str, Any]]:
        key = _check_labels(self.label_names, labels, self.name)
        with self._lock:
            state = self._samples.get(key)
            return None if state is None else dict(state)

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        """Upper bucket boundary holding the q-quantile observation.

        An estimate by construction — the histogram only knows bucket
        membership — but with the load buckets above it is exact for
        small integer loads.  Returns ``None`` with no observations.
        """
        state = self.state(**labels)
        if state is None or state["count"] == 0:
            return None
        rank = max(1, int(q * state["count"] + 0.5))
        seen = 0
        for index, count in enumerate(state["counts"]):
            seen += count
            if seen >= rank:
                if index < len(self.buckets):
                    return self.buckets[index]
                return state["sum"] / state["count"] if state["count"] else 0.0
        return self.buckets[-1]

    def _sample_dict(self, key: Tuple[str, ...], value: Any) -> Dict[str, Any]:
        return {
            "labels": list(key),
            "counts": list(value["counts"]),
            "sum": value["sum"],
            "count": value["count"],
        }

    def _absorb_sample(self, key: Tuple[str, ...], payload: Any) -> None:
        state = self._samples.get(key)
        if state is None:
            state = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
            self._samples[key] = state
        counts = payload["counts"]
        if len(counts) != len(state["counts"]):
            raise MetricError(
                f"histogram {self.name!r} merge: bucket count mismatch"
            )
        for index, count in enumerate(counts):
            state["counts"][index] += count
        state["sum"] += payload["sum"]
        state["count"] += payload["count"]

    def _exposition_lines(self) -> List[str]:
        lines = []
        for key, state in self.samples():
            cumulative = 0
            for bound, count in zip(self.buckets, state["counts"]):
                cumulative += count
                names = self.label_names + ("le",)
                values = key + (_format_number(bound),)
                lines.append(
                    f"{self.name}_bucket{_label_pairs(names, values)} "
                    f"{cumulative}"
                )
            cumulative += state["counts"][-1]
            names = self.label_names + ("le",)
            values = key + ("+Inf",)
            lines.append(
                f"{self.name}_bucket{_label_pairs(names, values)} "
                f"{cumulative}"
            )
            labels = _label_pairs(self.label_names, key)
            lines.append(
                f"{self.name}_sum{labels} {_format_number(state['sum'])}"
            )
            lines.append(f"{self.name}_count{labels} {state['count']}")
        return lines


class MetricsRegistry:
    """Registers metric families and serialises them deterministically.

    Registration is idempotent: asking for an already-registered name
    with the *same* type/labels/group/buckets returns the existing
    metric; a mismatch raises :class:`MetricError`.  All samples update
    under one registry lock, so the ``threads`` executor can record
    concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    # -- registration ---------------------------------------------------
    def _register(self, metric: Metric) -> Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if existing.signature() != metric.signature():
                    raise MetricError(
                        f"metric {metric.name!r} already registered as "
                        f"{existing.signature()}, asked for "
                        f"{metric.signature()}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        group: str = GROUP_RUN,
    ) -> Counter:
        return self._register(  # type: ignore[return-value]
            Counter(name, help_text, tuple(labels), _valid_group(group),
                    self._lock)
        )

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        group: str = GROUP_RUN,
    ) -> Gauge:
        return self._register(  # type: ignore[return-value]
            Gauge(name, help_text, tuple(labels), _valid_group(group),
                  self._lock)
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        group: str = GROUP_RUN,
        buckets: Tuple[float, ...] = LOAD_BUCKETS,
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram(name, help_text, tuple(labels), _valid_group(group),
                      self._lock, tuple(buckets))
        )

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def families(self) -> List[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # -- serialisation --------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot: ``{name: {type, help, group, ...}}``."""
        out: Dict[str, Any] = {}
        for metric in self.families():
            entry: Dict[str, Any] = {
                "type": metric.kind,
                "help": metric.help,
                "group": metric.group,
                "labels": list(metric.label_names),
                "samples": [
                    metric._sample_dict(key, value)
                    for key, value in metric.samples()
                ],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[metric.name] = entry
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` output."""
        registry = cls()
        registry.merge_dict(payload)
        return registry

    def merge_dict(self, payload: Mapping[str, Any]) -> None:
        """Fold a serialised snapshot in: counters and histograms add,
        gauges take the merged-in value (last write wins)."""
        for name in sorted(payload):
            entry = payload[name]
            kind = entry["type"]
            labels = tuple(entry.get("labels", ()))
            group = entry.get("group", GROUP_RUN)
            if kind == "counter":
                metric: Metric = self.counter(
                    name, entry.get("help", ""), labels, group
                )
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""), labels, group)
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    entry.get("help", ""),
                    labels,
                    group,
                    tuple(entry.get("buckets", LOAD_BUCKETS)),
                )
            else:
                raise MetricError(f"unknown metric type {kind!r} for {name!r}")
            with self._lock:
                for sample in entry.get("samples", ()):
                    key = tuple(sample["labels"])
                    if kind == "histogram":
                        metric._absorb_sample(key, sample)
                    else:
                        metric._absorb_sample(key, sample["value"])

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (same semantics as merge_dict)."""
        self.merge_dict(other.as_dict())

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format, deterministic order."""
        lines: List[str] = []
        for metric in self.families():
            help_text = metric.help or metric.name
            lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric._exposition_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    # -- comparison -----------------------------------------------------
    def fingerprint(
        self,
        exclude_groups: Tuple[str, ...] = (
            GROUP_WALL, GROUP_PROFILE, GROUP_LIVE,
        ),
    ) -> Dict[str, Tuple[Any, ...]]:
        """A hashable, comparable digest of the sample values.

        The parity tests assert ``a.fingerprint(...) ==
        b.fingerprint(...)``; the default excludes the machine-dependent
        ``wall`` and ``profile`` groups so deterministic content compares
        across executors, and chaos tests add ``"faults"`` to compare a
        chaos run against a fault-free one.
        """
        digest: Dict[str, Tuple[Any, ...]] = {}
        for metric in self.families():
            if metric.group in exclude_groups:
                continue
            entries = []
            for key, value in metric.samples():
                if isinstance(metric, Histogram):
                    entries.append(
                        (key, tuple(value["counts"]), value["count"])
                    )
                else:
                    entries.append((key, value))
            digest[metric.name] = tuple(entries)
        return digest

    # -- human output ---------------------------------------------------
    def summary(self) -> str:
        """A compact human-readable rundown for ``repro run --metrics``."""
        families = self.families()
        sample_total = sum(len(metric.samples()) for metric in families)
        lines = [
            f"metrics: {len(families)} families, {sample_total} samples"
        ]
        for metric in families:
            for key, value in metric.samples():
                labels = _label_pairs(metric.label_names, key)
                if isinstance(metric, Histogram):
                    if value["count"] == 0:
                        continue
                    p50 = metric.quantile(
                        0.5, **dict(zip(metric.label_names, key))
                    )
                    p95 = metric.quantile(
                        0.95, **dict(zip(metric.label_names, key))
                    )
                    lines.append(
                        f"  {metric.name}{labels} count={value['count']} "
                        f"sum={_format_number(value['sum'])} "
                        f"p50<={_format_number(p50)} "
                        f"p95<={_format_number(p95)}"
                    )
                else:
                    lines.append(
                        f"  {metric.name}{labels} {_format_number(value)}"
                    )
        return "\n".join(lines)


def _valid_group(group: str) -> str:
    if group not in _VALID_GROUPS:
        raise MetricError(
            f"unknown metric group {group!r}; use one of {_VALID_GROUPS}"
        )
    return group
