"""The :class:`TraceRecorder` — the observer threaded through a run.

A recorder hands out hierarchical :class:`~repro.obs.span.Span` context
managers.  Nesting is tracked per thread (a thread-local span stack), so
serial code gets parenting for free; code running on worker threads —
the ``threads`` reduce executor — passes ``parent=`` explicitly and the
recorder links the span under it thread-safely.

The recorder always keeps the finished spans (flat list + tree), which
is what :class:`~repro.obs.report.RunReport` and tests consume; attached
:class:`~repro.obs.sinks.TraceSink` instances additionally receive every
span as it closes (JSONL event log, Chrome trace export, …).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

from repro.obs.live import TelemetryHub, resolve_live
from repro.obs.metrics import SECONDS_BUCKETS, GROUP_WALL, MetricsRegistry
from repro.obs.profile import Profiler, resolve_profile
from repro.obs.span import Span

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Records a tree of spans plus the job results of one run.

    Parameters
    ----------
    sinks:
        Zero or more :class:`~repro.obs.sinks.TraceSink` objects; each
        finished span is pushed to every sink (under the recorder lock,
        so sinks need no locking of their own).
    profile:
        Data-plane profiling: ``None`` (default) defers to
        ``$REPRO_PROFILE``, ``True``/``False``/a level string force it,
        and an existing :class:`~repro.obs.profile.Profiler` is adopted
        as-is.  When active, ``self.profiler`` records CPU/memory/GC/
        serialization facts into the ``profile`` metric group and the
        instrumented layers (runner, shuffle, fs) report through it.
    live:
        Live run telemetry: ``None`` (default) defers to
        ``$REPRO_LIVE``, ``True``/``False``/a stall threshold force it,
        and an existing :class:`~repro.obs.live.TelemetryHub` is adopted
        as-is.  When active, ``self.live`` collects per-task heartbeats
        into the ``live`` metric group and powers ``--progress``,
        ``--serve-status`` and the observed-straggler watchdog.

    The recorder itself is the in-memory record: ``roots`` is the span
    tree, ``spans`` the flat close-order list, and ``job_results`` the
    :class:`~repro.mapreduce.job.JobResult` of every job executed while
    the recorder was attached (what ``JobHistory`` and ``RunReport``
    consume).
    """

    def __init__(
        self, *sinks: Any, profile: Any = None, live: Any = None
    ) -> None:
        self._sinks: List[Any] = list(sinks)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._epoch = time.perf_counter()
        #: finished spans in close order.
        self.spans: List[Span] = []
        #: top-level spans (no parent), in start order.
        self.roots: List[Span] = []
        #: JobResult of every job run under this recorder.
        self.job_results: List[Any] = []
        #: The run's metric families; instrumented code records through
        #: ``observer.metrics`` whenever an observer is attached.
        self.metrics = MetricsRegistry()
        #: The data-plane profiler, or ``None`` when profiling is off.
        self.profiler: Optional[Profiler] = None
        if isinstance(profile, Profiler):
            self.profiler = profile
        else:
            level = resolve_profile(profile)
            if level is not None:
                self.profiler = Profiler(self.metrics, level=level)
        if self.profiler is not None:
            self.profiler.start()
        #: The live telemetry hub, or ``None`` when live telemetry is off.
        self.live: Optional[TelemetryHub] = None
        if isinstance(live, TelemetryHub):
            self.live = live
        else:
            config = resolve_live(live)
            if config is not None:
                self.live = TelemetryHub(self.metrics, config)
        if self.live is not None:
            self.live.start()

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "span",
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Iterator[Span]:
        """Open a span for the ``with`` block's duration.

        ``parent`` defaults to the current thread's innermost open span;
        pass it explicitly when recording from a different thread than
        the one that opened the parent (the ``threads`` executor does).
        """
        span = self.start_span(name, kind=kind, parent=parent, **attributes)
        try:
            yield span
        finally:
            self.end_span(span)

    def start_span(
        self,
        name: str,
        kind: str = "span",
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span; prefer the :meth:`span` context manager."""
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        with self._lock:
            self._next_id += 1
            span = Span(
                name=name,
                kind=kind,
                span_id=self._next_id,
                parent_id=parent.span_id if parent is not None else None,
                start=self._now(),
                thread_id=threading.get_ident(),
                attributes=dict(attributes),
            )
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
        stack.append(span)
        if self.profiler is not None:
            self.profiler.on_span_start(span)
        return span

    def record_completed(
        self,
        name: str,
        kind: str = "span",
        parent: Optional[Span] = None,
        duration: float = 0.0,
        counters: Optional[dict] = None,
        **attributes: Any,
    ) -> Span:
        """Record an already-finished span in one call.

        Used for task spans executed in *worker processes*: the worker
        ships back a lightweight ``(duration, counters, attributes)``
        record and the parent materialises the span here, backdating
        ``start`` by the measured duration.  The span never enters the
        thread-local stack (it was not open on this thread), and sinks
        receive it fully annotated.
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        now = self._now()
        with self._lock:
            self._next_id += 1
            span = Span(
                name=name,
                kind=kind,
                span_id=self._next_id,
                parent_id=parent.span_id if parent is not None else None,
                start=max(0.0, now - duration),
                thread_id=threading.get_ident(),
                attributes=dict(attributes),
            )
            span.end = now
            if counters:
                span.counters = counters
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
            self.spans.append(span)
            for sink in self._sinks:
                sink.emit(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close a span opened with :meth:`start_span`."""
        span.end = self._now()
        if self.profiler is not None:
            # Before sink emission, so profile annotations (CPU seconds,
            # memory watermarks) reach the JSONL trace.
            self.profiler.on_span_end(span)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self.spans.append(span)
            for sink in self._sinks:
                sink.emit(span)
        self._observe_wall(span)

    def _observe_wall(self, span: Span) -> None:
        """Fold phase/job wall time into the ``wall`` metric group.

        Every phase and job span closes through :meth:`end_span`
        regardless of executor, which makes this the one choke point
        where wall-clock histograms stay complete for free.
        """
        if span.kind == "phase":
            self.metrics.histogram(
                "repro_phase_wall_seconds",
                "Wall-clock seconds spent in each job phase.",
                labels=("job", "phase"),
                group=GROUP_WALL,
                buckets=SECONDS_BUCKETS,
            ).observe(
                span.duration,
                job=span.attributes.get("job", span.name),
                phase=span.name,
            )
        elif span.kind == "job":
            self.metrics.histogram(
                "repro_job_wall_seconds",
                "Wall-clock seconds per MapReduce job.",
                labels=("job",),
                group=GROUP_WALL,
                buckets=SECONDS_BUCKETS,
            ).observe(
                span.duration, job=span.attributes.get("job", span.name)
            )

    # ------------------------------------------------------------------
    def record_job(self, result: Any) -> None:
        """Register one executed job's :class:`JobResult`."""
        with self._lock:
            self.job_results.append(result)

    def add_sink(self, sink: Any) -> None:
        """Attach another sink (receives spans closed from now on)."""
        with self._lock:
            self._sinks.append(sink)

    def close(self) -> None:
        """Flush and close every attached sink; stops the profiler and
        the live telemetry hub (publishing its final ETA-vs-actual
        gauges)."""
        if self.profiler is not None:
            self.profiler.stop()
        if self.live is not None:
            self.live.close()
        with self._lock:
            for sink in self._sinks:
                sink.close()

    def snapshot_spans(self) -> List[Span]:
        """Every span recorded so far — closed spans plus the spans
        still *open* right now.  This is what the live status endpoint
        renders the mid-run dashboard from; open spans keep
        ``end=None`` and renderers substitute the current time."""
        with self._lock:
            seen = set()
            out: List[Span] = []
            for span in self.spans:
                out.append(span)
                seen.add(span.span_id)
            for root in self.roots:
                for span in root.walk():
                    if span.span_id not in seen:
                        out.append(span)
                        seen.add(span.span_id)
            return out

    # ------------------------------------------------------------------
    def find(
        self, kind: Optional[str] = None, name: Optional[str] = None
    ) -> List[Span]:
        """Finished spans filtered by kind and/or exact name."""
        return [
            span
            for span in self.spans
            if (kind is None or span.kind == kind)
            and (name is None or span.name == name)
        ]

    def render(self) -> str:
        """The recorded span tree as indented text."""
        return "\n".join(root.render() for root in self.roots)

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
