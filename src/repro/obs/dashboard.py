"""Self-contained HTML run dashboard (``repro report --html``).

One call, one file, zero network: :func:`render_dashboard` turns a
recorded span list (live from a :class:`~repro.obs.recorder.TraceRecorder`
or reloaded from a JSONL trace via
:func:`~repro.obs.sinks.load_spans_jsonl`) plus an optional metrics
snapshot into a single HTML page with inline CSS and server-rendered
SVG — it opens from disk, attaches to a CI artifact, and pastes into a
bug report without any JavaScript, fonts or CDN fetches.

Sections, in reading order:

* **phase timeline** — a Gantt of every MapReduce job, its map /
  shuffle / reduce phases colour-coded (the where-did-the-time-go view);
* **per-reducer load charts** — one bar chart per job from the job
  span's recorded ``reduce_task_loads`` (the paper's Figure 4, per run);
* **skew table** — the Section-7 statistics per job: p50/p95/max load,
  Gini, Jain fairness, imbalance, replication factor;
* **plan panel** — the cost model's predicted-vs-observed scorecard
  per algorithm and quantity (replication, shuffle, max load, ...),
  worst offender first, from the trace's plan/reconciliation spans or
  the ``repro_plan_*`` gauges of a metrics snapshot;
* **data plane panel** — the profiler's per-job, per-phase CPU /
  memory / GC / pickle accounting (``repro_profile_*`` families of a
  profiled run's metrics snapshot), plus an optional embedded CPU flame
  graph;
* **algorithm tables** — replication factor and consistent-vs-total
  grid-reducer utilisation per algorithm, read from the metrics
  snapshot when one is supplied.

Colour and mark conventions follow a small fixed design system: three
categorical series hues (validated for colour-vision deficiency
separation), ink/gridline tokens for text and chrome, light and dark
themes selected by ``prefers-color-scheme``, bars with rounded data-ends
anchored to the baseline, and text never set in a series colour.
"""

from __future__ import annotations

import html as _html
from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.span import Span
from repro.stats.metrics import load_balance

__all__ = ["render_dashboard", "dashboard_from_recorder"]


# --------------------------------------------------------------------------
# design tokens (inline CSS custom properties; dark mode is its own
# selection from the same ramps, not an automatic inversion)
# --------------------------------------------------------------------------
_CSS = """
:root {
  --surface: #fcfcfb;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --ink-3: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --ink-3: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
  }
}
:root[data-theme="dark"] {
  --surface: #1a1a19;
  --ink: #ffffff;
  --ink-2: #c3c2b7;
  --ink-3: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --series-1: #3987e5;
  --series-2: #d95926;
  --series-3: #199e70;
}
* { box-sizing: border-box; }
body {
  margin: 0 auto;
  padding: 24px;
  max-width: 980px;
  background: var(--surface);
  color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.card {
  border: 1px solid var(--gridline);
  border-radius: 8px;
  padding: 12px 14px;
  margin: 10px 0;
}
.legend { color: var(--ink-2); font-size: 12px; margin: 2px 0 6px; }
.legend .swatch {
  display: inline-block;
  width: 10px; height: 10px;
  border-radius: 2px;
  margin: 0 4px 0 12px;
  vertical-align: baseline;
}
.legend .swatch:first-child { margin-left: 0; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td {
  text-align: right;
  padding: 4px 8px;
  border-bottom: 1px solid var(--gridline);
}
th { color: var(--ink-2); font-weight: 600; }
th:first-child, td:first-child {
  text-align: left;
  font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
  font-size: 12px;
}
svg text { font: 11px system-ui, sans-serif; fill: var(--ink-2); }
svg .muted { fill: var(--ink-3); }
.flag { color: var(--ink); font-weight: 600; }
"""

#: phase name -> categorical series slot (fixed assignment, never cycled).
_PHASE_SERIES = {"map": "series-1", "shuffle": "series-2", "reduce": "series-3"}

_GUTTER = 150  #: left label gutter of the timeline, px
_PLOT_W = 720  #: plot width of every chart, px


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def _fmt(value: float, digits: int = 2) -> str:
    if float(value) == int(value):
        return str(int(value))
    return f"{value:.{digits}f}"


# --------------------------------------------------------------------------
# span digestion
# --------------------------------------------------------------------------
def _effective(span: Span, now: Optional[float]) -> Optional[Span]:
    """The span itself when closed; a shallow copy ending *now* when the
    span is still open and ``now`` is given (the live status endpoint
    renders in-flight spans this way); ``None`` otherwise."""
    if span.end is not None:
        return span
    if now is None:
        return None
    return replace(span, end=max(now, span.start), children=[])


def _job_rows(
    spans: Sequence[Span], now: Optional[float] = None
) -> List[Dict[str, Any]]:
    """One row per job span (start order): name, window, phase spans,
    recorded reducer loads, counter snapshot.  With ``now`` given, jobs
    and phases still open are included as if they ended now."""
    phases_by_job: Dict[str, List[Span]] = {}
    for raw in spans:
        if raw.kind != "phase":
            continue
        span = _effective(raw, now)
        if span is None:
            continue
        job = str(span.attributes.get("job", "?"))
        phases_by_job.setdefault(job, []).append(span)
    job_spans = [
        effective
        for effective in (
            _effective(s, now) for s in spans if s.kind == "job"
        )
        if effective is not None
    ]
    rows: List[Dict[str, Any]] = []
    for span in sorted(job_spans, key=lambda s: (s.start, s.span_id)):
        name = str(span.attributes.get("job", span.name))
        phases = [
            phase
            for phase in phases_by_job.get(name, [])
            if span.start <= phase.start and phase.end <= (span.end or 0.0)
        ]
        rows.append(
            {
                "name": name,
                "start": span.start,
                "end": span.end,
                "phases": sorted(phases, key=lambda s: (s.start, s.span_id)),
                "loads": [
                    int(v)
                    for v in span.attributes.get("reduce_task_loads") or []
                ],
                "counters": span.counters or {},
            }
        )
    return rows


def _job_replication(row: Mapping[str, Any]) -> float:
    framework = row["counters"].get("framework", {})
    reads = framework.get("map_input_records", 0)
    emitted = framework.get("map_output_records", 0)
    return emitted / reads if reads else 0.0


# --------------------------------------------------------------------------
# SVG charts
# --------------------------------------------------------------------------
def _timeline_svg(jobs: List[Dict[str, Any]]) -> str:
    """Gantt of job phase spans; one row per job, phases colour-coded."""
    if not jobs:
        return '<p class="sub">no job spans recorded</p>'
    t0 = min(job["start"] for job in jobs)
    t1 = max(job["end"] for job in jobs)
    scale = _PLOT_W / (t1 - t0) if t1 > t0 else 0.0
    row_h, bar_h = 26, 16
    height = len(jobs) * row_h + 24
    parts = [
        f'<svg role="img" width="{_GUTTER + _PLOT_W + 10}" '
        f'height="{height}" aria-label="per-phase timeline">'
    ]
    # hairline gridlines at the quarter marks
    for quarter in range(5):
        x = _GUTTER + _PLOT_W * quarter / 4
        parts.append(
            f'<line x1="{x:.1f}" y1="0" x2="{x:.1f}" '
            f'y2="{len(jobs) * row_h}" stroke="var(--gridline)" '
            'stroke-width="1"/>'
        )
        label = f"{(t0 + (t1 - t0) * quarter / 4) * 1e3:.1f} ms"
        anchor = "end" if quarter == 4 else "middle"
        parts.append(
            f'<text x="{x:.1f}" y="{len(jobs) * row_h + 14}" '
            f'text-anchor="{anchor}" class="muted">{_esc(label)}</text>'
        )
    for index, job in enumerate(jobs):
        y = index * row_h
        mid = y + row_h / 2 + 4
        parts.append(
            f'<text x="{_GUTTER - 8}" y="{mid:.1f}" text-anchor="end">'
            f"{_esc(job['name'])}</text>"
        )
        segments = job["phases"] or [None]
        for phase in segments:
            if phase is None:
                start, end, series = job["start"], job["end"], "series-1"
            else:
                start, end = phase.start, phase.end
                series = _PHASE_SERIES.get(phase.name, "series-1")
            x = _GUTTER + (start - t0) * scale
            width = max(1.5, (end - start) * scale)
            parts.append(
                f'<rect x="{x:.2f}" y="{y + (row_h - bar_h) / 2:.1f}" '
                f'width="{width:.2f}" height="{bar_h}" rx="3" '
                f'fill="var(--{series})"/>'
            )
    parts.append(
        f'<line x1="{_GUTTER}" y1="{len(jobs) * row_h}" '
        f'x2="{_GUTTER + _PLOT_W}" y2="{len(jobs) * row_h}" '
        'stroke="var(--baseline)" stroke-width="1"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _bar_path(x: float, y: float, w: float, h: float, r: float) -> str:
    """A vertical bar with rounded *top* corners only — the data end is
    rounded, the baseline end stays flat (anchored)."""
    r = min(r, w / 2, h)
    return (
        f"M{x:.2f},{y + h:.2f} "
        f"L{x:.2f},{y + r:.2f} Q{x:.2f},{y:.2f} {x + r:.2f},{y:.2f} "
        f"L{x + w - r:.2f},{y:.2f} "
        f"Q{x + w:.2f},{y:.2f} {x + w:.2f},{y + r:.2f} "
        f"L{x + w:.2f},{y + h:.2f} Z"
    )


def _load_chart_svg(loads: List[int]) -> str:
    """Per-reducer load bars for one job: single series, baseline-
    anchored rounded bars, the max bar direct-labelled."""
    if not loads:
        return '<p class="sub">no reduce tasks</p>'
    plot_h, pad_top = 110, 18
    n = len(loads)
    gap = 2.0
    bar_w = max(2.0, min(24.0, _PLOT_W / n - gap))
    chart_w = min(_PLOT_W, n * (bar_w + gap)) + 50
    peak = max(max(loads), 1)
    max_index = loads.index(max(loads))
    parts = [
        f'<svg role="img" width="{chart_w:.0f}" '
        f'height="{plot_h + pad_top + 18}" aria-label="per-reducer load">'
    ]
    for quarter in (1, 2, 3, 4):
        value = peak * quarter / 4
        y = pad_top + plot_h - plot_h * quarter / 4
        parts.append(
            f'<line x1="40" y1="{y:.1f}" x2="{chart_w:.0f}" y2="{y:.1f}" '
            'stroke="var(--gridline)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="36" y="{y + 4:.1f}" text-anchor="end" class="muted">'
            f"{_esc(_fmt(value, 1))}</text>"
        )
    for index, load in enumerate(loads):
        h = plot_h * load / peak
        x = 40 + index * (bar_w + gap)
        y = pad_top + plot_h - h
        if load <= 0:
            continue
        if bar_w >= 6:
            parts.append(
                f'<path d="{_bar_path(x, y, bar_w, h, 4)}" '
                'fill="var(--series-1)"/>'
            )
        else:
            parts.append(
                f'<rect x="{x:.2f}" y="{y:.2f}" width="{bar_w:.2f}" '
                f'height="{h:.2f}" fill="var(--series-1)"/>'
            )
        if index == max_index:
            parts.append(
                f'<text x="{x + bar_w / 2:.1f}" y="{y - 4:.1f}" '
                f'text-anchor="middle">{load}</text>'
            )
    parts.append(
        f'<line x1="40" y1="{pad_top + plot_h}" x2="{chart_w:.0f}" '
        f'y2="{pad_top + plot_h}" stroke="var(--baseline)" '
        'stroke-width="1"/>'
    )
    parts.append(
        f'<text x="40" y="{pad_top + plot_h + 14}" class="muted">'
        f"task 0 &#8594; {n - 1}</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


# --------------------------------------------------------------------------
# tables
# --------------------------------------------------------------------------
def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _skew_table(jobs: List[Dict[str, Any]]) -> str:
    rows = []
    for job in jobs:
        balance = load_balance(dict(enumerate(job["loads"])))
        rows.append(
            (
                job["name"],
                balance.reducers,
                balance.total,
                _fmt(balance.p50),
                _fmt(balance.p95),
                balance.max_load,
                _fmt(balance.gini, 3),
                _fmt(balance.fairness, 3),
                _fmt(balance.imbalance),
                _fmt(_job_replication(job)),
            )
        )
    return _table(
        (
            "job", "reducers", "records", "p50", "p95", "max",
            "Gini", "Jain", "imbalance", "replication",
        ),
        rows,
    )


def _metric_samples(
    metrics: Optional[Mapping[str, Any]], name: str
) -> List[Tuple[Dict[str, str], Any]]:
    """``(labels-dict, value)`` pairs of one family from an
    :meth:`MetricsRegistry.as_dict` snapshot."""
    if not metrics or name not in metrics:
        return []
    entry = metrics[name]
    label_names = entry.get("labels", [])
    out = []
    for sample in entry.get("samples", []):
        labels = dict(zip(label_names, sample["labels"]))
        out.append((labels, sample.get("value")))
    return out


def _algorithm_tables(metrics: Optional[Mapping[str, Any]]) -> str:
    replication = _metric_samples(
        metrics, "repro_algorithm_replication_factor"
    )
    grid = _metric_samples(metrics, "repro_grid_reducers")
    utilisation = {
        labels["algorithm"]: value
        for labels, value in _metric_samples(metrics, "repro_grid_utilisation")
    }
    sections = []
    if replication:
        rows = [
            (labels["algorithm"], _fmt(value, 4))
            for labels, value in sorted(
                replication, key=lambda s: s[0]["algorithm"]
            )
        ]
        sections.append(
            "<h2>Replication factor per algorithm</h2>"
            '<div class="card">'
            + _table(("algorithm", "tuples emitted / tuples read"), rows)
            + "</div>"
        )
    if grid:
        by_algorithm: Dict[str, Dict[str, float]] = {}
        for labels, value in grid:
            by_algorithm.setdefault(labels["algorithm"], {})[
                labels["kind"]
            ] = value
        rows = []
        for algorithm in sorted(by_algorithm):
            kinds = by_algorithm[algorithm]
            consistent = kinds.get("consistent", 0)
            total = kinds.get("total", 0)
            util = utilisation.get(algorithm)
            if util is None and total:
                util = consistent / total
            rows.append(
                (
                    algorithm,
                    _fmt(consistent),
                    _fmt(total),
                    _fmt(util, 4) if util is not None else "-",
                )
            )
        sections.append(
            "<h2>Grid reducer utilisation</h2>"
            '<div class="card">'
            + _table(
                ("algorithm", "consistent", "total", "utilisation"), rows
            )
            + "</div>"
        )
    return "".join(sections)


def _plan_panel(
    spans: Sequence[Span], metrics: Optional[Mapping[str, Any]]
) -> str:
    """The predicted-vs-observed cost-model scorecard.

    Rows come from the trace's ``plan``/``algorithm`` span pairs when
    present (live recorder or reloaded JSONL), otherwise from the
    ``repro_plan_*`` gauges of a metrics snapshot; worst offender
    (largest absolute relative error) first.
    """
    from repro.obs.explain import reconciliation_from_spans, relative_error

    rows: List[Tuple[str, str, float, float, float]] = []
    for reconciliation in reconciliation_from_spans(spans):
        for row in reconciliation.rows:
            rows.append(
                (
                    reconciliation.algorithm,
                    row.quantity,
                    row.predicted,
                    row.observed,
                    row.error,
                )
            )
    if not rows:
        observed = {
            (labels["algorithm"], labels["quantity"]): value
            for labels, value in _metric_samples(
                metrics, "repro_plan_observed"
            )
        }
        for labels, value in _metric_samples(metrics, "repro_plan_predicted"):
            key = (labels["algorithm"], labels["quantity"])
            if key in observed:
                rows.append(
                    (
                        key[0],
                        key[1],
                        value,
                        observed[key],
                        relative_error(value, observed[key]),
                    )
                )
    if not rows:
        return ""
    rows.sort(key=lambda r: (-abs(r[4]), r[0], r[1]))
    table_rows = [
        (
            algorithm,
            quantity,
            _fmt(predicted, 3),
            _fmt(observed_value, 3),
            f"{error:+.2%}",
        )
        for algorithm, quantity, predicted, observed_value, error in rows
    ]
    return (
        "<h2>Plan &#183; predicted vs observed</h2>"
        '<div class="card">'
        + _table(
            ("algorithm", "quantity", "predicted", "observed", "rel error"),
            table_rows,
        )
        + "</div>"
    )


def _data_plane_panel(metrics: Optional[Mapping[str, Any]]) -> str:
    """The profiler's per-job, per-phase CPU / memory / GC /
    serialization table, from the ``repro_profile_*`` families of a
    metrics snapshot.  Empty string when the run was not profiled."""
    from repro.obs.profile import _fmt_bytes

    cpu: Dict[Tuple[str, str], Dict[str, float]] = {}
    for labels, value in _metric_samples(
        metrics, "repro_profile_cpu_seconds_total"
    ):
        cpu.setdefault((labels["job"], labels["phase"]), {})[
            labels["where"]
        ] = value
    if not cpu:
        return ""

    def by_phase(name: str) -> Dict[Tuple[str, str], float]:
        return {
            (labels["job"], labels["phase"]): value
            for labels, value in _metric_samples(metrics, name)
        }

    gc_pauses = by_phase("repro_profile_gc_pauses_total")
    gc_seconds = by_phase("repro_profile_gc_pause_seconds_total")
    rss = by_phase("repro_profile_mem_rss_peak_bytes")
    traced_peak = by_phase("repro_profile_mem_peak_bytes")
    pickle_bytes: Dict[Tuple[str, str], float] = {}
    for labels, value in _metric_samples(
        metrics, "repro_profile_pickle_bytes_total"
    ):
        key = (labels["job"], labels["phase"])
        pickle_bytes[key] = pickle_bytes.get(key, 0.0) + value
    pickle_seconds: Dict[Tuple[str, str], float] = {}
    for labels, value in _metric_samples(
        metrics, "repro_profile_pickle_seconds_total"
    ):
        key = (labels["job"], labels["phase"])
        pickle_seconds[key] = pickle_seconds.get(key, 0.0) + value

    phase_order = {"map": 0, "shuffle": 1, "reduce": 2}
    rows = []
    for job, phase in sorted(
        cpu, key=lambda k: (k[0], phase_order.get(k[1], 9), k[1])
    ):
        if job == "driver":
            continue
        key = (job, phase)
        rows.append(
            (
                job,
                phase,
                f"{cpu[key].get('task', 0.0):.3f}",
                f"{cpu[key].get('driver', 0.0):.3f}",
                int(gc_pauses.get(key, 0)),
                f"{gc_seconds.get(key, 0.0):.3f}",
                _fmt_bytes(traced_peak.get(key, rss.get(key, 0))),
                _fmt_bytes(pickle_bytes.get(key, 0)),
                f"{pickle_seconds.get(key, 0.0):.3f}",
            )
        )
    extras = []
    for labels, value in _metric_samples(
        metrics, "repro_profile_shuffle_sort_seconds_total"
    ):
        extras.append(
            f"shuffle repr-sort ({_esc(labels['job'])}): {value:.3f}s"
        )
    for _labels, value in _metric_samples(
        metrics, "repro_profile_fs_staged_bytes_total"
    ):
        if value:
            extras.append(f"fs staged bytes: {_esc(_fmt_bytes(value))}")
    extra_html = (
        f'<p class="legend">{" &#183; ".join(extras)}</p>' if extras else ""
    )
    return (
        "<h2>Data plane &#183; CPU / memory / serialization</h2>"
        '<div class="card">'
        + _table(
            (
                "job", "phase", "task cpu s", "driver cpu s", "gc",
                "gc pause s", "mem peak", "pickle bytes", "pickle s",
            ),
            rows,
        )
        + extra_html
        + "</div>"
    )


def _fallback_panel(metrics: Optional[Mapping[str, Any]]) -> str:
    """Jobs that requested the columnar data plane but fell back to the
    record plane, with the gate's reason — from the
    ``repro_data_plane_fallback_total`` family.  Empty string when no
    job fell back."""
    rows = [
        (labels.get("job", "?"), labels.get("reason", "?"), int(value))
        for labels, value in _metric_samples(
            metrics, "repro_data_plane_fallback_total"
        )
    ]
    if not rows:
        return ""
    return (
        "<h2>Data plane &#183; columnar fallbacks</h2>"
        '<div class="card">'
        + _table(("job", "reason", "jobs"), sorted(rows))
        + '<p class="legend">these jobs requested the columnar plane '
        "but ran on the record plane</p>"
        + "</div>"
    )


def _flame_panel(flame_svg: Optional[str]) -> str:
    if not flame_svg:
        return ""
    return (
        "<h2>CPU flame graph</h2>"
        '<div class="card" style="overflow-x:auto">'
        + flame_svg
        + "</div>"
    )


def _metrics_overview(metrics: Optional[Mapping[str, Any]]) -> str:
    if not metrics:
        return ""
    rows = [
        (
            name,
            entry.get("type", "?"),
            entry.get("group", "?"),
            len(entry.get("samples", [])),
        )
        for name, entry in sorted(metrics.items())
    ]
    return (
        "<h2>Metric families</h2>"
        '<div class="card">'
        + _table(("family", "type", "group", "samples"), rows)
        + "</div>"
    )


# --------------------------------------------------------------------------
# page assembly
# --------------------------------------------------------------------------
def render_dashboard(
    spans: Sequence[Span],
    metrics: Optional[Any] = None,
    *,
    title: str = "repro run",
    flame_svg: Optional[str] = None,
    now: Optional[float] = None,
) -> str:
    """Render one self-contained HTML dashboard string.

    ``spans`` is any span sequence (live recorder or reloaded JSONL
    trace); ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry`
    or an :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` snapshot,
    or ``None`` to skip the metric-backed tables.  ``flame_svg`` embeds
    a profiled run's flame graph (``Profiler.flame_svg()``) as its own
    panel; the Data plane table appears whenever the snapshot carries
    ``repro_profile_*`` families.  ``now`` (recorder-epoch seconds)
    renders spans still *open* as if they ended now — the live status
    endpoint's mid-run view; without it open spans are skipped as
    before.
    """
    if metrics is not None and hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    jobs = _job_rows(spans, now)
    closed = [span for span in spans if span.end is not None]
    open_count = len(spans) - len(closed)
    bounds = [
        (span.start, span.end if span.end is not None else now)
        for span in spans
        if span.end is not None or now is not None
    ]
    wall = (
        max(end for _, end in bounds) - min(start for start, _ in bounds)
        if bounds
        else 0.0
    )
    legend = (
        '<p class="legend">'
        '<span class="swatch" style="background:var(--series-1)"></span>map'
        '<span class="swatch" style="background:var(--series-2)"></span>'
        "shuffle"
        '<span class="swatch" style="background:var(--series-3)"></span>'
        "reduce</p>"
    )
    load_cards = "".join(
        f'<div class="card"><h2 style="margin-top:0">'
        f"Reducer load &#183; {_esc(job['name'])}</h2>"
        + _load_chart_svg(job["loads"])
        + "</div>"
        for job in jobs
    )
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">{len(jobs)} jobs &#183; {len(closed)} spans'
        + (
            f" (+{open_count} in flight)"
            if now is not None and open_count
            else ""
        )
        + f" &#183; {wall * 1e3:.2f} ms wall</p>",
        "<h2>Per-phase timeline</h2>",
        f'<div class="card">{legend}{_timeline_svg(jobs)}</div>',
        "<h2>Per-reducer load distribution</h2>",
        load_cards or '<p class="sub">no jobs recorded</p>',
        "<h2>Skew &amp; replication per job</h2>",
        f'<div class="card">{_skew_table(jobs)}</div>',
        _plan_panel(spans, metrics),
        _data_plane_panel(metrics),
        _fallback_panel(metrics),
        _flame_panel(flame_svg),
        _algorithm_tables(metrics),
        _metrics_overview(metrics),
        "</body></html>",
    ]
    return "".join(parts)


def dashboard_from_recorder(
    recorder: Any, *, title: str = "repro run"
) -> str:
    """Dashboard for a live :class:`~repro.obs.recorder.TraceRecorder`
    (its spans plus its metrics registry; a profiled recorder also gets
    the flame-graph panel)."""
    profiler = getattr(recorder, "profiler", None)
    flame = profiler.flame_svg(title=title) if profiler is not None else None
    return render_dashboard(
        recorder.spans, recorder.metrics, title=title, flame_svg=flame
    )
