"""Span-based tracing and run observability.

The paper's evaluation is an argument about *where work goes* —
intermediate pair counts, replication, per-reducer load.  This package
makes a run inspectable at that granularity: attach a
:class:`TraceRecorder` (``execute(..., observer=recorder)`` or
``repro run --trace out.json``) and every query, algorithm, MapReduce
job, phase and map/reduce task is recorded as a hierarchical span with
wall-clock duration, counter deltas, and cost-model charges.

* spans & recorder — :class:`Span`, :class:`TraceRecorder`
* sinks — :class:`InMemorySink` (tests), :class:`JsonlSink` (event
  log), :class:`ChromeTraceSink` (load the file in Perfetto or
  ``chrome://tracing``)
* analysis — :class:`RunReport` flags skewed reducers, stragglers and
  empty-output tasks using the Section-7 load statistics

Observation is strictly passive: with no observer attached nothing is
recorded and results, counters and benchmark numbers are unchanged.
"""

from repro.obs.recorder import TraceRecorder
from repro.obs.report import FaultSummary, JobLoadSummary, RunReport, TaskFlag
from repro.obs.sinks import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    TraceSink,
    open_sink,
)
from repro.obs.span import Span

__all__ = [
    "Span",
    "TraceRecorder",
    "TraceSink",
    "InMemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "open_sink",
    "RunReport",
    "FaultSummary",
    "JobLoadSummary",
    "TaskFlag",
]
