"""Span-based tracing and run observability.

The paper's evaluation is an argument about *where work goes* —
intermediate pair counts, replication, per-reducer load.  This package
makes a run inspectable at that granularity: attach a
:class:`TraceRecorder` (``execute(..., observer=recorder)`` or
``repro run --trace out.json``) and every query, algorithm, MapReduce
job, phase and map/reduce task is recorded as a hierarchical span with
wall-clock duration, counter deltas, and cost-model charges.

* spans & recorder — :class:`Span`, :class:`TraceRecorder`
* sinks — :class:`InMemorySink` (tests), :class:`JsonlSink` (event
  log), :class:`ChromeTraceSink` (load the file in Perfetto or
  ``chrome://tracing``)
* metrics — :class:`MetricsRegistry` on ``recorder.metrics``:
  counters/gauges/histograms with Prometheus-text and JSON export,
  recording per-phase wall time, tuple in/out, shuffle bytes-ish,
  replication factor, grid utilisation and key-skew histograms
* analysis — :class:`RunReport` flags skewed reducers, stragglers and
  empty-output tasks using the Section-7 load statistics
* explain — :func:`explain_query` renders the pre-run physical plan
  (planner rationale, cycles, grid shape, kernels, analytic cost-model
  predictions) and :class:`PlanReconciliation` joins those predictions
  against the observed metrics after the run
* dashboard — :func:`render_dashboard` emits one self-contained HTML
  page (``repro report --html``) with phase timelines, reducer-load
  charts and the replication/skew tables
* profile — :class:`Profiler` (``repro run --profile`` /
  ``$REPRO_PROFILE``): sampling CPU profiler with collapsed stacks and
  an SVG flame graph, per-phase memory/GC watermarks, and pickle /
  repr-sort / staged-bytes serialization accounting in the ``profile``
  metric group
* live — :class:`TelemetryHub` (``repro run --live`` / ``--progress`` /
  ``--serve-status`` / ``$REPRO_LIVE``): per-task heartbeat bus with
  live progress/ETA, an observed-straggler watchdog that feeds the
  existing speculative re-execution path, and an embedded HTTP status
  endpoint (:class:`StatusServer`: ``/metrics``, ``/progress``, ``/``)

Observation is strictly passive: with no observer attached nothing is
recorded and results, counters and benchmark numbers are unchanged.
"""

from repro.obs.dashboard import dashboard_from_recorder, render_dashboard
from repro.obs.live import (
    Heartbeat,
    LiveConfig,
    ProgressPrinter,
    StatusServer,
    TaskBeat,
    TelemetryHub,
    fetch_progress,
    render_progress_line,
    render_top,
    resolve_live,
)
from repro.obs.explain import (
    PlanExplain,
    PlanReconciliation,
    ReconciliationRow,
    explain_query,
    reconciliation_from_spans,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.profile import (
    Profiler,
    StackSampler,
    data_plane_summary,
    render_flame_svg,
    resolve_profile,
)
from repro.obs.recorder import TraceRecorder
from repro.obs.report import FaultSummary, JobLoadSummary, RunReport, TaskFlag
from repro.obs.sinks import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    TraceSink,
    load_spans_jsonl,
    load_spans_jsonl_tolerant,
    open_sink,
)
from repro.obs.span import Span

__all__ = [
    "Span",
    "TraceRecorder",
    "TraceSink",
    "InMemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "open_sink",
    "load_spans_jsonl",
    "load_spans_jsonl_tolerant",
    "RunReport",
    "FaultSummary",
    "JobLoadSummary",
    "TaskFlag",
    "MetricsRegistry",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "render_dashboard",
    "dashboard_from_recorder",
    "PlanExplain",
    "PlanReconciliation",
    "ReconciliationRow",
    "explain_query",
    "reconciliation_from_spans",
    "Profiler",
    "StackSampler",
    "resolve_profile",
    "render_flame_svg",
    "data_plane_summary",
    "TelemetryHub",
    "LiveConfig",
    "resolve_live",
    "TaskBeat",
    "Heartbeat",
    "StatusServer",
    "ProgressPrinter",
    "fetch_progress",
    "render_progress_line",
    "render_top",
]
