"""Query EXPLAIN and predicted-vs-actual plan reconciliation.

Two halves, one contract:

* **Pre-run EXPLAIN** — :func:`explain_query` renders the physical plan
  for a query *before* anything runs: the planner's decision rationale
  (query class, Allen path-consistency emptiness proof, chosen algorithm
  and why each alternative was rejected), the MapReduce cycle structure,
  the reducer-grid shape (consistent vs total reducers), the partitioner
  and the per-predicate sweep kernel, plus the analytic predictions of
  :meth:`~repro.core.algorithms.base.JoinAlgorithm.predict` (replication
  factor, map-output tuples, shuffled records, max reducer load,
  modelled seconds).
* **Post-run reconciliation** — :class:`PlanReconciliation` joins those
  predictions against the observed
  :meth:`~repro.core.results.ExecutionMetrics.observed_quantities`, one
  row per quantity with the signed relative error, ranked worst-offender
  first.  The executor records both sides as spans (``kind="plan"`` and
  ``kind="reconciliation"``) and publishes them as run-group gauges
  (``repro_plan_predicted`` / ``repro_plan_observed`` /
  ``repro_plan_relative_error``), so the numbers survive into the JSONL
  trace, the Prometheus exposition, the HTML dashboard's Plan panel and
  ``repro report`` — and ``benchmarks/check_model_error.py`` turns
  cost-model drift into a CI gate.

Everything here is deterministic: the analytic tier depends only on the
:class:`~repro.core.tuning.DataProfile` and the
:class:`~repro.core.tuning.PredictConfig`, and every observed quantity
lives in the ``run`` metric group, so reconciliations are bit-identical
across executors and invariant under fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ReproError
from repro.obs.span import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.query import IntervalJoinQuery
    from repro.core.results import ExecutionMetrics
    from repro.core.schema import Relation
    from repro.core.tuning import PlanPrediction
    from repro.mapreduce.cost import CostModel
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "PlanExplain",
    "PlanReconciliation",
    "ReconciliationRow",
    "explain_query",
    "reconciliation_from_spans",
    "relative_error",
]

#: Guard against division by ~zero when the observed quantity is tiny.
_ERROR_FLOOR = 1e-9


def relative_error(predicted: float, observed: float) -> float:
    """Signed relative error of a prediction: ``(pred - obs) / |obs|``.

    Positive means the model over-predicted.  Both sides zero is a
    perfect prediction (0.0); an observed zero against a non-zero
    prediction divides by the floor of 1.0 so the error stays finite and
    meaningful (it becomes the absolute miss).
    """
    if predicted == observed:
        return 0.0
    return (predicted - observed) / max(abs(observed), 1.0, _ERROR_FLOOR)


# ---------------------------------------------------------------------------
# reconciliation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReconciliationRow:
    """One quantity's predicted/observed/relative-error triple."""

    quantity: str
    predicted: float
    observed: float

    @property
    def error(self) -> float:
        return relative_error(self.predicted, self.observed)

    def as_dict(self) -> Dict[str, float]:
        return {
            "quantity": self.quantity,
            "predicted": self.predicted,
            "observed": self.observed,
            "relative_error": self.error,
        }


@dataclass(frozen=True)
class PlanReconciliation:
    """Predicted-vs-observed join for one algorithm run.

    Build with :meth:`from_metrics` (live run) or
    :func:`reconciliation_from_spans` (saved JSONL trace); ``rows`` holds
    one :class:`ReconciliationRow` per quantity the cost model predicts.
    """

    algorithm: str
    tier: str
    rows: Tuple[ReconciliationRow, ...]

    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        algorithm: str,
        tier: str,
        predicted: Mapping[str, float],
        observed: Mapping[str, float],
    ) -> "PlanReconciliation":
        """Join two quantity mappings on their shared keys."""
        rows = tuple(
            ReconciliationRow(
                quantity=key,
                predicted=float(predicted[key]),
                observed=float(observed[key]),
            )
            for key in sorted(set(predicted) & set(observed))
        )
        return cls(algorithm=algorithm, tier=tier, rows=rows)

    @classmethod
    def from_metrics(
        cls, prediction: "PlanPrediction", metrics: "ExecutionMetrics"
    ) -> "PlanReconciliation":
        """Join a prediction against one run's execution metrics."""
        return cls.from_values(
            algorithm=metrics.algorithm,
            tier=prediction.tier,
            predicted=prediction.quantities(),
            observed=metrics.observed_quantities(),
        )

    # ------------------------------------------------------------------
    def row(self, quantity: str) -> Optional[ReconciliationRow]:
        for entry in self.rows:
            if entry.quantity == quantity:
                return entry
        return None

    def errors(self) -> Dict[str, float]:
        """``quantity -> signed relative error`` for every row."""
        return {entry.quantity: entry.error for entry in self.rows}

    def worst_offenders(
        self, limit: Optional[int] = None
    ) -> List[ReconciliationRow]:
        """Rows ranked by absolute relative error, worst first."""
        ranked = sorted(
            self.rows, key=lambda r: (-abs(r.error), r.quantity)
        )
        return ranked[:limit] if limit is not None else ranked

    @property
    def max_relative_error(self) -> float:
        return max((abs(r.error) for r in self.rows), default=0.0)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "tier": self.tier,
            "rows": [row.as_dict() for row in self.rows],
            "max_relative_error": self.max_relative_error,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PlanReconciliation":
        return cls(
            algorithm=str(payload["algorithm"]),
            tier=str(payload.get("tier", "analytic")),
            rows=tuple(
                ReconciliationRow(
                    quantity=str(row["quantity"]),
                    predicted=float(row["predicted"]),
                    observed=float(row["observed"]),
                )
                for row in payload.get("rows", ())
            ),
        )

    # ------------------------------------------------------------------
    def publish(self, registry: "MetricsRegistry") -> None:
        """Surface every row as run-group gauges.

        All three families are deterministic facts of the computation —
        the analytic prediction depends only on the data profile and the
        observed side lives in the ``run`` counter groups — so they are
        executor-invariant and identical under fault injection, exactly
        like the rest of the ``run`` group.
        """
        predicted = registry.gauge(
            "repro_plan_predicted",
            "Cost-model-predicted run quantity for the executed plan.",
            labels=("algorithm", "quantity"),
        )
        observed = registry.gauge(
            "repro_plan_observed",
            "Observed run quantity joined against the plan prediction.",
            labels=("algorithm", "quantity"),
        )
        error = registry.gauge(
            "repro_plan_relative_error",
            "Signed relative error of the plan prediction "
            "((predicted - observed) / |observed|).",
            labels=("algorithm", "quantity"),
        )
        for row in self.rows:
            predicted.set(
                row.predicted, algorithm=self.algorithm,
                quantity=row.quantity,
            )
            observed.set(
                row.observed, algorithm=self.algorithm, quantity=row.quantity
            )
            error.set(
                row.error, algorithm=self.algorithm, quantity=row.quantity
            )

    def render(self) -> str:
        """A printable reconciliation table, worst offender first."""
        lines = [
            f"plan reconciliation — {self.algorithm} "
            f"({self.tier} prediction)"
        ]
        width = max((len(r.quantity) for r in self.rows), default=8)
        for row in self.worst_offenders():
            lines.append(
                f"  {row.quantity:<{width}}  "
                f"predicted={_fmt(row.predicted):>12}  "
                f"observed={_fmt(row.observed):>12}  "
                f"error={row.error:+8.2%}"
            )
        if not self.rows:
            lines.append("  (no prediction to reconcile)")
        return "\n".join(lines)


def reconciliation_from_spans(
    spans: Sequence[Span],
) -> List[PlanReconciliation]:
    """Rebuild reconciliations from a recorded span sequence.

    Pairs each ``kind="plan"`` span's predicted quantities with the
    matching ``kind="algorithm"`` span's ``observed_quantities``
    annotation, in trace order — exactly what ``repro report`` does with
    a saved JSONL trace after the run is gone.
    """
    observed_by_algorithm: Dict[str, Dict[str, float]] = {}
    for span in spans:
        if span.kind != "algorithm":
            continue
        quantities = span.attributes.get("observed_quantities")
        if isinstance(quantities, Mapping):
            observed_by_algorithm[
                str(span.attributes.get("algorithm", span.name))
            ] = {str(k): float(v) for k, v in quantities.items()}
    out: List[PlanReconciliation] = []
    for span in spans:
        if span.kind != "plan":
            continue
        predicted = span.attributes.get("quantities")
        algorithm = str(span.attributes.get("algorithm", "?"))
        observed = observed_by_algorithm.get(algorithm)
        if not isinstance(predicted, Mapping) or observed is None:
            continue
        out.append(
            PlanReconciliation.from_values(
                algorithm=algorithm,
                tier=str(span.attributes.get("tier", "analytic")),
                predicted={
                    str(k): float(v) for k, v in predicted.items()
                },
                observed=observed,
            )
        )
    return out


# ---------------------------------------------------------------------------
# EXPLAIN
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlanExplain:
    """Everything ``repro explain`` prints for one query."""

    query: str
    query_class: str
    algorithm: Optional[str]
    chosen_by: str
    reason: str
    provably_empty: bool
    empty_proof: Optional[str]
    alternatives: Tuple[Tuple[str, str], ...]
    num_partitions: int
    partitioner: str
    kernels: Tuple[Tuple[str, str], ...]
    prediction: Optional["PlanPrediction"]
    prediction_error: Optional[str]
    data_plane: str = "records"
    #: pre-run warning about the data plane (e.g. the chosen algorithm
    #: declares no columnar support, so a columnar request would fall
    #: back to records for every job).
    data_plane_note: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "query_class": self.query_class,
            "algorithm": self.algorithm,
            "chosen_by": self.chosen_by,
            "reason": self.reason,
            "provably_empty": self.provably_empty,
            "empty_proof": self.empty_proof,
            "alternatives": [list(alt) for alt in self.alternatives],
            "num_partitions": self.num_partitions,
            "partitioner": self.partitioner,
            "data_plane": self.data_plane,
            "data_plane_note": self.data_plane_note,
            "kernels": [list(pair) for pair in self.kernels],
            "prediction": (
                self.prediction.as_dict() if self.prediction else None
            ),
            "prediction_error": self.prediction_error,
        }

    def render(self) -> str:
        """The EXPLAIN text: rationale, physical plan, predictions."""
        lines = [f"EXPLAIN {self.query}"]
        lines.append(f"  class:       {self.query_class}")
        if self.provably_empty:
            lines.append("  plan:        answer empty without running jobs")
            lines.append(f"  emptiness:   {self.empty_proof or self.reason}")
            return "\n".join(lines)
        lines.append(
            f"  plan:        {self.reason}  [chosen by {self.chosen_by}]"
        )
        lines.append(
            "  emptiness:   not provably empty "
            "(Allen path consistency found no contradiction)"
        )
        if self.alternatives:
            lines.append("  rejected alternatives:")
            for name, why in self.alternatives:
                lines.append(f"    - {name}: {why}")
        lines.append(f"  partitioner: {self.partitioner}")
        if self.data_plane == "columnar":
            lines.append(
                "  data plane:  columnar (struct-of-arrays shuffle; "
                "unsupported jobs fall back to records per job)"
            )
        else:
            lines.append("  data plane:  records (tuple-at-a-time)")
        if self.data_plane_note:
            lines.append(f"  data plane note: {self.data_plane_note}")
        if self.kernels:
            lines.append("  kernels:")
            for condition, kernel in self.kernels:
                lines.append(f"    {condition} -> {kernel}")
        prediction = self.prediction
        if prediction is None:
            lines.append(
                "  prediction:  unavailable"
                + (f" ({self.prediction_error})" if self.prediction_error
                   else "")
            )
            return "\n".join(lines)
        lines.append(
            f"  physical plan: {prediction.num_cycles} MapReduce cycle(s), "
            f"{self.num_partitions} partitions, {prediction.tier} prediction"
        )
        for index, cycle in enumerate(prediction.cycles, start=1):
            lines.append(
                f"    cycle {index} [{cycle.name}]: "
                f"reads={_fmt(cycle.records_read)} "
                f"map_output={_fmt(cycle.map_output_records)} "
                f"shuffled={_fmt(cycle.shuffled_records)} "
                f"reduce_tasks={cycle.reduce_tasks} "
                f"max_load={_fmt(cycle.max_reducer_load)}"
            )
        total = max(prediction.total_reducers, 0)
        if total:
            utilisation = prediction.consistent_reducers / total
            lines.append(
                f"  reducer grid: {prediction.consistent_reducers} "
                f"consistent / {total} total "
                f"(utilisation {utilisation:.2f})"
            )
        lines.append("  predicted:")
        for quantity, value in sorted(prediction.quantities().items()):
            lines.append(f"    {quantity:<20} {_fmt(value)}")
        for note in prediction.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def explain_query(
    query: "IntervalJoinQuery",
    data: Optional[Mapping[str, "Relation"]] = None,
    *,
    algorithm: Optional[str] = None,
    num_partitions: int = 16,
    prune: bool = False,
    cost_model: Optional["CostModel"] = None,
    exact: bool = False,
    data_plane: Optional[str] = None,
) -> PlanExplain:
    """Build the pre-run EXPLAIN for a query.

    ``data`` supplies the :class:`~repro.core.tuning.DataProfile` the
    analytic predictions need (and the rows themselves when
    ``exact=True``); without it the plan rationale still renders but the
    prediction section reports itself unavailable.  ``algorithm``
    overrides the planner exactly as :func:`repro.core.executor.execute`
    does, and ``data_plane`` resolves exactly as at run time (explicit
    argument, then ``$REPRO_DATA_PLANE``, then ``"records"``) so the
    EXPLAIN shows the plane the run would use.
    """
    from repro.columnar.plane import resolve_data_plane
    from repro.core.planner import ALGORITHMS, plan, plan_alternatives
    from repro.core.tuning import PredictConfig, profile_data
    from repro.errors import PlanningError
    from repro.intervals.sweep import kernel_for
    from repro.mapreduce.cost import DEFAULT_COST_MODEL

    plane = resolve_data_plane(data_plane)
    chosen = plan(query, prune=prune)
    if chosen.provably_empty:
        return PlanExplain(
            query=str(query),
            query_class=query.query_class.name,
            algorithm=None,
            chosen_by="planner",
            reason=chosen.reason,
            provably_empty=True,
            empty_proof=chosen.empty_proof,
            alternatives=(),
            num_partitions=num_partitions,
            partitioner="",
            kernels=(),
            prediction=None,
            prediction_error=None,
            data_plane=plane,
        )

    if algorithm is None:
        runner = chosen.algorithm
        chosen_by = "planner"
        reason = chosen.reason
        alternatives = chosen.alternatives
    else:
        try:
            runner = ALGORITHMS[algorithm]()
        except KeyError:
            raise PlanningError(
                f"unknown algorithm {algorithm!r}; known: "
                f"{sorted(ALGORITHMS)}"
            ) from None
        chosen_by = "override"
        reason = (
            f"{query.query_class.value} query -> {runner.name} "
            f"(planner would pick "
            f"{chosen.algorithm.name if chosen.algorithm else 'none'})"
        )
        alternatives = plan_alternatives(
            query, runner.name, prune=prune
        )

    kernels = []
    for condition in query.conditions:
        kernel = kernel_for(condition.predicate)
        if kernel is None:
            description = "filtered intersection sweep (fallback)"
        else:
            name = getattr(kernel, "__name__", "kernel").strip("_")
            if name == "swapped":
                description = (
                    f"sweep kernel for {condition.predicate.inverse_name} "
                    "with sides swapped"
                )
            else:
                description = f"sweep kernel {name}"
        kernels.append((str(condition), description))

    prediction = None
    prediction_error = None
    if data is not None:
        conf = PredictConfig(
            num_partitions=num_partitions,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            exact=exact,
            data=data if exact else None,
        )
        try:
            prediction = runner.predict(
                query, profile_data(query, data), conf
            )
        except ReproError as exc:
            prediction_error = str(exc)
    else:
        prediction_error = "no data bound; profile unavailable"

    data_plane_note = None
    if plane == "columnar" and not getattr(runner, "columnar_capable", False):
        data_plane_note = (
            f"algorithm {runner.name!r} declares no columnar support; "
            "every job would fall back to the records plane "
            "(repro_data_plane_fallback_total records the per-job reasons)"
        )

    return PlanExplain(
        query=str(query),
        query_class=query.query_class.name,
        algorithm=runner.name,
        chosen_by=chosen_by,
        reason=reason,
        provably_empty=False,
        empty_proof=None,
        alternatives=alternatives,
        num_partitions=num_partitions,
        partitioner=(
            "round-robin over sorted logical keys (deterministic "
            "task assignment)"
        ),
        kernels=tuple(kernels),
        prediction=prediction,
        prediction_error=prediction_error,
        data_plane=plane,
        data_plane_note=data_plane_note,
    )


def _fmt(value: float) -> str:
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3f}"
