"""The data-plane profiler: CPU, memory and serialization accounting.

``BENCH_executors.json`` shows the parallel executors barely beating —
or losing to — the serial one.  The ROADMAP blames the Python-object
data plane (pickle shipping, repr-sorting, GC churn), but spans only
time *phases*; nothing attributes cost to the *boundaries*.  This module
closes that gap.  When a run is profiled (``repro run --profile`` /
``$REPRO_PROFILE``), a :class:`Profiler` rides along on the
:class:`~repro.obs.recorder.TraceRecorder` and collects:

* **CPU** — a low-overhead sampling profiler (:class:`StackSampler`,
  a daemon thread walking ``sys._current_frames()``) aggregates stacks
  into collapsed-stack text and a self-contained SVG flame graph
  (:func:`render_flame_svg` — server-side, no JavaScript, like the
  dashboard); ``time.thread_time()`` charges per-task and per-phase
  CPU seconds.
* **Memory** — per-phase watermarks.  The default level records the
  cheap, always-safe signals (peak RSS via ``resource.getrusage`` and
  live allocation blocks via ``sys.getallocatedblocks``); the ``full``
  level adds ``tracemalloc`` current/peak traced bytes, which are exact
  but cost well over the 10% overhead budget (measured ~5x on join
  workloads), so they are opt-in.
* **GC** — pause counts and durations per phase via ``gc.callbacks``.
* **Serialization** — pickle bytes and encode/decode wall seconds at
  the processes-executor dispatch (both parent and worker side), the
  shuffle's repr-sort seconds and per-partition key-repr bytes, and
  staged-file repr bytes in the commit protocol.

Everything publishes through the run's
:class:`~repro.obs.metrics.MetricsRegistry` under the ``profile`` group
— machine- and executor-dependent by nature, so excluded from the
parity fingerprint exactly like ``wall`` — plus annotations on the
phase spans.  Profiling is strictly passive: with it off nothing in
this module runs, and with it on the run's deterministic outputs and
``run``-group metrics are bit-identical (pinned by the profiler
passivity tests).
"""

from __future__ import annotations

import gc
import os
import pickle
import sys
import threading
import time
import zlib
from collections import Counter as CollectionsCounter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.metrics import (
    GROUP_PROFILE,
    MetricsRegistry,
    SECONDS_BUCKETS,
)

__all__ = [
    "PROFILE_ENV",
    "LEVEL_CPU",
    "LEVEL_FULL",
    "BYTES_BUCKETS",
    "resolve_profile",
    "StackSampler",
    "Profiler",
    "run_profiled_task",
    "render_flame_svg",
    "data_plane_summary",
]

#: Environment variable enabling profiling (``repro run --profile`` on
#: the CLI).  Empty / ``0`` / ``false`` / ``no`` / ``off`` disable;
#: ``full`` selects :data:`LEVEL_FULL`; any other value selects
#: :data:`LEVEL_CPU`.
PROFILE_ENV = "REPRO_PROFILE"

#: Default level: sampler + thread-time CPU, GC pauses, serialization
#: accounting and cheap memory watermarks.  Overhead is gated < 10%
#: (``benchmarks/bench_profile.py``).
LEVEL_CPU = "cpu"

#: Adds tracemalloc current/peak traced-byte watermarks per phase.
#: Exact, but far beyond the 10% overhead budget — opt-in only.
LEVEL_FULL = "full"

_FALSEY = ("", "0", "false", "no", "off")

#: Fixed boundaries for byte-size histograms (per-partition key-repr
#: bytes); mergeable by addition like every other fixed-bucket family.
BYTES_BUCKETS: Tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0, 67108864.0,
)

#: Frames kept per sampled stack (deeper stacks are truncated at the
#: root end, keeping the leaves — the hot code — intact).
_MAX_STACK_DEPTH = 48


def resolve_profile(explicit: Any = None) -> Optional[str]:
    """Resolve the profiling level: a level string, or ``None`` for off.

    ``explicit`` wins when not ``None``: ``False`` forces off, ``True``
    means :data:`LEVEL_CPU`, a string names the level.  Otherwise
    ``$REPRO_PROFILE`` decides.
    """
    if explicit is not None:
        if explicit is False:
            return None
        if explicit is True:
            return LEVEL_CPU
        value = str(explicit).strip().lower()
    else:
        value = os.environ.get(PROFILE_ENV, "").strip().lower()
    if value in _FALSEY:
        return None
    return LEVEL_FULL if value == LEVEL_FULL else LEVEL_CPU


# ----------------------------------------------------------------------
# Stack sampling.
# ----------------------------------------------------------------------

def _frame_stack(frame: Any) -> List[str]:
    """``module.function`` frames of one thread, root first."""
    names: List[str] = []
    while frame is not None and len(names) < _MAX_STACK_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        names.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    names.reverse()
    return names


class StackSampler:
    """A sampling CPU profiler over registered threads.

    A daemon thread wakes every ``interval`` seconds, grabs
    ``sys._current_frames()`` and, for each *registered* thread, folds
    the current stack into a counter keyed by the collapsed-stack string
    ``"context;module.func;...;leaf"``.  Only registered threads are
    sampled, so test harnesses and unrelated pool machinery never
    pollute the flame graph.  Each thread carries a *stack* of context
    labels (``push``/``pop``), letting a driver thread be relabelled
    ``job;phase`` for the duration of a phase and restored afterwards.
    """

    def __init__(self, interval: float = 0.004) -> None:
        self.interval = interval
        self._lock = threading.Lock()
        self._labels: Dict[int, List[str]] = {}
        self._folded: CollectionsCounter = CollectionsCounter()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: total samples taken (all registered threads).
        self.samples = 0

    # -- thread registry ------------------------------------------------
    def push(self, thread_id: int, label: str) -> None:
        """Register (or re-label) a thread for sampling."""
        with self._lock:
            self._labels.setdefault(thread_id, []).append(label)

    def pop(self, thread_id: int) -> None:
        """Drop a thread's innermost label; unregisters on the last."""
        with self._lock:
            stack = self._labels.get(thread_id)
            if stack:
                stack.pop()
            if not stack:
                self._labels.pop(thread_id, None)

    # -- sampling -------------------------------------------------------
    def sample_once(self) -> int:
        """Take one sample of every registered thread (also called by
        the background loop); returns the number of stacks folded."""
        frames = sys._current_frames()
        folded = 0
        with self._lock:
            for thread_id, labels in self._labels.items():
                frame = frames.get(thread_id)
                if frame is None:
                    continue
                stack = _frame_stack(frame)
                if not stack:
                    continue
                label = labels[-1] if labels else ""
                key = ";".join([label] + stack if label else stack)
                self._folded[key] += 1
                folded += 1
            self.samples += folded
        return folded

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - never break the run
                pass

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        self._thread = None
        if thread is not None:
            thread.join(timeout=1.0)

    # -- results --------------------------------------------------------
    def folded(self) -> Dict[str, int]:
        """A copy of the collapsed-stack sample counts."""
        with self._lock:
            return dict(self._folded)

    def drain(self) -> Dict[str, int]:
        """Return the collapsed-stack counts and reset them."""
        with self._lock:
            out = dict(self._folded)
            self._folded.clear()
            return out


# ----------------------------------------------------------------------
# The profiler proper.
# ----------------------------------------------------------------------

# tracemalloc and gc.callbacks are process-global; a refcount keeps
# concurrently-active profilers (parallel tests) from stopping each
# other's collection.
_global_lock = threading.Lock()
_tracemalloc_users = 0
_tracemalloc_started_here = False


def _tracemalloc_acquire() -> None:
    global _tracemalloc_users, _tracemalloc_started_here
    import tracemalloc

    with _global_lock:
        if _tracemalloc_users == 0 and not tracemalloc.is_tracing():
            tracemalloc.start(1)
            _tracemalloc_started_here = True
        _tracemalloc_users += 1


def _tracemalloc_release() -> None:
    global _tracemalloc_users, _tracemalloc_started_here
    import tracemalloc

    with _global_lock:
        if _tracemalloc_users > 0:
            _tracemalloc_users -= 1
        if _tracemalloc_users == 0 and _tracemalloc_started_here:
            tracemalloc.stop()
            _tracemalloc_started_here = False


def _rss_peak_bytes() -> int:
    """Process peak RSS in bytes (0 where ``resource`` is unavailable)."""
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - non-POSIX fallback
        return 0


class Profiler:
    """Collects data-plane facts for one profiled run.

    Wire-up: :class:`~repro.obs.recorder.TraceRecorder` constructs one
    (``TraceRecorder(profile=...)``), calls :meth:`on_span_start` /
    :meth:`on_span_end` around every span, and :meth:`stop` on close.
    The runner, shuffle and file system record through the explicit
    ``record_*`` hooks whenever ``observer.profiler`` is present.

    All hooks are safe to call from worker threads; the worker-process
    side ships a compact profile dict back (see :func:`run_profiled_task`)
    which the parent folds in via :meth:`absorb_worker`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        level: str = LEVEL_CPU,
        interval: float = 0.004,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.level = level
        self.sampler = StackSampler(interval=interval)
        self._lock = threading.Lock()
        #: (job, phase) context stack for GC / memory attribution.
        self._phase_stack: List[Tuple[str, str]] = []
        #: span_id -> (thread_time0, rss0, blocks0) for open phase spans.
        self._phase_state: Dict[int, Tuple[float, int, int]] = {}
        #: span_id -> thread_time0 for open task spans.
        self._task_state: Dict[int, float] = {}
        #: collapsed stacks absorbed from worker processes.
        self._worker_folded: CollectionsCounter = CollectionsCounter()
        self._gc_started_at: Optional[float] = None
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sampler.push(threading.get_ident(), "driver")
        self.sampler.start()
        gc.callbacks.append(self._on_gc)
        if self.level == LEVEL_FULL:
            _tracemalloc_acquire()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self.sampler.stop()
        try:
            gc.callbacks.remove(self._on_gc)
        except ValueError:  # pragma: no cover - already removed
            pass
        if self.level == LEVEL_FULL:
            _tracemalloc_release()

    # -- metric families ------------------------------------------------
    def _cpu(self):
        return self.registry.counter(
            "repro_profile_cpu_seconds_total",
            "CPU seconds, thread_time-measured.  where=task charges task "
            "bodies (worker-side under processes); where=driver charges "
            "the coordinating thread across the phase — under the serial "
            "executor task CPU is a subset of driver CPU.",
            labels=("job", "phase", "where"),
            group=GROUP_PROFILE,
        )

    def _gc_pauses(self):
        return self.registry.counter(
            "repro_profile_gc_pauses_total",
            "Garbage-collection passes observed during each phase.",
            labels=("job", "phase"),
            group=GROUP_PROFILE,
        )

    def _gc_seconds(self):
        return self.registry.counter(
            "repro_profile_gc_pause_seconds_total",
            "Wall seconds spent inside garbage-collection passes.",
            labels=("job", "phase"),
            group=GROUP_PROFILE,
        )

    def _pickle_seconds(self):
        return self.registry.counter(
            "repro_profile_pickle_seconds_total",
            "Wall seconds spent pickling (encode) / unpickling (decode) "
            "task payloads and results at the processes-executor "
            "boundary, split by side.",
            labels=("job", "phase", "side", "op"),
            group=GROUP_PROFILE,
        )

    def _pickle_bytes(self):
        return self.registry.counter(
            "repro_profile_pickle_bytes_total",
            "Pickled bytes shipped across the process boundary: "
            "direction=request (payloads out) / response (results back).",
            labels=("job", "phase", "direction"),
            group=GROUP_PROFILE,
        )

    # -- span hooks -----------------------------------------------------
    def on_span_start(self, span: Any) -> None:
        tid = threading.get_ident()
        if span.kind == "phase":
            job = str(span.attributes.get("job", span.name))
            with self._lock:
                self._phase_stack.append((job, span.name))
                self._phase_state[span.span_id] = (
                    time.thread_time(),
                    _rss_peak_bytes(),
                    sys.getallocatedblocks(),
                )
            self.sampler.push(tid, f"{job};{span.name}")
            if self.level == LEVEL_FULL:
                self._tracemalloc_reset_peak()
        elif span.kind == "task":
            job = str(span.attributes.get("job", ""))
            phase = str(span.attributes.get("phase", span.name))
            with self._lock:
                self._task_state[span.span_id] = time.thread_time()
            self.sampler.push(tid, f"{job};{phase};task")

    def on_span_end(self, span: Any) -> None:
        tid = threading.get_ident()
        if span.kind == "phase":
            job = str(span.attributes.get("job", span.name))
            phase = span.name
            with self._lock:
                state = self._phase_state.pop(span.span_id, None)
                if self._phase_stack and self._phase_stack[-1] == (job, phase):
                    self._phase_stack.pop()
            self.sampler.pop(tid)
            if state is None:
                return
            cpu0, _, _ = state
            driver_cpu = max(0.0, time.thread_time() - cpu0)
            self._cpu().inc(driver_cpu, job=job, phase=phase, where="driver")
            rss_peak = _rss_peak_bytes()
            blocks = sys.getallocatedblocks()
            self.registry.gauge(
                "repro_profile_mem_rss_peak_bytes",
                "Process peak RSS at phase end (monotonic across phases).",
                labels=("job", "phase"),
                group=GROUP_PROFILE,
            ).set(rss_peak, job=job, phase=phase)
            self.registry.gauge(
                "repro_profile_mem_alloc_blocks",
                "Live interpreter allocation blocks at phase end.",
                labels=("job", "phase"),
                group=GROUP_PROFILE,
            ).set(blocks, job=job, phase=phase)
            span.annotate(
                profile_cpu_driver_seconds=driver_cpu,
                profile_mem_rss_peak_bytes=rss_peak,
                profile_mem_alloc_blocks=blocks,
            )
            if self.level == LEVEL_FULL:
                self._record_tracemalloc(span, job, phase)
        elif span.kind == "task":
            with self._lock:
                cpu0 = self._task_state.pop(span.span_id, None)
            self.sampler.pop(tid)
            if cpu0 is None:
                return
            cpu = max(0.0, time.thread_time() - cpu0)
            job = str(span.attributes.get("job", ""))
            phase = str(span.attributes.get("phase", span.name))
            self._cpu().inc(cpu, job=job, phase=phase, where="task")
            span.annotate(profile_cpu_seconds=cpu)

    def _tracemalloc_reset_peak(self) -> None:
        import tracemalloc

        try:
            tracemalloc.reset_peak()
        except (AttributeError, RuntimeError):  # pragma: no cover - <3.9
            pass

    def _record_tracemalloc(self, span: Any, job: str, phase: str) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():  # pragma: no cover - defensive
            return
        current, peak = tracemalloc.get_traced_memory()
        self.registry.gauge(
            "repro_profile_mem_current_bytes",
            "tracemalloc-traced bytes live at phase end (level=full).",
            labels=("job", "phase"),
            group=GROUP_PROFILE,
        ).set(current, job=job, phase=phase)
        self.registry.gauge(
            "repro_profile_mem_peak_bytes",
            "tracemalloc peak traced bytes within the phase (level=full).",
            labels=("job", "phase"),
            group=GROUP_PROFILE,
        ).set(peak, job=job, phase=phase)
        span.annotate(
            profile_mem_current_bytes=current, profile_mem_peak_bytes=peak
        )

    # -- GC accounting --------------------------------------------------
    def _gc_context(self) -> Tuple[str, str]:
        with self._lock:
            if self._phase_stack:
                return self._phase_stack[-1]
        return ("driver", "driver")

    def _on_gc(self, phase: str, info: Mapping[str, Any]) -> None:
        if phase == "start":
            self._gc_started_at = time.perf_counter()
            return
        started = self._gc_started_at
        self._gc_started_at = None
        if started is None:
            return
        pause = max(0.0, time.perf_counter() - started)
        job, ctx_phase = self._gc_context()
        try:
            self._gc_pauses().inc(1, job=job, phase=ctx_phase)
            self._gc_seconds().inc(pause, job=job, phase=ctx_phase)
        except Exception:  # pragma: no cover - never break a GC pass
            pass

    # -- serialization boundaries ---------------------------------------
    def record_pickle(
        self, job: str, phase: str, side: str, op: str, seconds: float
    ) -> None:
        """Charge encode/decode wall seconds at the process boundary."""
        self._pickle_seconds().inc(
            seconds, job=job, phase=phase, side=side, op=op
        )

    def record_pickle_bytes(
        self, job: str, phase: str, direction: str, nbytes: int
    ) -> None:
        """Charge pickled bytes shipped across the process boundary."""
        self._pickle_bytes().inc(
            nbytes, job=job, phase=phase, direction=direction
        )

    def record_shm_bytes(
        self, job: str, phase: str, direction: str, nbytes: int
    ) -> None:
        """Charge bytes transported through shared-memory blocks at the
        columnar plane's process boundary (these bytes are *not* pickled
        — the pickle families shrink to descriptors when shm carries the
        data, which is the collapse this family makes visible)."""
        self.registry.counter(
            "repro_profile_shm_bytes_total",
            "Column bytes shipped via multiprocessing.shared_memory "
            "blocks instead of pickles (columnar data plane).",
            labels=("job", "phase", "direction"),
            group=GROUP_PROFILE,
        ).inc(nbytes, job=job, phase=phase, direction=direction)

    def record_shuffle_sort(self, job: str, seconds: float, keys: int) -> None:
        """Charge the shuffle's repr-sort: wall seconds and keys sorted."""
        self.registry.counter(
            "repro_profile_shuffle_sort_seconds_total",
            "Wall seconds spent repr-sorting distinct shuffle keys.",
            labels=("job",),
            group=GROUP_PROFILE,
        ).inc(seconds, job=job)
        self.registry.counter(
            "repro_profile_shuffle_sort_keys_total",
            "Distinct keys repr-sorted by the shuffle.",
            labels=("job",),
            group=GROUP_PROFILE,
        ).inc(keys, job=job)

    def record_partition_key_bytes(
        self, job: str, per_partition: Iterable[int]
    ) -> None:
        """Record per-partition key-repr byte sizes (the shuffle's
        communication-cost proxy, measured on the reprs it already
        computed — no extra ``repr`` calls)."""
        histogram = self.registry.histogram(
            "repro_profile_partition_key_repr_bytes",
            "UTF-8 key-repr bytes routed to each reduce partition.",
            labels=("job",),
            group=GROUP_PROFILE,
            buckets=BYTES_BUCKETS,
        )
        for nbytes in per_partition:
            histogram.observe(nbytes, job=job)

    def record_staged_bytes(self, nbytes: int) -> None:
        """Charge repr bytes staged through the fs commit protocol."""
        self.registry.counter(
            "repro_profile_fs_staged_bytes_total",
            "Repr bytes written to staged attempt files (extrapolated "
            "from a per-file record sample; exact for small files).",
            labels=(),
            group=GROUP_PROFILE,
        ).inc(nbytes)

    def absorb_worker(
        self, job: str, phase: str, wprof: Mapping[str, Any]
    ) -> None:
        """Fold one worker-process task profile in (parent side)."""
        cpu = float(wprof.get("cpu_seconds", 0.0))
        if cpu:
            self._cpu().inc(cpu, job=job, phase=phase, where="task")
        decode = float(wprof.get("decode_seconds", 0.0))
        encode = float(wprof.get("encode_seconds", 0.0))
        if decode:
            self.record_pickle(job, phase, "worker", "decode", decode)
        if encode:
            self.record_pickle(job, phase, "worker", "encode", encode)
        folded = wprof.get("folded") or {}
        if folded:
            prefix = f"{job};{phase};task"
            with self._lock:
                for stack, count in folded.items():
                    self._worker_folded[f"{prefix};{stack}"] += count

    # -- output ---------------------------------------------------------
    def collapsed_stacks(self) -> str:
        """Collapsed-stack text (``stack count`` lines, flamegraph.pl
        compatible), parent samples and worker samples merged."""
        merged: CollectionsCounter = CollectionsCounter(self.sampler.folded())
        with self._lock:
            merged.update(self._worker_folded)
        return "\n".join(
            f"{stack} {count}" for stack, count in sorted(merged.items())
        )

    def folded(self) -> Dict[str, int]:
        """Merged collapsed-stack counts (parent + workers)."""
        merged: CollectionsCounter = CollectionsCounter(self.sampler.folded())
        with self._lock:
            merged.update(self._worker_folded)
        return dict(merged)

    def flame_svg(self, title: str = "CPU flame graph") -> str:
        """The run's flame graph as a self-contained SVG document."""
        return render_flame_svg(self.folded(), title=title)

    def summary(self) -> str:
        """The human-readable data-plane summary of this run."""
        return data_plane_summary(self.registry)


# ----------------------------------------------------------------------
# Worker-process side.
# ----------------------------------------------------------------------

_worker_lock = threading.Lock()
_worker_sampler: Optional[StackSampler] = None


def _get_worker_sampler() -> StackSampler:
    global _worker_sampler
    with _worker_lock:
        if _worker_sampler is None:
            _worker_sampler = StackSampler()
            _worker_sampler.start()
        return _worker_sampler


def run_profiled_task(blob: bytes) -> Tuple[bytes, Dict[str, Any]]:
    """Worker-side body of one profiled process-pool task.

    The parent ships ``pickle.dumps((fn, payload))`` so the timed
    ``loads``/``dumps`` here are the *real* serialization work — the
    pool's own transport then only moves opaque ``bytes``, which
    re-pickle for (almost) free.  Returns the pickled task result plus
    a profile dict the parent folds in via :meth:`Profiler.absorb_worker`.
    """
    started = time.perf_counter()
    fn, payload = pickle.loads(blob)
    decode_seconds = time.perf_counter() - started

    sampler = _get_worker_sampler()
    tid = threading.get_ident()
    sampler.push(tid, "")
    cpu0 = time.thread_time()
    try:
        out = fn(payload)
    finally:
        cpu_seconds = max(0.0, time.thread_time() - cpu0)
        sampler.pop(tid)
    folded = sampler.drain()

    started = time.perf_counter()
    result_blob = pickle.dumps(out, protocol=pickle.HIGHEST_PROTOCOL)
    encode_seconds = time.perf_counter() - started
    return result_blob, {
        "cpu_seconds": cpu_seconds,
        "decode_seconds": decode_seconds,
        "encode_seconds": encode_seconds,
        "request_bytes": len(blob),
        "response_bytes": len(result_blob),
        "folded": folded,
    }


# ----------------------------------------------------------------------
# Flame-graph rendering (server-side SVG, no JavaScript).
# ----------------------------------------------------------------------

_FRAME_HEIGHT = 17
_MIN_TEXT_WIDTH = 35.0


def _xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _frame_color(name: str) -> str:
    """A deterministic warm color per frame name (crc32-seeded, so the
    same function keeps its color across renders and machines)."""
    seed = zlib.crc32(name.encode("utf-8"))
    hue = seed % 55  # red..yellow band
    saturation = 65 + (seed >> 8) % 20
    lightness = 52 + (seed >> 16) % 12
    return f"hsl({hue},{saturation}%,{lightness}%)"


def _build_tree(folded: Mapping[str, int]) -> Tuple[Dict[str, Any], int]:
    """Nest collapsed stacks into ``{child_name: [count, children]}``;
    returns the root children plus the total sample count."""
    root: Dict[str, Any] = {}
    total = 0
    for stack, count in sorted(folded.items()):
        total += count
        node = root
        for part in stack.split(";"):
            entry = node.setdefault(part, [0, {}])
            entry[0] += count
            node = entry[1]
    return root, total


def _tree_depth(node: Dict[str, Any]) -> int:
    if not node:
        return 0
    return 1 + max(_tree_depth(children) for _, children in node.values())


def render_flame_svg(
    folded: Mapping[str, int],
    title: str = "CPU flame graph",
    width: float = 1200.0,
) -> str:
    """Render collapsed-stack counts as a self-contained SVG flame graph.

    Deterministic layout (children in name order), hover tooltips via
    SVG ``<title>`` elements, inline styling and zero scripting — the
    file opens identically in a browser, a README, or the dashboard.
    """
    tree, total = _build_tree(folded)
    depth = _tree_depth(tree)
    header = 28
    height = header + max(1, depth) * _FRAME_HEIGHT + 10
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{int(width)}" '
        f'height="{height}" viewBox="0 0 {int(width)} {height}" '
        f'font-family="Menlo, Consolas, monospace" font-size="11">',
        f'<rect x="0" y="0" width="{int(width)}" height="{height}" '
        f'fill="#0f1318"/>',
        f'<text x="8" y="18" fill="#e6e8ea" font-size="13">'
        f"{_xml_escape(title)} &#183; {total} samples</text>",
    ]
    if total == 0:
        parts.append(
            f'<text x="8" y="{header + 14}" fill="#9aa2ab">'
            "no samples collected</text>"
        )
        parts.append("</svg>")
        return "\n".join(parts)

    def emit(
        node: Dict[str, Any], x: float, level: int, scale: float
    ) -> None:
        for name in sorted(node):
            count, children = node[name]
            w = count * scale
            if w < 0.25:
                x += w
                continue
            y = header + level * _FRAME_HEIGHT
            pct = 100.0 * count / total
            label = _xml_escape(name)
            parts.append(
                f'<g><title>{label} &#8212; {count} samples '
                f"({pct:.1f}%)</title>"
                f'<rect x="{x:.2f}" y="{y}" width="{max(w - 0.5, 0.25):.2f}" '
                f'height="{_FRAME_HEIGHT - 1}" rx="1" '
                f'fill="{_frame_color(name)}"/>'
            )
            if w >= _MIN_TEXT_WIDTH:
                chars = max(1, int((w - 6) / 6.2))
                text = name if len(name) <= chars else name[: chars - 1] + "…"
                parts.append(
                    f'<text x="{x + 3:.2f}" y="{y + 12}" fill="#101418">'
                    f"{_xml_escape(text)}</text>"
                )
            parts.append("</g>")
            emit(children, x, level + 1, scale)
            x += w

    emit(tree, 0.0, 0, width / total)
    parts.append("</svg>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# The data-plane summary (CLI + dashboard text form).
# ----------------------------------------------------------------------

def _fmt_bytes(n: float) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _samples_of(registry: MetricsRegistry, name: str):
    metric = registry.get(name)
    return metric.samples() if metric is not None else []


def data_plane_summary(registry: MetricsRegistry) -> str:
    """A per-job, per-phase rundown of the ``profile`` metric group.

    Readable from a live registry (``repro run --profile``) or one
    rebuilt from a metrics JSON snapshot (``repro report --profile``).
    """
    cpu: Dict[Tuple[str, str], Dict[str, float]] = {}
    for (job, phase, where), value in _samples_of(
        registry, "repro_profile_cpu_seconds_total"
    ):
        cpu.setdefault((job, phase), {})[where] = value
    if not cpu:
        return (
            "data-plane profile: no profile metrics recorded "
            "(run with --profile / REPRO_PROFILE=1)"
        )

    gc_pauses = {
        key[:2]: value
        for key, value in _samples_of(
            registry, "repro_profile_gc_pauses_total"
        )
    }
    gc_seconds = {
        key[:2]: value
        for key, value in _samples_of(
            registry, "repro_profile_gc_pause_seconds_total"
        )
    }
    rss = {
        key[:2]: value
        for key, value in _samples_of(
            registry, "repro_profile_mem_rss_peak_bytes"
        )
    }
    traced_peak = {
        key[:2]: value
        for key, value in _samples_of(
            registry, "repro_profile_mem_peak_bytes"
        )
    }
    pickle_bytes: Dict[Tuple[str, str], Dict[str, float]] = {}
    for (job, phase, direction), value in _samples_of(
        registry, "repro_profile_pickle_bytes_total"
    ):
        pickle_bytes.setdefault((job, phase), {})[direction] = value
    pickle_seconds: Dict[Tuple[str, str], float] = {}
    for (job, phase, _side, _op), value in _samples_of(
        registry, "repro_profile_pickle_seconds_total"
    ):
        key = (job, phase)
        pickle_seconds[key] = pickle_seconds.get(key, 0.0) + value

    jobs = sorted({job for job, _ in cpu} - {"driver"})
    if not jobs:
        jobs = sorted({job for job, _ in cpu})
    lines: List[str] = ["data-plane profile", "=" * 18]
    columns = (
        "phase", "task-cpu", "driver-cpu", "gc", "gc-s",
        "rss-peak", "pkl-bytes", "pkl-s",
    )
    widths = (8, 9, 10, 4, 7, 9, 10, 7)
    phase_order = {"map": 0, "shuffle": 1, "reduce": 2}
    for job in jobs:
        lines.append(f"job {job}")
        lines.append(
            "  " + "  ".join(
                f"{col:<{w}}" for col, w in zip(columns, widths)
            )
        )
        phases = sorted(
            {phase for j, phase in cpu if j == job},
            key=lambda p: (phase_order.get(p, 9), p),
        )
        for phase in phases:
            key = (job, phase)
            by_where = cpu.get(key, {})
            pbytes = pickle_bytes.get(key, {})
            total_pickle = sum(pbytes.values())
            memory = traced_peak.get(key, rss.get(key, 0))
            row = (
                phase,
                f"{by_where.get('task', 0.0):.3f}s",
                f"{by_where.get('driver', 0.0):.3f}s",
                f"{int(gc_pauses.get(key, 0))}",
                f"{gc_seconds.get(key, 0.0):.3f}s",
                _fmt_bytes(memory),
                _fmt_bytes(total_pickle),
                f"{pickle_seconds.get(key, 0.0):.3f}s",
            )
            lines.append(
                "  " + "  ".join(
                    f"{cell:<{w}}" for cell, w in zip(row, widths)
                )
            )
        for (j,), seconds in _samples_of(
            registry, "repro_profile_shuffle_sort_seconds_total"
        ):
            if j != job:
                continue
            keys_metric = registry.get("repro_profile_shuffle_sort_keys_total")
            keys = 0
            if keys_metric is not None:
                keys = int(keys_metric.value(job=job))
            lines.append(
                f"  shuffle repr-sort: {seconds:.3f}s over {keys} keys"
            )
        shm_total = sum(
            value
            for (j, _phase, _direction), value in _samples_of(
                registry, "repro_profile_shm_bytes_total"
            )
            if j == job
        )
        if shm_total:
            lines.append(
                f"  shm transport: {_fmt_bytes(shm_total)} via shared "
                "memory (columnar plane)"
            )
    staged = registry.get("repro_profile_fs_staged_bytes_total")
    if staged is not None:
        total_staged = staged.value()
        if total_staged:
            lines.append(f"fs staged bytes: {_fmt_bytes(total_staged)}")
    driver_gc = gc_pauses.get(("driver", "driver"), 0)
    if driver_gc:
        lines.append(
            f"driver (outside phases): {int(driver_gc)} gc pauses, "
            f"{gc_seconds.get(('driver', 'driver'), 0.0):.3f}s paused"
        )
    return "\n".join(lines)
