"""repro — multi-way interval joins on MapReduce.

A from-scratch reproduction of *Processing Interval Joins On Map-Reduce*
(Chawda et al., EDBT 2014): Allen's interval algebra, the
project/split/replicate partitioning primitives, a faithful in-process
MapReduce simulator, and the paper's four algorithms (RCCIS, All-Matrix,
All-Seq-Matrix/PASM, Gen-Matrix) plus every baseline it compares against.

Quickstart
----------
>>> from repro import Interval, Relation, IntervalJoinQuery, execute
>>> r1 = Relation.of_intervals("R1", [Interval(0, 5)])
>>> r2 = Relation.of_intervals("R2", [Interval(3, 9)])
>>> query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
>>> result = execute(query, {"R1": r1, "R2": r2})
>>> len(result)
1
"""

from repro.core import (
    ALGORITHMS,
    ExecutionMetrics,
    IntervalJoinQuery,
    JoinCondition,
    JoinGraph,
    JoinResult,
    QueryClass,
    Relation,
    Row,
    Term,
    choose_algorithm,
    execute,
    plan,
    reference_join,
)
from repro.errors import (
    QueryError,
    ReproError,
    UnsatisfiableQueryError,
)
from repro.faults import (
    FaultEvent,
    FaultPlan,
    ScriptedFaultPlan,
    resolve_faults,
)
from repro.intervals import (
    ALLEN_PREDICATES,
    AllenPredicate,
    Interval,
    Partitioning,
    get_predicate,
    relation_between,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "ALLEN_PREDICATES",
    "AllenPredicate",
    "ExecutionMetrics",
    "FaultEvent",
    "FaultPlan",
    "Interval",
    "IntervalJoinQuery",
    "JoinCondition",
    "JoinGraph",
    "JoinResult",
    "Partitioning",
    "QueryClass",
    "QueryError",
    "Relation",
    "ReproError",
    "Row",
    "ScriptedFaultPlan",
    "Term",
    "UnsatisfiableQueryError",
    "choose_algorithm",
    "execute",
    "get_predicate",
    "plan",
    "reference_join",
    "relation_between",
    "resolve_faults",
    "__version__",
]
