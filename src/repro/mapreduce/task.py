"""Mapper / Reducer task APIs and their execution contexts.

The programming model mirrors Hadoop's: a :class:`Mapper` turns each input
record into zero or more intermediate key-value pairs; after the shuffle a
:class:`Reducer` sees each key once, together with all values shuffled to
it, and emits output records.  Optional ``setup``/``cleanup`` hooks run
around each task, like Hadoop's.

Contexts carry the emit channel plus :class:`~repro.mapreduce.counters.Counters`
so user code (the paper's algorithms) can record domain-specific
measurements — replicated-interval counts, predicate comparisons — that the
cost model and evaluation tables consume.

Columnar protocol (optional, duck-typed)
----------------------------------------

A mapper/reducer pair may additionally opt into the columnar data plane
(``REPRO_DATA_PLANE=columnar``, see ``docs/data_plane.md``).  The runner
probes for these attributes per job — when any participant lacks them or
reports itself not ready, the job silently falls back to the records
plane, so the protocol is strictly additive.

Mapper side::

    columnar_key_kind: str            # "int" | "cell" — codec in
                                      # repro.columnar.codec.KEY_CODECS
    def columnar_ready(self) -> bool  # dynamic gate (e.g. operator support)
    def encode_intervals(self, records) -> (starts, ends)
                                      # float64 columns, one row per record
    def map_columns(self, starts, ends, records) -> MapBlock
                                      # vectorised map(): encoded target
                                      # keys + row indices (+ tag codes and
                                      # *non-zero* counter amounts only)
    def value_of(self, record) -> Any # the exact shuffle value map() would
                                      # emit — used for lazy materialisation

Reducer side::

    def columnar_ready(self) -> bool
    def columnar_outputs(self, key, values, counters)
                                      # values is a ColumnValues group;
                                      # yields compact gid-shaped outputs
    def materialize_output(self, out, store) -> Any
                                      # rebuild the records-plane output
                                      # record from one gid-shaped output

The contract is bit-parity: for every input, the columnar path must
produce the same outputs, the same counters and the same logical loads
as the records path (``tests/integration/test_columnar_parity.py``).
"""

from __future__ import annotations

import abc
from typing import Any, Hashable, List

from repro.mapreduce.counters import Counters

__all__ = ["MapContext", "ReduceContext", "Mapper", "Reducer", "IdentityMapper"]


class MapContext:
    """Execution context handed to every :meth:`Mapper.map` call."""

    def __init__(
        self, counters: Counters, input_path: str, beat: Any = None
    ) -> None:
        self.counters = counters
        #: the input file the current record came from (Hadoop exposes the
        #: same through ``InputSplit``; mappers keyed per input rarely need
        #: it but it is invaluable for debugging).
        self.input_path = input_path
        #: live-telemetry heartbeat emitter (``None`` when telemetry is
        #: off — the common case; mirrors Hadoop's task progress report).
        self.beat = beat
        self._sink: List[Any] = []

    def emit(self, key: Hashable, value: Any) -> None:
        """Emit one intermediate key-value pair."""
        self._sink.append((key, value))

    def progress(self) -> None:
        """Report liveness mid-record (long-running map bodies may call
        this like Hadoop's ``context.progress()``).  No-op when live
        telemetry is off."""
        if self.beat is not None:
            self.beat.progress()

    def drain(self) -> List[Any]:
        pairs, self._sink = self._sink, []
        return pairs


class ReduceContext:
    """Execution context handed to every :meth:`Reducer.reduce` call."""

    def __init__(
        self, counters: Counters, task_index: int, beat: Any = None
    ) -> None:
        self.counters = counters
        #: which simulated reduce task this group was assigned to.
        self.task_index = task_index
        #: live-telemetry heartbeat emitter (``None`` when telemetry is off).
        self.beat = beat
        self._sink: List[Any] = []

    def emit(self, record: Any) -> None:
        """Emit one output record."""
        self._sink.append(record)

    def progress(self) -> None:
        """Report liveness mid-group (see :meth:`MapContext.progress`)."""
        if self.beat is not None:
            self.beat.progress()

    def drain(self) -> List[Any]:
        records, self._sink = self._sink, []
        return records


class Mapper(abc.ABC):
    """Transforms input records into intermediate key-value pairs."""

    def setup(self, context: MapContext) -> None:
        """Called once before the first record of a map task."""

    @abc.abstractmethod
    def map(self, record: Any, context: MapContext) -> None:
        """Process one input record, emitting via ``context.emit``."""

    def cleanup(self, context: MapContext) -> None:
        """Called once after the last record of a map task."""


class Reducer(abc.ABC):
    """Aggregates all values of one key into output records.

    The same interface serves as a combiner when passed as ``combiner`` in
    a job configuration (combiner output values feed the shuffle under the
    same key, exactly like Hadoop).
    """

    def setup(self, context: ReduceContext) -> None:
        """Called once before the first key of a reduce task."""

    @abc.abstractmethod
    def reduce(self, key: Hashable, values: List[Any], context: ReduceContext) -> None:
        """Process one key group, emitting via ``context.emit``."""

    def cleanup(self, context: ReduceContext) -> None:
        """Called once after the last key of a reduce task."""


class IdentityMapper(Mapper):
    """Emits each record unchanged under a constant key (useful for tests
    and for funnelling a file through the shuffle untouched)."""

    def __init__(self, key: Hashable = 0) -> None:
        self.key = key

    def map(self, record: Any, context: MapContext) -> None:
        context.emit(self.key, record)
