"""Simulated distributed file systems.

The paper's jobs read relations from HDFS files and write partial results
back between MapReduce cycles.  Two interchangeable implementations are
provided behind one abstract interface:

* :class:`InMemoryFileSystem` — the default for tests and benchmarks;
  record lists keyed by path.
* :class:`LocalFileSystem` — a directory-backed store that serialises
  records as JSON lines (with a pluggable codec), so pipelines survive
  process restarts and multi-process executors can share state.

Paths are plain strings with ``/`` separators.  A "file" holds an ordered
sequence of records; directories are implicit (a path prefix).  Output
paths behave like Hadoop job outputs: writing to an existing path raises
unless ``overwrite=True``.

Task output follows Hadoop's two-phase commit protocol: a reduce attempt
writes to ``<output>/_temporary/task-NNNNN/attempt-K`` and the winning
attempt is *promoted* (renamed) to ``<output>/part-NNNNN`` on success —
failed and speculative attempts are discarded without ever becoming
visible.  Mirroring Hadoop's hidden-file convention, path components
starting with ``_`` are invisible to :meth:`FileSystem.read_dir`, so a
reader of the output directory can never observe uncommitted data.

The file system is the data plane's record boundary: on the columnar
plane (``REPRO_DATA_PLANE=columnar``) map tasks still read their input
records through :meth:`FileSystem.read_dir` and reduce outputs are still
committed as materialised record lists — only the *intermediate* pair
stream between map and reduce changes representation (struct-of-arrays
columns and shared-memory blocks; see :mod:`repro.columnar` and
``docs/data_plane.md``).  Persisted files are therefore byte-identical
across planes, which is what lets a pipeline mix per-job plane fallbacks
freely.
"""

from __future__ import annotations

import abc
import json
import os
import shutil
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from repro.errors import FileSystemError

__all__ = ["FileSystem", "InMemoryFileSystem", "LocalFileSystem"]


class FileSystem(abc.ABC):
    """Abstract record-oriented file system."""

    #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when a run
    #: is observed, ``run_job`` points this at the observer's registry so
    #: the commit protocol reports staged/promoted/discarded attempts.
    metrics: Optional[Any] = None

    #: Optional :class:`~repro.obs.profile.Profiler`; when a run is
    #: profiled, ``run_job`` points this at the observer's profiler so
    #: staged attempt files report their repr-byte volume.
    profiler: Optional[Any] = None

    def _count_commit(self, event: str) -> None:
        if self.metrics is None:
            return
        # Attempt traffic varies under chaos (failed attempts stage and
        # discard extra files), so it lives in the "faults" group.
        self.metrics.counter(
            "repro_fs_attempts_total",
            "Commit-protocol attempt files staged/promoted/discarded.",
            labels=("event",),
            group="faults",
        ).inc(1, event=event)

    @abc.abstractmethod
    def write(
        self, path: str, records: Iterable[Any], overwrite: bool = False
    ) -> int:
        """Write ``records`` to ``path``; returns the record count.

        Raises :class:`FileSystemError` if the path exists and
        ``overwrite`` is false (mirrors Hadoop's output-path check).
        """

    @abc.abstractmethod
    def read(self, path: str) -> Iterator[Any]:
        """Iterate over the records stored at ``path``."""

    @abc.abstractmethod
    def exists(self, path: str) -> bool:
        """Whether a file exists at ``path``."""

    @abc.abstractmethod
    def delete(self, path: str) -> None:
        """Remove the file at ``path`` (no-op when absent)."""

    @abc.abstractmethod
    def list_prefix(self, prefix: str) -> List[str]:
        """All file paths starting with ``prefix``, sorted."""

    def rename(self, src: str, dst: str) -> None:
        """Move the file at ``src`` to ``dst`` (replacing any existing
        file there).  The generic implementation copies and deletes;
        concrete file systems override with an atomic move."""
        self.write(dst, self.read(src), overwrite=True)
        self.delete(src)

    # ------------------------------------------------------------------
    # Task-output commit protocol (Hadoop's FileOutputCommitter shape):
    # every attempt writes under _temporary/, only a promoted attempt
    # becomes a visible part file.
    # ------------------------------------------------------------------
    def task_attempt_path(self, base: str, index: int, attempt: int) -> str:
        """Where task ``index``'s attempt ``attempt`` stages its output."""
        return f"{base}/_temporary/task-{index:05d}/attempt-{attempt}"

    #: Records repr'd per staged file to estimate its byte volume; the
    #: estimate is exact for files at or under the sample size.
    STAGED_BYTES_SAMPLE = 64

    def write_attempt(
        self, base: str, index: int, attempt: int, records: Iterable[Any]
    ) -> str:
        """Stage one attempt's output under ``_temporary``; returns the
        staged path.  Invisible to :meth:`read_dir` until promoted.

        With a profiler attached, the staged records' repr-byte volume
        (the same communication-cost proxy the shuffle uses) is charged
        to ``repro_profile_fs_staged_bytes_total`` — estimated from the
        first :attr:`STAGED_BYTES_SAMPLE` records and extrapolated, so
        the accounting stays O(1)-ish per file instead of repr'ing every
        record (which dominated profiled runs at scale).
        """
        path = self.task_attempt_path(base, index, attempt)
        if self.profiler is not None:
            records = list(records)
            sample = records[: self.STAGED_BYTES_SAMPLE]
            if sample:
                sampled = sum(
                    len(repr(record).encode("utf-8")) for record in sample
                )
                self.profiler.record_staged_bytes(
                    int(sampled / len(sample) * len(records))
                )
        self.write(path, records, overwrite=True)
        self._count_commit("staged")
        return path

    def discard_attempt(self, base: str, index: int, attempt: int) -> None:
        """Drop one staged attempt (failed or speculative loser)."""
        self.delete(self.task_attempt_path(base, index, attempt))
        self._count_commit("discarded")

    def promote_attempt(self, base: str, index: int, attempt: int) -> str:
        """Commit one staged attempt as ``part-NNNNN``.

        The winning attempt's file is renamed into place and every other
        staged attempt of the task is discarded, so exactly one
        attempt's output ever becomes visible.
        """
        src = self.task_attempt_path(base, index, attempt)
        if not self.exists(src):
            raise FileSystemError(
                f"cannot promote missing attempt: {src!r}"
            )
        dst = f"{base}/part-{index:05d}"
        self.rename(src, dst)
        for leftover in self.list_prefix(f"{base}/_temporary/task-{index:05d}/"):
            self.delete(leftover)
        self._count_commit("promoted")
        return dst

    # ------------------------------------------------------------------
    def append_partition(self, base: str, index: int, records: Iterable[Any]) -> str:
        """Write one ``part-NNNNN`` file under ``base`` (Hadoop layout),
        through the commit protocol: stage as attempt 0, then promote."""
        self.write_attempt(base, index, 0, records)
        return self.promote_attempt(base, index, 0)

    @staticmethod
    def _is_hidden(relative: str) -> bool:
        """Hadoop's convention: ``_``-prefixed components are invisible
        to directory readers (``_temporary`` staging, ``_SUCCESS``)."""
        return any(part.startswith("_") for part in relative.split("/"))

    def read_dir(self, base: str) -> Iterator[Any]:
        """Iterate over all records in all *visible* files under ``base``
        (uncommitted ``_temporary`` attempt data is never surfaced)."""
        prefix = base.rstrip("/") + "/"
        paths = [
            path
            for path in self.list_prefix(prefix)
            if not self._is_hidden(path[len(prefix):])
        ]
        if not paths and self.exists(base):
            paths = [base]
        for path in paths:
            yield from self.read(path)

    def count(self, path: str) -> int:
        """Number of records at ``path`` (or under it as a directory)."""
        return sum(1 for _ in self.read_dir(path))


class InMemoryFileSystem(FileSystem):
    """A dict-backed file system; the default substrate for simulations."""

    def __init__(self) -> None:
        self._files: Dict[str, List[Any]] = {}

    def write(
        self, path: str, records: Iterable[Any], overwrite: bool = False
    ) -> int:
        if path in self._files and not overwrite:
            raise FileSystemError(f"output path already exists: {path!r}")
        stored = list(records)
        self._files[path] = stored
        return len(stored)

    def read(self, path: str) -> Iterator[Any]:
        try:
            records = self._files[path]
        except KeyError:
            raise FileSystemError(f"no such file: {path!r}") from None
        return iter(list(records))

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def rename(self, src: str, dst: str) -> None:
        try:
            self._files[dst] = self._files.pop(src)
        except KeyError:
            raise FileSystemError(f"no such file: {src!r}") from None

    def list_prefix(self, prefix: str) -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))


class LocalFileSystem(FileSystem):
    """A real-directory-backed file system serialising JSON lines.

    Parameters
    ----------
    root:
        Directory under which all paths live.
    encode / decode:
        Record codec; defaults to JSON.  Supply custom callables to store
        rich objects (e.g. ``Interval`` tuples).
    """

    def __init__(
        self,
        root: str,
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._encode = encode or (lambda record: record)
        self._decode = decode or (lambda record: record)

    def _resolve(self, path: str) -> str:
        clean = os.path.normpath(path.strip("/"))
        if clean.startswith(".."):
            raise FileSystemError(f"path escapes file system root: {path!r}")
        return os.path.join(self.root, clean)

    def write(
        self, path: str, records: Iterable[Any], overwrite: bool = False
    ) -> int:
        target = self._resolve(path)
        if os.path.exists(target) and not overwrite:
            raise FileSystemError(f"output path already exists: {path!r}")
        os.makedirs(os.path.dirname(target), exist_ok=True)
        count = 0
        with open(target, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(self._encode(record)))
                handle.write("\n")
                count += 1
        return count

    def read(self, path: str) -> Iterator[Any]:
        target = self._resolve(path)
        if not os.path.isfile(target):
            raise FileSystemError(f"no such file: {path!r}")

        def _iterate() -> Iterator[Any]:
            with open(target, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield self._decode(json.loads(line))

        return _iterate()

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._resolve(path))

    def delete(self, path: str) -> None:
        target = self._resolve(path)
        if os.path.isfile(target):
            os.remove(target)
        elif os.path.isdir(target):
            shutil.rmtree(target)

    def rename(self, src: str, dst: str) -> None:
        source = self._resolve(src)
        if not os.path.isfile(source):
            raise FileSystemError(f"no such file: {src!r}")
        target = self._resolve(dst)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.replace(source, target)

    def promote_attempt(self, base: str, index: int, attempt: int) -> str:
        dst = super().promote_attempt(base, index, attempt)
        # Prune the now-empty on-disk staging directories.
        task_dir = self._resolve(f"{base}/_temporary/task-{index:05d}")
        if os.path.isdir(task_dir):
            shutil.rmtree(task_dir)
        temp_dir = self._resolve(f"{base}/_temporary")
        if os.path.isdir(temp_dir) and not os.listdir(temp_dir):
            os.rmdir(temp_dir)
        return dst

    def list_prefix(self, prefix: str) -> List[str]:
        found: List[str] = []
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, self.root).replace(os.sep, "/")
                if rel.startswith(prefix.strip("/")):
                    found.append(rel)
        return sorted(found)
