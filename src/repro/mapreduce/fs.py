"""Simulated distributed file systems.

The paper's jobs read relations from HDFS files and write partial results
back between MapReduce cycles.  Two interchangeable implementations are
provided behind one abstract interface:

* :class:`InMemoryFileSystem` — the default for tests and benchmarks;
  record lists keyed by path.
* :class:`LocalFileSystem` — a directory-backed store that serialises
  records as JSON lines (with a pluggable codec), so pipelines survive
  process restarts and multi-process executors can share state.

Paths are plain strings with ``/`` separators.  A "file" holds an ordered
sequence of records; directories are implicit (a path prefix).  Output
paths behave like Hadoop job outputs: writing to an existing path raises
unless ``overwrite=True``.
"""

from __future__ import annotations

import abc
import json
import os
import shutil
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from repro.errors import FileSystemError

__all__ = ["FileSystem", "InMemoryFileSystem", "LocalFileSystem"]


class FileSystem(abc.ABC):
    """Abstract record-oriented file system."""

    @abc.abstractmethod
    def write(
        self, path: str, records: Iterable[Any], overwrite: bool = False
    ) -> int:
        """Write ``records`` to ``path``; returns the record count.

        Raises :class:`FileSystemError` if the path exists and
        ``overwrite`` is false (mirrors Hadoop's output-path check).
        """

    @abc.abstractmethod
    def read(self, path: str) -> Iterator[Any]:
        """Iterate over the records stored at ``path``."""

    @abc.abstractmethod
    def exists(self, path: str) -> bool:
        """Whether a file exists at ``path``."""

    @abc.abstractmethod
    def delete(self, path: str) -> None:
        """Remove the file at ``path`` (no-op when absent)."""

    @abc.abstractmethod
    def list_prefix(self, prefix: str) -> List[str]:
        """All file paths starting with ``prefix``, sorted."""

    # ------------------------------------------------------------------
    def append_partition(self, base: str, index: int, records: Iterable[Any]) -> str:
        """Write one ``part-NNNNN`` file under ``base`` (Hadoop layout)."""
        path = f"{base}/part-{index:05d}"
        self.write(path, records, overwrite=True)
        return path

    def read_dir(self, base: str) -> Iterator[Any]:
        """Iterate over all records in all part files under ``base``."""
        paths = self.list_prefix(base.rstrip("/") + "/")
        if not paths and self.exists(base):
            paths = [base]
        for path in paths:
            yield from self.read(path)

    def count(self, path: str) -> int:
        """Number of records at ``path`` (or under it as a directory)."""
        return sum(1 for _ in self.read_dir(path))


class InMemoryFileSystem(FileSystem):
    """A dict-backed file system; the default substrate for simulations."""

    def __init__(self) -> None:
        self._files: Dict[str, List[Any]] = {}

    def write(
        self, path: str, records: Iterable[Any], overwrite: bool = False
    ) -> int:
        if path in self._files and not overwrite:
            raise FileSystemError(f"output path already exists: {path!r}")
        stored = list(records)
        self._files[path] = stored
        return len(stored)

    def read(self, path: str) -> Iterator[Any]:
        try:
            records = self._files[path]
        except KeyError:
            raise FileSystemError(f"no such file: {path!r}") from None
        return iter(list(records))

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def list_prefix(self, prefix: str) -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))


class LocalFileSystem(FileSystem):
    """A real-directory-backed file system serialising JSON lines.

    Parameters
    ----------
    root:
        Directory under which all paths live.
    encode / decode:
        Record codec; defaults to JSON.  Supply custom callables to store
        rich objects (e.g. ``Interval`` tuples).
    """

    def __init__(
        self,
        root: str,
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._encode = encode or (lambda record: record)
        self._decode = decode or (lambda record: record)

    def _resolve(self, path: str) -> str:
        clean = os.path.normpath(path.strip("/"))
        if clean.startswith(".."):
            raise FileSystemError(f"path escapes file system root: {path!r}")
        return os.path.join(self.root, clean)

    def write(
        self, path: str, records: Iterable[Any], overwrite: bool = False
    ) -> int:
        target = self._resolve(path)
        if os.path.exists(target) and not overwrite:
            raise FileSystemError(f"output path already exists: {path!r}")
        os.makedirs(os.path.dirname(target), exist_ok=True)
        count = 0
        with open(target, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(self._encode(record)))
                handle.write("\n")
                count += 1
        return count

    def read(self, path: str) -> Iterator[Any]:
        target = self._resolve(path)
        if not os.path.isfile(target):
            raise FileSystemError(f"no such file: {path!r}")

        def _iterate() -> Iterator[Any]:
            with open(target, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield self._decode(json.loads(line))

        return _iterate()

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._resolve(path))

    def delete(self, path: str) -> None:
        target = self._resolve(path)
        if os.path.isfile(target):
            os.remove(target)
        elif os.path.isdir(target):
            shutil.rmtree(target)

    def list_prefix(self, prefix: str) -> List[str]:
        found: List[str] = []
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, self.root).replace(os.sep, "/")
                if rel.startswith(prefix.strip("/")):
                    found.append(rel)
        return sorted(found)
