"""Multi-job pipelines.

The paper's algorithms span one to three MapReduce cycles (RCCIS: two;
PASM: three) and the cascade baselines chain one job per 2-way join.  A
:class:`Pipeline` runs a job sequence where later jobs read earlier jobs'
outputs, accumulating counters and per-job results for the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.mapreduce.counters import Counters
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import JobConf, JobResult
from repro.mapreduce.runner import run_job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cost import CostModel
    from repro.obs.recorder import TraceRecorder

__all__ = ["Pipeline", "PipelineResult"]


@dataclass
class PipelineResult:
    """Aggregated measurements of a job chain."""

    jobs: List[JobResult] = field(default_factory=list)

    @property
    def counters(self) -> Counters:
        merged = Counters()
        for job in self.jobs:
            merged.merge(job.counters)
        return merged

    @property
    def num_cycles(self) -> int:
        return len(self.jobs)

    @property
    def total_map_output_records(self) -> int:
        return sum(job.map_output_records for job in self.jobs)

    @property
    def total_shuffled_records(self) -> int:
        return sum(job.shuffled_records for job in self.jobs)

    @property
    def final_output(self) -> Optional[str]:
        return self.jobs[-1].output if self.jobs else None


class Pipeline:
    """Runs jobs in sequence against one file system.

    Jobs may be provided up front or generated lazily (a *stage factory*
    may inspect earlier results — e.g. the 2-way cascade needs to know the
    previous join's output path).
    """

    def __init__(
        self,
        fs: FileSystem,
        executor: Optional[str] = None,
        observer: Optional["TraceRecorder"] = None,
        cost_model: Optional["CostModel"] = None,
        workers: Optional[int] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> None:
        self.fs = fs
        #: executor name, or None to defer to $REPRO_EXECUTOR / "serial".
        self.executor = executor
        #: optional TraceRecorder forwarded to every job run.
        self.observer = observer
        #: cost model used only to charge recorded spans.
        self.cost_model = cost_model
        #: worker count for the parallel executors (None: resolved per job).
        self.workers = workers
        #: fault-injection plan / seed / spec (None: $REPRO_FAULTS).
        self.faults = faults
        #: per-task retry budget (None: $REPRO_MAX_ATTEMPTS).
        self.max_attempts = max_attempts
        #: speculative re-execution switch (None: $REPRO_SPECULATIVE).
        self.speculative = speculative
        #: data plane ("records"/"columnar"; None: $REPRO_DATA_PLANE).
        self.data_plane = data_plane
        self.result = PipelineResult()

    def run(self, conf: JobConf) -> JobResult:
        """Run one job, recording it in the pipeline result."""
        job_result = run_job(
            self.fs,
            conf,
            executor=self.executor,
            observer=self.observer,
            cost_model=self.cost_model,
            workers=self.workers,
            faults=self.faults,
            max_attempts=self.max_attempts,
            speculative=self.speculative,
            data_plane=self.data_plane,
        )
        self.result.jobs.append(job_result)
        return job_result

    def run_all(self, confs: Sequence[JobConf]) -> PipelineResult:
        """Run a fixed job sequence."""
        for conf in confs:
            self.run(conf)
        return self.result
