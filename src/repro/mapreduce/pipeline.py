"""Multi-job pipelines.

The paper's algorithms span one to three MapReduce cycles (RCCIS: two;
PASM: three) and the cascade baselines chain one job per 2-way join.  A
:class:`Pipeline` runs a job sequence where later jobs read earlier jobs'
outputs, accumulating counters and per-job results for the cost model.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.mapreduce.counters import Counters
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import JobConf, JobResult
from repro.mapreduce.runner import run_job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cost import CostModel
    from repro.obs.recorder import TraceRecorder

__all__ = ["Pipeline", "PipelineResult", "warn_if_all_fell_back"]

logger = logging.getLogger("repro.columnar")


def warn_if_all_fell_back(
    jobs: Sequence[JobResult], data_plane: Optional[str]
) -> bool:
    """Log one warning when ``columnar`` was requested but no job used it.

    Per-job fallbacks are normal (a cascade may mix columnar-capable and
    records-only cycles) and are only surfaced through the
    ``repro_data_plane_fallback_total`` metric and EXPLAIN; a run where
    *every* job fell back usually means a misconfiguration, so it earns
    a single log-level warning.  Returns whether the warning fired.
    """
    if data_plane != "columnar" or not jobs:
        return False
    if any(job.data_plane == "columnar" for job in jobs):
        return False
    reasons = sorted(
        {job.data_plane_fallback or "unknown" for job in jobs}
    )
    logger.warning(
        "--data-plane columnar requested but all %d job(s) fell back to "
        "the records plane (reasons: %s); see "
        "repro_data_plane_fallback_total for the per-job breakdown",
        len(jobs),
        ", ".join(reasons),
    )
    return True


@dataclass
class PipelineResult:
    """Aggregated measurements of a job chain."""

    jobs: List[JobResult] = field(default_factory=list)

    @property
    def counters(self) -> Counters:
        merged = Counters()
        for job in self.jobs:
            merged.merge(job.counters)
        return merged

    @property
    def num_cycles(self) -> int:
        return len(self.jobs)

    @property
    def total_map_output_records(self) -> int:
        return sum(job.map_output_records for job in self.jobs)

    @property
    def total_shuffled_records(self) -> int:
        return sum(job.shuffled_records for job in self.jobs)

    @property
    def final_output(self) -> Optional[str]:
        return self.jobs[-1].output if self.jobs else None


class Pipeline:
    """Runs jobs in sequence against one file system.

    Jobs may be provided up front or generated lazily (a *stage factory*
    may inspect earlier results — e.g. the 2-way cascade needs to know the
    previous join's output path).
    """

    def __init__(
        self,
        fs: FileSystem,
        executor: Optional[str] = None,
        observer: Optional["TraceRecorder"] = None,
        cost_model: Optional["CostModel"] = None,
        workers: Optional[int] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
        task_timeout: Optional[float] = None,
    ) -> None:
        self.fs = fs
        #: executor name, or None to defer to $REPRO_EXECUTOR / "serial".
        self.executor = executor
        #: optional TraceRecorder forwarded to every job run.
        self.observer = observer
        #: cost model used only to charge recorded spans.
        self.cost_model = cost_model
        #: worker count for the parallel executors (None: resolved per job).
        self.workers = workers
        #: fault-injection plan / seed / spec (None: $REPRO_FAULTS).
        self.faults = faults
        #: per-task retry budget (None: $REPRO_MAX_ATTEMPTS).
        self.max_attempts = max_attempts
        #: speculative re-execution switch (None: $REPRO_SPECULATIVE).
        self.speculative = speculative
        #: data plane ("records"/"columnar"; None: $REPRO_DATA_PLANE).
        self.data_plane = data_plane
        #: per-task attempt timeout in seconds (None: $REPRO_TASK_TIMEOUT).
        self.task_timeout = task_timeout
        self.result = PipelineResult()

    def run(self, conf: JobConf) -> JobResult:
        """Run one job, recording it in the pipeline result."""
        job_result = run_job(
            self.fs,
            conf,
            executor=self.executor,
            observer=self.observer,
            cost_model=self.cost_model,
            workers=self.workers,
            faults=self.faults,
            max_attempts=self.max_attempts,
            speculative=self.speculative,
            data_plane=self.data_plane,
            task_timeout=self.task_timeout,
        )
        self.result.jobs.append(job_result)
        return job_result

    def run_all(self, confs: Sequence[JobConf]) -> PipelineResult:
        """Run a fixed job sequence."""
        for conf in confs:
            self.run(conf)
        return self.result
