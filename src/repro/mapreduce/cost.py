"""Analytic cost model: from counters to simulated wall-clock time.

The paper reports wall-clock times on a 16-core Hadoop cluster.  We cannot
(and need not) reproduce absolute numbers; what must be preserved is the
*shape*: which algorithm wins and by roughly what factor.  Those shapes are
driven by quantities the simulator measures exactly, combined the way a
shared-nothing cluster combines them:

* work that parallelises across the cluster — reading splits, moving the
  shuffle over the network, writing reducer output — is charged at
  ``parallelism``-way concurrency;
* work bound by the busiest reducer — receiving its input, performing its
  comparisons, writing its output — is charged in full.  This is the
  straggler term, and it is what makes All-Replicate's skewed sequence
  joins slow (the paper's Figure 4 story);
* every MapReduce cycle pays a fixed startup overhead (JVM spawn,
  scheduling), which penalises multi-cycle cascades exactly as the paper
  observes.

Per-reducer comparisons and output are not tracked individually, so the
straggler's share of both is approximated proportionally to its share of
reduce input.  Benchmarks report raw counters next to modelled seconds so
readers can re-derive times under their own coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.job import JobResult
from repro.mapreduce.pipeline import PipelineResult

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Linear cost model over simulator counters.

    Coefficients are in "seconds per record" units of the modelled
    cluster; ``parallelism`` is the cluster's concurrent task capacity
    (the paper's cluster runs 16 reduce slots).
    """

    read_cost: float = 1.0e-6
    shuffle_cost: float = 3.0e-6
    comparison_cost: float = 2.0e-7
    output_cost: float = 1.0e-6
    per_cycle_overhead: float = 5.0
    parallelism: int = 16

    def job_time(self, job: JobResult) -> float:
        """Modelled seconds for one job: parallel I/O + straggler.

        The reduce phase finishes when the slowest task does; each task's
        wall time is its receive + compute + write.  Per-task outputs and
        comparisons are measured exactly by the runner; when absent (a
        hand-built :class:`JobResult`) they are approximated by the task's
        input share.
        """
        reads = job.counters.value("framework", "map_input_records")
        shuffled = job.shuffled_records
        map_time = (reads / self.parallelism) * self.read_cost
        network_time = (shuffled / self.parallelism) * self.shuffle_cost

        loads = job.reduce_task_loads or [0]
        total_load = sum(loads) or 1
        comparisons = job.counters.value("work", "comparisons")
        outputs = job.output_records
        per_task_cmp = job.reduce_task_comparisons or [
            comparisons * load / total_load for load in loads
        ]
        per_task_out = job.reduce_task_outputs or [
            outputs * load / total_load for load in loads
        ]
        task_times = [
            load * self.shuffle_cost
            + cmp * self.comparison_cost
            + out * self.output_cost
            for load, cmp, out in zip(loads, per_task_cmp, per_task_out)
        ]
        straggler_time = max(task_times)
        # Work conservation: when there are more reduce tasks than slots,
        # tasks queue — the phase cannot finish before the aggregate
        # reduce work divided by the cluster's concurrency.
        queued_time = sum(task_times) / self.parallelism
        return (
            self.per_cycle_overhead
            + map_time
            + max(network_time, straggler_time, queued_time)
        )

    def pipeline_time(self, result: PipelineResult) -> float:
        """Modelled seconds for a job chain (cycles are sequential)."""
        return sum(self.job_time(job) for job in result.jobs)


#: The model used by the benchmark harness unless overridden.
DEFAULT_COST_MODEL = CostModel()
