"""Shared value types for the MapReduce simulator."""

from __future__ import annotations

from typing import Any, Hashable, Tuple

__all__ = ["KeyValue"]

#: An intermediate key-value pair emitted by a mapper.  Keys must be
#: hashable and, within one job, mutually comparable (the shuffle sorts by
#: key, mirroring Hadoop's sort-shuffle).
KeyValue = Tuple[Hashable, Any]
