"""Job history: durable, structured records of executed jobs.

Hadoop's JobHistory server is how one audits what a pipeline actually
did; this is its simulator analogue.  A :class:`JobHistory` collects
per-job summaries (counters, loads, outputs), serialises to/from JSON,
and renders comparison summaries — the benchmark harness can persist a
run's history next to its tables so results stay auditable.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.mapreduce.job import JobResult
from repro.mapreduce.pipeline import PipelineResult

__all__ = ["JobRecord", "JobHistory"]


@dataclass(frozen=True)
class JobRecord:
    """The durable summary of one executed job."""

    name: str
    map_input_records: int
    map_output_records: int
    shuffled_records: int
    reduce_input_groups: int
    output_records: int
    reduce_task_loads: List[int]
    user_counters: Dict[str, Dict[str, int]]
    #: records emitted per physical reduce task (empty in pre-1.1
    #: histories, which did not persist it).
    reduce_task_outputs: List[int] = field(default_factory=list)
    #: ``work:comparisons`` per physical reduce task (empty in pre-1.1
    #: histories) — with the loads, enough to re-plot Figure 4.
    reduce_task_comparisons: List[int] = field(default_factory=list)

    @classmethod
    def from_result(cls, result: JobResult) -> "JobRecord":
        counters = result.counters
        user = {
            group: dict(names)
            for group, names in counters.as_dict().items()
            if group != "framework"
        }
        return cls(
            name=result.name,
            map_input_records=counters.value("framework", "map_input_records"),
            map_output_records=result.map_output_records,
            shuffled_records=result.shuffled_records,
            reduce_input_groups=counters.value(
                "framework", "reduce_input_groups"
            ),
            output_records=result.output_records,
            reduce_task_loads=list(result.reduce_task_loads),
            user_counters=user,
            reduce_task_outputs=list(result.reduce_task_outputs),
            reduce_task_comparisons=list(result.reduce_task_comparisons),
        )

    @property
    def max_reduce_task_load(self) -> int:
        return max(self.reduce_task_loads, default=0)


class JobHistory:
    """An append-only log of job records."""

    def __init__(self, records: Optional[List[JobRecord]] = None) -> None:
        self.records: List[JobRecord] = list(records or [])

    # ------------------------------------------------------------------
    def record(self, result: JobResult) -> JobRecord:
        entry = JobRecord.from_result(result)
        self.records.append(entry)
        return entry

    def record_pipeline(self, pipeline: PipelineResult) -> List[JobRecord]:
        return [self.record(job) for job in pipeline.jobs]

    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, int]:
        """Aggregate framework measurements across recorded jobs."""
        return {
            "jobs": len(self.records),
            "map_input_records": sum(
                r.map_input_records for r in self.records
            ),
            "shuffled_records": sum(r.shuffled_records for r in self.records),
            "output_records": sum(r.output_records for r in self.records),
        }

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump([asdict(r) for r in self.records], handle, indent=2)

    @classmethod
    def load(cls, path: str) -> "JobHistory":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls([JobRecord(**entry) for entry in payload])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
