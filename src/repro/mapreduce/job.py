"""Job configuration and results for the MapReduce simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.mapreduce.counters import Counters
from repro.mapreduce.shuffle import HashPartitioner, Partitioner
from repro.mapreduce.task import Mapper, Reducer

__all__ = ["InputSpec", "JobConf", "JobResult"]


@dataclass
class InputSpec:
    """One input directory/file and the mapper that processes it.

    Mirrors Hadoop's ``MultipleInputs``: a multi-way join reads each
    relation from its own path with a relation-specific mapper.
    """

    path: str
    mapper: Mapper


@dataclass
class JobConf:
    """Configuration of a single MapReduce job.

    Attributes
    ----------
    name:
        Human-readable job name (appears in results and logs).
    inputs:
        The input specs; every record of every input is mapped.
    reducer:
        The reduce function applied per key group.
    output:
        Output path; reduce task ``i`` writes ``output/part-{i:05d}``.
    num_reduce_tasks:
        Physical reduce parallelism (the paper uses 16).
    combiner:
        Optional map-side combiner (a :class:`Reducer` run per map task).
    partitioner:
        Key -> reduce-task routing; defaults to Hadoop-style hashing.
    max_attempts:
        Per-job retry budget for each map/reduce task (Hadoop's
        ``mapreduce.{map,reduce}.maxattempts``).  ``None`` defers to the
        ``run_job`` argument, then ``$REPRO_MAX_ATTEMPTS``, then 1
        (fail-fast) without a fault plan / 3 with one.
    speculative:
        Per-job speculative-execution switch; ``None`` defers to the
        ``run_job`` argument and ``$REPRO_SPECULATIVE``.
    """

    name: str
    inputs: List[InputSpec]
    reducer: Reducer
    output: str
    num_reduce_tasks: int = 16
    combiner: Optional[Reducer] = None
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    max_attempts: Optional[int] = None
    speculative: Optional[bool] = None


@dataclass
class JobResult:
    """Everything measured while running one job.

    Attributes
    ----------
    name:
        The job name from the configuration.
    counters:
        Merged framework + user counters.
    reduce_task_loads:
        Records received by each physical reduce task (index-aligned).
    logical_reducer_loads:
        Records received per intermediate key — the paper's notion of a
        reducer.  This is the distribution whose balance Section 7
        analyses.
    output:
        The output path written.
    output_records:
        Total records emitted by all reduce tasks.
    """

    name: str
    counters: Counters
    reduce_task_loads: List[int]
    logical_reducer_loads: Dict[Hashable, int]
    output: str
    output_records: int
    #: records emitted by each physical reduce task (index-aligned).
    reduce_task_outputs: List[int] = field(default_factory=list)
    #: ``work:comparisons`` performed by each physical reduce task.
    reduce_task_comparisons: List[int] = field(default_factory=list)
    #: the data plane the job actually ran on ("records" / "columnar").
    data_plane: str = "records"
    #: why the job fell back to the record plane when the columnar plane
    #: was requested (``None`` when it did not fall back / no request).
    data_plane_fallback: Optional[str] = None

    @property
    def map_output_records(self) -> int:
        """Intermediate pairs produced — the communication cost driver."""
        return self.counters.value("framework", "map_output_records")

    @property
    def shuffled_records(self) -> int:
        """Pairs crossing the map->reduce boundary (post-combiner)."""
        return self.counters.value("framework", "shuffle_records")

    @property
    def max_reduce_task_load(self) -> int:
        return max(self.reduce_task_loads, default=0)
