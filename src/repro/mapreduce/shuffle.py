"""The sort-shuffle: routing intermediate pairs to reduce tasks.

Hadoop hashes each key to one of ``num_reduce_tasks`` partitions, then
sorts and groups pairs by key within each partition.  The paper's
algorithms use the intermediate *key* as the logical reducer id (a
partition-interval index or a grid coordinate tuple); several logical
reducers may share one physical reduce task, which is exactly how a
fixed-size Hadoop cluster executes an ``o^m``-cell reducer grid.

Partitioners are pluggable.  :class:`HashPartitioner` reproduces Hadoop's
default — but over a *stable* hash (CRC-32 of the key's canonical
representation) rather than Python's builtin ``hash()``, which is salted
per interpreter and would route the same key differently across runs and
between a parent and its ``spawn``-started workers.
:class:`RoundRobinKeyPartitioner` assigns distinct keys to tasks in
sorted-key round-robin order, which gives deterministic, maximally even
key spreading for benchmarks.

Keys are ordered by their ``repr`` throughout (the only total order
available over mixed key types).  Each ``repr`` is computed once per
distinct key via a decorate-sort — on grid workloads with 100k+ distinct
keys the repeated ``repr`` calls of a naive ``sorted(keys, key=repr)``
per consumer dominate the shuffle (see ``benchmarks/bench_shuffle_sort``).
"""

from __future__ import annotations

import abc
import time
import zlib
from collections import defaultdict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import Profiler

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RoundRobinKeyPartitioner",
    "PartitionStat",
    "stable_hash",
    "shuffle",
    "columnar_shuffle",
    "partition_stats",
]


def stable_hash(key: Hashable) -> int:
    """A process-stable, unsalted 32-bit hash of a key.

    CRC-32 over the UTF-8 encoded ``repr`` — the same canonical encoding
    the shuffle sorts by.  Identical across interpreter runs and across
    parent/worker process boundaries, unlike the salted builtin ``hash``.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


def _sorted_by_repr(keys: Iterable[Hashable]) -> List[Tuple[str, Hashable]]:
    """Decorate-sort: ``(repr, key)`` pairs in repr order, one ``repr``
    call per key.  Implemented as a stable argsort over the precomputed
    reprs — comparisons stay plain string compares (no tuple overhead)
    and repr ties keep enumeration order, so keys never need to be
    comparable themselves."""
    materialized = list(keys)
    reprs = [repr(key) for key in materialized]
    order = sorted(range(len(materialized)), key=reprs.__getitem__)
    return [(reprs[i], materialized[i]) for i in order]


class Partitioner(abc.ABC):
    """Maps an intermediate key to a physical reduce task index."""

    def prepare(self, keys: Sequence[Hashable]) -> None:
        """Optional hook receiving the distinct key set before routing
        (lets stateful partitioners build a key->task table)."""

    def prepare_sorted(self, ordered: Sequence[Tuple[str, Hashable]]) -> None:
        """Like :meth:`prepare`, but receiving the distinct keys already
        repr-sorted as ``(repr, key)`` pairs.  The shuffle calls this so
        stateful partitioners can reuse its sort instead of redoing it;
        the default simply delegates to :meth:`prepare`."""
        self.prepare([key for _, key in ordered])

    @abc.abstractmethod
    def partition(self, key: Hashable, num_tasks: int) -> int:
        """The reduce task (``0 <= result < num_tasks``) owning ``key``."""


class HashPartitioner(Partitioner):
    """Hadoop's default routing, over a stable hash:
    ``stable_hash(key) mod num_tasks``."""

    def partition(self, key: Hashable, num_tasks: int) -> int:
        return stable_hash(key) % num_tasks


class RoundRobinKeyPartitioner(Partitioner):
    """Deterministic even spreading of distinct keys across tasks.

    Keys are sorted and dealt round-robin, so two runs over the same key
    set always produce the same task assignment — convenient for
    reproducible load-balance measurements.
    """

    def __init__(self) -> None:
        self._table: Dict[Hashable, int] = {}

    def prepare(self, keys: Sequence[Hashable]) -> None:
        self.prepare_sorted(_sorted_by_repr(keys))

    def prepare_sorted(self, ordered: Sequence[Tuple[str, Hashable]]) -> None:
        self._table = {key: index for index, (_, key) in enumerate(ordered)}

    def partition(self, key: Hashable, num_tasks: int) -> int:
        return self._table.get(key, 0) % num_tasks


def shuffle(
    pairs: Iterable[Tuple[Hashable, Any]],
    num_tasks: int,
    partitioner: Partitioner,
    profiler: Optional["Profiler"] = None,
    job: str = "",
) -> List[List[Tuple[Hashable, List[Any]]]]:
    """Group pairs by key and assign key groups to reduce tasks.

    Returns one list of ``(key, values)`` groups per reduce task, with
    groups sorted by key representation within each task (Hadoop's sorted
    reduce input order).  The repr-sort runs once and is shared with the
    partitioner via :meth:`Partitioner.prepare_sorted`.

    With a :class:`~repro.obs.profile.Profiler` attached, the repr-sort
    wall seconds, the distinct key count and the per-partition key-repr
    bytes are recorded under the ``profile`` metric group.  The byte
    accounting reuses the reprs the sort already computed — profiling
    never adds ``repr`` calls to the data path.
    """
    grouped: Dict[Hashable, List[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    started = time.perf_counter() if profiler is not None else 0.0
    ordered = _sorted_by_repr(grouped.keys())
    partitioner.prepare_sorted(ordered)
    if profiler is not None:
        profiler.record_shuffle_sort(
            job, time.perf_counter() - started, len(ordered)
        )
    tasks: List[List[Tuple[Hashable, List[Any]]]] = [[] for _ in range(num_tasks)]
    key_bytes = [0] * num_tasks if profiler is not None else None
    for key_repr, key in ordered:
        index = partitioner.partition(key, num_tasks)
        if not 0 <= index < num_tasks:
            raise ValueError(
                f"partitioner routed key {key!r} to invalid task {index}"
            )
        tasks[index].append((key, grouped[key]))
        if key_bytes is not None:
            key_bytes[index] += len(key_repr.encode("utf-8"))
    if profiler is not None and key_bytes is not None:
        profiler.record_partition_key_bytes(job, key_bytes)
    return tasks


def columnar_shuffle(
    pairs,  # ColumnarPairs
    num_tasks: int,
    partitioner: Partitioner,
    store=None,
    profiler: Optional["Profiler"] = None,
    job: str = "",
) -> List[List[Tuple[Hashable, Any]]]:
    """The columnar plane's sort-shuffle: one stable argsort, no
    per-pair Python objects.

    Grouping runs over the int64 key-code column — a stable
    ``np.argsort`` clusters equal keys while preserving emission order
    within each key, and ``np.unique`` finds the distinct codes and
    group boundaries in the same pass.  Only the *distinct* keys are
    decoded to native Python values and repr-sorted, so routing (and the
    :class:`~repro.obs.profile.Profiler`'s shuffle-sort / key-byte
    accounting) is bit-identical to :func:`shuffle` while the per-pair
    work drops from a dict insert + list append to a vectorised gather.

    Returns the same shape :func:`shuffle` returns — per-task lists of
    ``(key, values)`` groups in key-repr order — except each ``values``
    is a :class:`~repro.columnar.batch.ColumnValues` column slice.
    """
    import numpy as np

    from repro.columnar.batch import ColumnValues

    key_codes, gids, starts, ends, tag_codes = pairs.columns()
    tags = pairs.tags
    started = time.perf_counter() if profiler is not None else 0.0
    # Grouping only needs *an* order over the codes, not the codes
    # themselves: when the codec can recode the live range into 16 bits
    # (monotone, see KeyCodec.compact_codes) the stable sort becomes a
    # radix sort, several times faster than comparison-sorting int64.
    compact = pairs.codec.compact_codes(key_codes)
    order = np.argsort(
        key_codes if compact is None else compact, kind="stable"
    )
    sorted_codes = key_codes[order]
    # sorted_codes is ascending (compact recodings are monotone), so the
    # group boundaries are a neighbour-difference scan — cheaper than
    # np.unique, which would sort again.
    if len(sorted_codes):
        changed = np.empty(len(sorted_codes), dtype=bool)
        changed[0] = True
        np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=changed[1:])
        first_index = np.flatnonzero(changed)
    else:
        first_index = np.empty(0, dtype=np.int64)
    distinct = sorted_codes[first_index]
    boundaries = np.append(first_index, len(sorted_codes))
    keys = [pairs.codec.decode(int(code)) for code in distinct]
    slices = {
        repr(key): slice(int(boundaries[i]), int(boundaries[i + 1]))
        for i, key in enumerate(keys)
    }
    ordered = _sorted_by_repr(keys)
    partitioner.prepare_sorted(ordered)
    if profiler is not None:
        profiler.record_shuffle_sort(
            job, time.perf_counter() - started, len(ordered)
        )
    sorted_gids = gids[order]
    sorted_starts = starts[order]
    sorted_ends = ends[order]
    sorted_tag_codes = tag_codes[order]
    tasks: List[List[Tuple[Hashable, Any]]] = [[] for _ in range(num_tasks)]
    key_bytes = [0] * num_tasks if profiler is not None else None
    for key_repr, key in ordered:
        index = partitioner.partition(key, num_tasks)
        if not 0 <= index < num_tasks:
            raise ValueError(
                f"partitioner routed key {key!r} to invalid task {index}"
            )
        sl = slices[key_repr]
        tasks[index].append(
            (
                key,
                ColumnValues(
                    key,
                    sorted_gids[sl],
                    sorted_starts[sl],
                    sorted_ends[sl],
                    sorted_tag_codes[sl],
                    tags,
                    store,
                ),
            )
        )
        if key_bytes is not None:
            key_bytes[index] += len(key_repr.encode("utf-8"))
    if profiler is not None and key_bytes is not None:
        profiler.record_partition_key_bytes(job, key_bytes)
    return tasks


@dataclass(frozen=True)
class PartitionStat:
    """Communication-cost facts of one shuffled reduce partition.

    ``repr_bytes`` is the paper's "communication cost" proxy: the UTF-8
    size of the canonical ``repr`` of every key and value routed to the
    partition.  Not wire bytes — there is no wire — but a deterministic,
    executor-independent stand-in that orders algorithms the same way
    real serialisation would.
    """

    index: int
    records: int
    groups: int
    repr_bytes: int


def partition_stats(
    tasks: Sequence[Sequence[Tuple[Hashable, List[Any]]]],
) -> List[PartitionStat]:
    """Per-partition record/group/repr-size stats of a shuffle result."""
    stats: List[PartitionStat] = []
    for index, groups in enumerate(tasks):
        records = 0
        repr_bytes = 0
        for key, values in groups:
            records += len(values)
            repr_bytes += len(repr(key).encode("utf-8"))
            for value in values:
                repr_bytes += len(repr(value).encode("utf-8"))
        stats.append(PartitionStat(index, records, len(groups), repr_bytes))
    return stats
