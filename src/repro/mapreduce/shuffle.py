"""The sort-shuffle: routing intermediate pairs to reduce tasks.

Hadoop hashes each key to one of ``num_reduce_tasks`` partitions, then
sorts and groups pairs by key within each partition.  The paper's
algorithms use the intermediate *key* as the logical reducer id (a
partition-interval index or a grid coordinate tuple); several logical
reducers may share one physical reduce task, which is exactly how a
fixed-size Hadoop cluster executes an ``o^m``-cell reducer grid.

Partitioners are pluggable.  :class:`HashPartitioner` reproduces Hadoop's
default.  :class:`RoundRobinKeyPartitioner` assigns distinct keys to tasks
in sorted-key round-robin order, which gives deterministic, maximally even
key spreading for benchmarks.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, List, Sequence, Tuple

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RoundRobinKeyPartitioner",
    "shuffle",
]


class Partitioner(abc.ABC):
    """Maps an intermediate key to a physical reduce task index."""

    def prepare(self, keys: Sequence[Hashable]) -> None:
        """Optional hook receiving the distinct key set before routing
        (lets stateful partitioners build a key->task table)."""

    @abc.abstractmethod
    def partition(self, key: Hashable, num_tasks: int) -> int:
        """The reduce task (``0 <= result < num_tasks``) owning ``key``."""


class HashPartitioner(Partitioner):
    """Hadoop's default: ``hash(key) mod num_tasks``."""

    def partition(self, key: Hashable, num_tasks: int) -> int:
        return hash(key) % num_tasks


class RoundRobinKeyPartitioner(Partitioner):
    """Deterministic even spreading of distinct keys across tasks.

    Keys are sorted and dealt round-robin, so two runs over the same key
    set always produce the same task assignment — convenient for
    reproducible load-balance measurements.
    """

    def __init__(self) -> None:
        self._table: Dict[Hashable, int] = {}

    def prepare(self, keys: Sequence[Hashable]) -> None:
        self._table = {
            key: index for index, key in enumerate(sorted(keys, key=repr))
        }

    def partition(self, key: Hashable, num_tasks: int) -> int:
        return self._table.get(key, 0) % num_tasks


def shuffle(
    pairs: Iterable[Tuple[Hashable, Any]],
    num_tasks: int,
    partitioner: Partitioner,
) -> List[List[Tuple[Hashable, List[Any]]]]:
    """Group pairs by key and assign key groups to reduce tasks.

    Returns one list of ``(key, values)`` groups per reduce task, with
    groups sorted by key representation within each task (Hadoop's sorted
    reduce input order).
    """
    grouped: Dict[Hashable, List[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    partitioner.prepare(list(grouped.keys()))
    tasks: List[List[Tuple[Hashable, List[Any]]]] = [[] for _ in range(num_tasks)]
    for key in sorted(grouped.keys(), key=repr):
        index = partitioner.partition(key, num_tasks)
        if not 0 <= index < num_tasks:
            raise ValueError(
                f"partitioner routed key {key!r} to invalid task {index}"
            )
        tasks[index].append((key, grouped[key]))
    return tasks
