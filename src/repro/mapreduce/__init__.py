"""A faithful in-process MapReduce simulator (the paper's Hadoop substrate).

Public surface:

* file systems — :class:`InMemoryFileSystem`, :class:`LocalFileSystem`
* programming model — :class:`Mapper`, :class:`Reducer`, contexts
* execution — :class:`JobConf`, :func:`run_job`, :class:`Pipeline`,
  the executor backends (:data:`EXECUTORS`, :func:`resolve_executor`,
  :func:`resolve_workers`, :func:`shutdown_worker_pools`)
* measurement — :class:`Counters`, :class:`CostModel`
"""

from repro.mapreduce.counters import Counters
from repro.mapreduce.history import JobHistory, JobRecord
from repro.mapreduce.cost import DEFAULT_COST_MODEL, CostModel
from repro.mapreduce.fs import FileSystem, InMemoryFileSystem, LocalFileSystem
from repro.mapreduce.job import InputSpec, JobConf, JobResult
from repro.mapreduce.pipeline import Pipeline, PipelineResult
from repro.mapreduce.runner import (
    EXECUTORS,
    resolve_executor,
    resolve_workers,
    run_job,
    shutdown_worker_pools,
)
from repro.mapreduce.shuffle import (
    HashPartitioner,
    Partitioner,
    RoundRobinKeyPartitioner,
    stable_hash,
)
from repro.mapreduce.task import (
    IdentityMapper,
    MapContext,
    Mapper,
    ReduceContext,
    Reducer,
)

__all__ = [
    "Counters",
    "JobHistory",
    "JobRecord",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "FileSystem",
    "InMemoryFileSystem",
    "LocalFileSystem",
    "InputSpec",
    "JobConf",
    "JobResult",
    "Pipeline",
    "PipelineResult",
    "run_job",
    "EXECUTORS",
    "resolve_executor",
    "resolve_workers",
    "shutdown_worker_pools",
    "HashPartitioner",
    "Partitioner",
    "RoundRobinKeyPartitioner",
    "stable_hash",
    "IdentityMapper",
    "MapContext",
    "Mapper",
    "ReduceContext",
    "Reducer",
]
