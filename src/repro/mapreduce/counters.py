"""Hadoop-style counters.

Counters are the simulator's measurement backbone: the paper's evaluation
tables report intermediate key-value pair counts, replication counts and
reducer loads, all of which surface here.  Counters are grouped
(``group -> name -> value``) exactly like Hadoop's, and merge across tasks
and jobs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple

__all__ = ["Counters", "FRAMEWORK_GROUP"]

#: Group used by the framework's own bookkeeping counters.
FRAMEWORK_GROUP = "framework"

# Framework counter names.
MAP_INPUT_RECORDS = "map_input_records"
MAP_OUTPUT_RECORDS = "map_output_records"
COMBINE_INPUT_RECORDS = "combine_input_records"
COMBINE_OUTPUT_RECORDS = "combine_output_records"
SHUFFLE_RECORDS = "shuffle_records"
REDUCE_INPUT_GROUPS = "reduce_input_groups"
REDUCE_INPUT_RECORDS = "reduce_input_records"
REDUCE_OUTPUT_RECORDS = "reduce_output_records"


class Counters:
    """A two-level mapping of monotonically increasing counters."""

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``group:name``."""
        self._groups[group][name] += amount

    def value(self, group: str, name: str) -> int:
        """Current value of ``group:name`` (0 when never incremented)."""
        return self._groups.get(group, {}).get(name, 0)

    def group(self, group: str) -> Mapping[str, int]:
        """A read-only snapshot of one counter group."""
        return dict(self._groups.get(group, {}))

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """A point-in-time copy of every counter, for later :meth:`delta`.

        The returned mapping is detached from the live counters; the
        observability layer snapshots around a task and attaches the
        delta to the task's span.
        """
        return {group: dict(names) for group, names in self._groups.items()}

    def delta(
        self, since: Mapping[str, Mapping[str, int]]
    ) -> Dict[str, Dict[str, int]]:
        """Counter gains since a :meth:`snapshot` (non-zero entries only)."""
        gained: Dict[str, Dict[str, int]] = {}
        for group, names in self._groups.items():
            base = since.get(group, {})
            diff = {
                name: value - base.get(name, 0)
                for name, value in names.items()
                if value != base.get(name, 0)
            }
            if diff:
                gained[group] = diff
        return gained

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, int]]) -> "Counters":
        """Rebuild counters from an :meth:`as_dict` snapshot.

        Used to reconstitute per-task counters shipped back from worker
        processes; zero-valued entries survive the round trip so merged
        totals stay bit-identical to in-process execution.
        """
        counters = cls()
        for group, names in data.items():
            target = counters._groups[group]
            for name, value in names.items():
                target[name] += value
        return counters

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one."""
        for group, names in other._groups.items():
            target = self._groups[group]
            for name, value in names.items():
                target[name] += value

    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        for group, names in sorted(self._groups.items()):
            for name, value in sorted(names.items()):
                yield group, name, value

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """A deep-copied plain-dict snapshot."""
        return {group: dict(names) for group, names in self._groups.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{g}:{n}={v}" for g, n, v in self)
        return f"Counters({body})"
