"""Job execution engines.

:func:`run_job` executes one configured job against a file system.  Two
executors are available:

* ``"serial"`` — deterministic single-threaded execution (default; what
  tests and benchmarks use — parallelism is *simulated* by the cost model,
  which is how the paper's cluster numbers are reproduced in shape).
* ``"threads"`` — reduce tasks run on a thread pool.  Useful for smoke-
  testing that task code is self-contained; CPython's GIL means this is
  about realism of the execution model, not speed.

Execution follows Hadoop's lifecycle: per-input map tasks (setup, map each
record, cleanup), optional per-map-task combiner, sort-shuffle, reduce
tasks (setup, reduce each key group in key order, cleanup), each reduce
task writing one ``part-*`` file under the job's output path.

When an :class:`~repro.obs.TraceRecorder` observer is passed, every job,
phase (map / shuffle / reduce) and task is recorded as a span carrying
counter deltas and — when a cost model is supplied — its modelled-seconds
charge.  Reduce-task spans are recorded from the worker threads of the
``threads`` executor by parenting them explicitly under the reduce-phase
span, which the recorder handles thread-safely.  Observation is passive:
with ``observer=None`` the execution path, results and counters are
identical to an unobserved run.
"""

from __future__ import annotations

from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import MapReduceError
from repro.mapreduce.counters import Counters
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import InputSpec, JobConf, JobResult
from repro.mapreduce.shuffle import shuffle
from repro.mapreduce.task import MapContext, ReduceContext, Reducer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cost import CostModel
    from repro.obs.recorder import TraceRecorder
    from repro.obs.span import Span

__all__ = ["run_job"]


def _run_map_task(
    fs: FileSystem, spec: InputSpec, conf: JobConf, counters: Counters
) -> List[Tuple[Hashable, Any]]:
    """Run one map task (one input spec), combiner included."""
    context = MapContext(counters, spec.path)
    spec.mapper.setup(context)
    for record in fs.read_dir(spec.path):
        counters.increment("framework", "map_input_records")
        spec.mapper.map(record, context)
    spec.mapper.cleanup(context)
    task_pairs = context.drain()
    counters.increment("framework", "map_output_records", len(task_pairs))
    if conf.combiner is not None:
        task_pairs = _run_combiner(conf.combiner, task_pairs, counters)
    return task_pairs


def _run_map_phase(
    fs: FileSystem,
    conf: JobConf,
    counters: Counters,
    observer: Optional["TraceRecorder"] = None,
    cost_model: Optional["CostModel"] = None,
) -> List[Tuple[Hashable, Any]]:
    """Run all map tasks; returns the intermediate pair stream."""
    pairs: List[Tuple[Hashable, Any]] = []
    if observer is None:
        for spec in conf.inputs:
            pairs.extend(_run_map_task(fs, spec, conf, counters))
        return pairs
    with observer.span("map", kind="phase", job=conf.name):
        for index, spec in enumerate(conf.inputs):
            before = counters.snapshot()
            with observer.span(
                f"map:{spec.path}",
                kind="task",
                job=conf.name,
                phase="map",
                task_index=index,
            ) as span:
                task_pairs = _run_map_task(fs, spec, conf, counters)
                pairs.extend(task_pairs)
                span.counters = counters.delta(before)
                span.annotate(output_pairs=len(task_pairs))
                if cost_model is not None:
                    reads = span.counters.get("framework", {}).get(
                        "map_input_records", 0
                    )
                    span.annotate(
                        modelled_seconds=reads
                        * cost_model.read_cost
                        / cost_model.parallelism
                    )
    return pairs


def _run_combiner(
    combiner: Reducer,
    pairs: List[Tuple[Hashable, Any]],
    counters: Counters,
) -> List[Tuple[Hashable, Any]]:
    """Apply a combiner to one map task's output, Hadoop style: the
    combiner reduces each key's values locally and re-emits pairs under
    the same key."""
    counters.increment("framework", "combine_input_records", len(pairs))
    grouped: Dict[Hashable, List[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    combined: List[Tuple[Hashable, Any]] = []
    context = ReduceContext(counters, task_index=-1)
    combiner.setup(context)
    for key in sorted(grouped.keys(), key=repr):
        combiner.reduce(key, grouped[key], context)
        for record in context.drain():
            combined.append((key, record))
    combiner.cleanup(context)
    counters.increment("framework", "combine_output_records", len(combined))
    return combined


def _reduce_task_core(
    conf: JobConf,
    task_index: int,
    groups: List[Tuple[Hashable, List[Any]]],
) -> Tuple[List[Any], Counters]:
    """The untraced body of one physical reduce task."""
    counters = Counters()
    context = ReduceContext(counters, task_index)
    conf.reducer.setup(context)
    output: List[Any] = []
    for key, values in groups:
        counters.increment("framework", "reduce_input_groups")
        counters.increment("framework", "reduce_input_records", len(values))
        conf.reducer.reduce(key, values, context)
        output.extend(context.drain())
    conf.reducer.cleanup(context)
    output.extend(context.drain())
    counters.increment("framework", "reduce_output_records", len(output))
    return output, counters


def _run_reduce_task(
    conf: JobConf,
    task_index: int,
    groups: List[Tuple[Hashable, List[Any]]],
    observer: Optional["TraceRecorder"] = None,
    parent: Optional["Span"] = None,
    cost_model: Optional["CostModel"] = None,
) -> Tuple[List[Any], Counters]:
    """Run one physical reduce task over its key groups.

    With an observer the task gets its own span — parented explicitly
    under the reduce-phase span so recording is correct even when this
    runs on a ``threads``-executor worker thread.
    """
    if observer is None:
        return _reduce_task_core(conf, task_index, groups)
    with observer.span(
        f"reduce[{task_index}]",
        kind="task",
        parent=parent,
        job=conf.name,
        phase="reduce",
        task_index=task_index,
    ) as span:
        output, counters = _reduce_task_core(conf, task_index, groups)
        span.counters = counters.snapshot()
        load = counters.value("framework", "reduce_input_records")
        span.annotate(input_records=load, output_records=len(output))
        if cost_model is not None:
            span.annotate(
                modelled_seconds=load * cost_model.shuffle_cost
                + counters.value("work", "comparisons")
                * cost_model.comparison_cost
                + len(output) * cost_model.output_cost
            )
        return output, counters


def run_job(
    fs: FileSystem,
    conf: JobConf,
    executor: str = "serial",
    observer: Optional["TraceRecorder"] = None,
    cost_model: Optional["CostModel"] = None,
) -> JobResult:
    """Execute one MapReduce job and return its measurements.

    Parameters
    ----------
    fs:
        The file system holding the inputs; outputs are written back to it.
    conf:
        The job configuration.
    executor:
        ``"serial"`` or ``"threads"``.
    observer:
        Optional :class:`~repro.obs.TraceRecorder`; when given, the job,
        its phases and its tasks are recorded as spans and the
        :class:`JobResult` is registered via ``observer.record_job``.
    cost_model:
        Optional :class:`~repro.mapreduce.cost.CostModel` used only to
        attach modelled-seconds charges to the recorded spans (never
        affects execution).
    """
    if conf.num_reduce_tasks < 1:
        raise MapReduceError("a job needs at least one reduce task")
    if not conf.inputs:
        raise MapReduceError(f"job {conf.name!r} has no inputs")
    counters = Counters()

    job_span = (
        observer.start_span(
            f"job:{conf.name}",
            kind="job",
            job=conf.name,
            executor=executor,
            num_reduce_tasks=conf.num_reduce_tasks,
        )
        if observer is not None
        else None
    )
    try:
        pairs = _run_map_phase(fs, conf, counters, observer, cost_model)
        counters.increment("framework", "shuffle_records", len(pairs))

        logical_loads: Dict[Hashable, int] = defaultdict(int)
        for key, _ in pairs:
            logical_loads[key] += 1

        if observer is not None:
            with observer.span(
                "shuffle", kind="phase", job=conf.name
            ) as shuffle_span:
                tasks = shuffle(pairs, conf.num_reduce_tasks, conf.partitioner)
                shuffle_span.annotate(
                    records=len(pairs), reduce_tasks=conf.num_reduce_tasks
                )
                if cost_model is not None:
                    shuffle_span.annotate(
                        modelled_seconds=len(pairs)
                        * cost_model.shuffle_cost
                        / cost_model.parallelism
                    )
        else:
            tasks = shuffle(pairs, conf.num_reduce_tasks, conf.partitioner)
        reduce_task_loads = [
            sum(len(values) for _, values in groups) for groups in tasks
        ]

        reduce_span = (
            observer.start_span("reduce", kind="phase", job=conf.name)
            if observer is not None
            else None
        )
        try:
            if executor == "serial":
                results = [
                    _run_reduce_task(
                        conf, index, groups, observer, reduce_span, cost_model
                    )
                    for index, groups in enumerate(tasks)
                ]
            elif executor == "threads":
                with ThreadPoolExecutor() as pool:
                    futures = [
                        pool.submit(
                            _run_reduce_task,
                            conf,
                            index,
                            groups,
                            observer,
                            reduce_span,
                            cost_model,
                        )
                        for index, groups in enumerate(tasks)
                    ]
                    results = [future.result() for future in futures]
            else:
                raise MapReduceError(f"unknown executor {executor!r}")
        finally:
            if observer is not None and reduce_span is not None:
                observer.end_span(reduce_span)

        total_output = 0
        task_outputs: List[int] = []
        task_comparisons: List[int] = []
        for index, (records, task_counters) in enumerate(results):
            counters.merge(task_counters)
            fs.append_partition(conf.output, index, records)
            total_output += len(records)
            task_outputs.append(len(records))
            task_comparisons.append(task_counters.value("work", "comparisons"))

        result = JobResult(
            name=conf.name,
            counters=counters,
            reduce_task_loads=reduce_task_loads,
            logical_reducer_loads=dict(logical_loads),
            output=conf.output,
            output_records=total_output,
            reduce_task_outputs=task_outputs,
            reduce_task_comparisons=task_comparisons,
        )
        if observer is not None and job_span is not None:
            job_span.counters = counters.snapshot()
            job_span.annotate(
                output_records=total_output,
                shuffled_records=len(pairs),
                reduce_task_loads=list(reduce_task_loads),
            )
            if cost_model is not None:
                job_span.annotate(modelled_seconds=cost_model.job_time(result))
            observer.record_job(result)
        return result
    finally:
        if observer is not None and job_span is not None:
            observer.end_span(job_span)
