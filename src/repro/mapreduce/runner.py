"""Job execution engines.

:func:`run_job` executes one configured job against a file system.  Three
executors are available:

* ``"serial"`` — deterministic single-threaded execution (default; what
  tests and benchmarks use — parallelism is *simulated* by the cost model,
  which is how the paper's cluster numbers are reproduced in shape).
* ``"threads"`` — map AND reduce tasks run on a thread pool.  Useful for
  smoke-testing that task code is self-contained; CPython's GIL means
  this is about realism of the execution model, not speed.
* ``"processes"`` — map AND reduce tasks run on a shared
  :class:`~concurrent.futures.ProcessPoolExecutor` for true multi-core
  execution.  Task payloads (records, mapper/combiner/reducer instances)
  are pickled to the workers in chunks; each worker returns its output
  plus a counter snapshot and wall-clock duration, and the parent merges
  counters in task-submission order — so totals, outputs and recorded
  span sets are bit-identical to ``serial`` (pinned by the executor
  parity tests).  Worker-side object mutations (e.g. a stateful mapper)
  are *not* shipped back.

The executor may also be selected via the ``REPRO_EXECUTOR`` environment
variable (an explicit ``executor=`` argument wins), and the worker count
via ``REPRO_WORKERS`` — this is how CI runs the whole suite under the
``processes`` backend.

Execution follows Hadoop's lifecycle: per-input map tasks (setup, map each
record, cleanup), optional per-map-task combiner, sort-shuffle, reduce
tasks (setup, reduce each key group in key order, cleanup), each reduce
task writing one ``part-*`` file under the job's output path.

When an :class:`~repro.obs.TraceRecorder` observer is passed, every job,
phase (map / shuffle / reduce) and task is recorded as a span carrying
counter deltas and — when a cost model is supplied — its modelled-seconds
charge.  Task spans from the ``threads`` executor are recorded live on
the worker threads (parented explicitly under the phase span); the
``processes`` executor ships lightweight ``(duration, counters)`` task
records back and the parent materialises the spans via
:meth:`~repro.obs.TraceRecorder.record_completed`.  Observation is
passive: with ``observer=None`` the execution path, results and counters
are identical to an unobserved run.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import MapReduceError
from repro.mapreduce.counters import Counters
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import InputSpec, JobConf, JobResult
from repro.mapreduce.shuffle import shuffle
from repro.mapreduce.task import MapContext, Mapper, ReduceContext, Reducer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cost import CostModel
    from repro.obs.recorder import TraceRecorder
    from repro.obs.span import Span

__all__ = [
    "run_job",
    "EXECUTORS",
    "resolve_executor",
    "resolve_workers",
    "shutdown_worker_pools",
]

#: The recognised execution backends.
EXECUTORS = ("serial", "threads", "processes")

#: Environment variables consulted when ``executor``/``workers`` are not
#: given explicitly (how CI forces a whole test run onto one backend).
EXECUTOR_ENV = "REPRO_EXECUTOR"
WORKERS_ENV = "REPRO_WORKERS"

#: Default worker-count ceiling — beyond this, per-task pickling overhead
#: dominates on the workloads the simulator runs.
_DEFAULT_WORKERS_CAP = 8


def resolve_executor(executor: Optional[str] = None) -> str:
    """The effective executor name: explicit argument, else
    ``$REPRO_EXECUTOR``, else ``"serial"``.  Unknown names raise."""
    name = executor or os.environ.get(EXECUTOR_ENV, "").strip() or "serial"
    if name not in EXECUTORS:
        raise MapReduceError(
            f"unknown executor {name!r}; expected one of {EXECUTORS}"
        )
    return name


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit argument, else
    ``$REPRO_WORKERS``, else ``min(cpu_count, 8)``.  Must be >= 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise MapReduceError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = min(os.cpu_count() or 1, _DEFAULT_WORKERS_CAP)
    if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
        raise MapReduceError(
            f"workers must be a positive integer, got {workers!r}"
        )
    return workers


# ----------------------------------------------------------------------
# Worker-process pool.  One shared pool per worker count, reused across
# jobs (and across a whole pipeline / test session) so process start-up
# is amortised.  All pool interaction happens on the parent; workers
# only ever run the module-level ``_process_*_task`` functions, which
# keeps the backend safe under both fork and spawn start methods.
# ----------------------------------------------------------------------

_pools_lock = threading.Lock()
_pools: Dict[int, ProcessPoolExecutor] = {}


def _process_pool(workers: int) -> ProcessPoolExecutor:
    with _pools_lock:
        pool = _pools.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _pools[workers] = pool
        return pool


def shutdown_worker_pools() -> None:
    """Shut down every cached worker pool (fresh pools are created on
    demand afterwards).  Mostly useful for embedders and tests."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


def _pool_map(
    fn: Callable[[Any], Any], payloads: Sequence[Any], workers: int
) -> List[Any]:
    """Dispatch payloads to the worker pool in chunks, preserving order."""
    pool = _process_pool(workers)
    chunksize = max(1, math.ceil(len(payloads) / (workers * 4)))
    try:
        return list(pool.map(fn, payloads, chunksize=chunksize))
    except BrokenProcessPool as exc:
        with _pools_lock:
            _pools.pop(workers, None)
        pool.shutdown(wait=False)
        raise MapReduceError(f"worker pool crashed: {exc}") from exc


# ----------------------------------------------------------------------
# Task bodies.  Each task runs against a *fresh* Counters instance so the
# same code executes identically in-process and in a worker process; the
# parent merges per-task counters in task-submission order, which makes
# totals independent of the executor.
# ----------------------------------------------------------------------

def _map_task_core(
    path: str,
    records: Sequence[Any],
    mapper: Mapper,
    combiner: Optional[Reducer],
) -> Tuple[List[Tuple[Hashable, Any]], Counters]:
    """Run one map task (one input spec), combiner included."""
    counters = Counters()
    context = MapContext(counters, path)
    mapper.setup(context)
    for record in records:
        counters.increment("framework", "map_input_records")
        mapper.map(record, context)
    mapper.cleanup(context)
    task_pairs = context.drain()
    counters.increment("framework", "map_output_records", len(task_pairs))
    if combiner is not None:
        task_pairs = _run_combiner(combiner, task_pairs, counters)
    return task_pairs, counters


def _run_combiner(
    combiner: Reducer,
    pairs: List[Tuple[Hashable, Any]],
    counters: Counters,
) -> List[Tuple[Hashable, Any]]:
    """Apply a combiner to one map task's output, Hadoop style: the
    combiner reduces each key's values locally and re-emits pairs under
    the same key."""
    counters.increment("framework", "combine_input_records", len(pairs))
    grouped: Dict[Hashable, List[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    combined: List[Tuple[Hashable, Any]] = []
    context = ReduceContext(counters, task_index=-1)
    combiner.setup(context)
    for key in sorted(grouped.keys(), key=repr):
        combiner.reduce(key, grouped[key], context)
        for record in context.drain():
            combined.append((key, record))
    combiner.cleanup(context)
    counters.increment("framework", "combine_output_records", len(combined))
    return combined


def _reduce_task_core(
    reducer: Reducer,
    task_index: int,
    groups: List[Tuple[Hashable, List[Any]]],
) -> Tuple[List[Any], Counters]:
    """The untraced body of one physical reduce task."""
    counters = Counters()
    # Zero-initialise so even an empty task reports its input counters
    # (key routing decides which tasks receive groups at all).
    counters.increment("framework", "reduce_input_groups", 0)
    counters.increment("framework", "reduce_input_records", 0)
    context = ReduceContext(counters, task_index)
    reducer.setup(context)
    output: List[Any] = []
    for key, values in groups:
        counters.increment("framework", "reduce_input_groups")
        counters.increment("framework", "reduce_input_records", len(values))
        reducer.reduce(key, values, context)
        output.extend(context.drain())
    reducer.cleanup(context)
    output.extend(context.drain())
    counters.increment("framework", "reduce_output_records", len(output))
    return output, counters


# ----------------------------------------------------------------------
# Span annotation helpers (shared by all executors so recorded spans are
# identical regardless of where the task ran).
# ----------------------------------------------------------------------

def _map_span_attrs(
    task_counters: Counters,
    task_pairs: Sequence[Any],
    cost_model: Optional["CostModel"],
) -> Dict[str, Any]:
    attrs: Dict[str, Any] = {"output_pairs": len(task_pairs)}
    if cost_model is not None:
        reads = task_counters.value("framework", "map_input_records")
        attrs["modelled_seconds"] = (
            reads * cost_model.read_cost / cost_model.parallelism
        )
    return attrs


def _reduce_span_attrs(
    task_counters: Counters,
    output: Sequence[Any],
    cost_model: Optional["CostModel"],
) -> Dict[str, Any]:
    load = task_counters.value("framework", "reduce_input_records")
    attrs: Dict[str, Any] = {
        "input_records": load,
        "output_records": len(output),
    }
    if cost_model is not None:
        attrs["modelled_seconds"] = (
            load * cost_model.shuffle_cost
            + task_counters.value("work", "comparisons")
            * cost_model.comparison_cost
            + len(output) * cost_model.output_cost
        )
    return attrs


# ----------------------------------------------------------------------
# In-process task wrappers (serial + threads): the span is recorded live
# around the task body, parented explicitly so worker threads attach to
# the right phase span.
# ----------------------------------------------------------------------

def _run_map_task_traced(
    spec: InputSpec,
    index: int,
    records: Sequence[Any],
    combiner: Optional[Reducer],
    job_name: str,
    observer: Optional["TraceRecorder"],
    parent: Optional["Span"],
    cost_model: Optional["CostModel"],
) -> Tuple[List[Tuple[Hashable, Any]], Counters]:
    if observer is None:
        return _map_task_core(spec.path, records, spec.mapper, combiner)
    with observer.span(
        f"map:{spec.path}",
        kind="task",
        parent=parent,
        job=job_name,
        phase="map",
        task_index=index,
    ) as span:
        task_pairs, task_counters = _map_task_core(
            spec.path, records, spec.mapper, combiner
        )
        span.counters = task_counters.delta({})
        span.annotate(**_map_span_attrs(task_counters, task_pairs, cost_model))
        return task_pairs, task_counters


def _run_reduce_task(
    conf: JobConf,
    task_index: int,
    groups: List[Tuple[Hashable, List[Any]]],
    observer: Optional["TraceRecorder"] = None,
    parent: Optional["Span"] = None,
    cost_model: Optional["CostModel"] = None,
) -> Tuple[List[Any], Counters]:
    """Run one physical reduce task over its key groups.

    With an observer the task gets its own span — parented explicitly
    under the reduce-phase span so recording is correct even when this
    runs on a ``threads``-executor worker thread.
    """
    if observer is None:
        return _reduce_task_core(conf.reducer, task_index, groups)
    with observer.span(
        f"reduce[{task_index}]",
        kind="task",
        parent=parent,
        job=conf.name,
        phase="reduce",
        task_index=task_index,
    ) as span:
        output, counters = _reduce_task_core(conf.reducer, task_index, groups)
        span.counters = counters.snapshot()
        span.annotate(**_reduce_span_attrs(counters, output, cost_model))
        return output, counters


# ----------------------------------------------------------------------
# Process-pool task entry points.  Module-level so they pickle by
# reference under spawn; they return ``(output, counters_dict, seconds)``
# records the parent folds back in.
# ----------------------------------------------------------------------

def _process_map_task(
    payload: Tuple[str, Sequence[Any], Mapper, Optional[Reducer]],
) -> Tuple[List[Tuple[Hashable, Any]], Dict[str, Dict[str, int]], float]:
    path, records, mapper, combiner = payload
    started = time.perf_counter()
    task_pairs, task_counters = _map_task_core(path, records, mapper, combiner)
    return task_pairs, task_counters.as_dict(), time.perf_counter() - started


def _process_reduce_task(
    payload: Tuple[Reducer, int, List[Tuple[Hashable, List[Any]]]],
) -> Tuple[List[Any], Dict[str, Dict[str, int]], float]:
    reducer, task_index, groups = payload
    started = time.perf_counter()
    output, task_counters = _reduce_task_core(reducer, task_index, groups)
    return output, task_counters.as_dict(), time.perf_counter() - started


# ----------------------------------------------------------------------
# Phase drivers.
# ----------------------------------------------------------------------

def _run_map_tasks_processes(
    conf: JobConf,
    tasks: Sequence[Tuple[int, InputSpec, List[Any]]],
    observer: Optional["TraceRecorder"],
    phase_span: Optional["Span"],
    cost_model: Optional["CostModel"],
    workers: int,
) -> List[Tuple[List[Tuple[Hashable, Any]], Counters]]:
    payloads = [
        (spec.path, records, spec.mapper, conf.combiner)
        for _, spec, records in tasks
    ]
    shipped = _pool_map(_process_map_task, payloads, workers)
    results = []
    for (index, spec, _), (task_pairs, counter_dict, elapsed) in zip(
        tasks, shipped
    ):
        task_counters = Counters.from_dict(counter_dict)
        if observer is not None:
            observer.record_completed(
                f"map:{spec.path}",
                kind="task",
                parent=phase_span,
                duration=elapsed,
                counters=task_counters.delta({}),
                job=conf.name,
                phase="map",
                task_index=index,
                **_map_span_attrs(task_counters, task_pairs, cost_model),
            )
        results.append((task_pairs, task_counters))
    return results


def _run_reduce_tasks_processes(
    conf: JobConf,
    tasks: Sequence[List[Tuple[Hashable, List[Any]]]],
    observer: Optional["TraceRecorder"],
    phase_span: Optional["Span"],
    cost_model: Optional["CostModel"],
    workers: int,
) -> List[Tuple[List[Any], Counters]]:
    payloads = [
        (conf.reducer, index, groups) for index, groups in enumerate(tasks)
    ]
    shipped = _pool_map(_process_reduce_task, payloads, workers)
    results = []
    for index, (output, counter_dict, elapsed) in enumerate(shipped):
        task_counters = Counters.from_dict(counter_dict)
        if observer is not None:
            observer.record_completed(
                f"reduce[{index}]",
                kind="task",
                parent=phase_span,
                duration=elapsed,
                counters=task_counters.snapshot(),
                job=conf.name,
                phase="reduce",
                task_index=index,
                **_reduce_span_attrs(task_counters, output, cost_model),
            )
        results.append((output, task_counters))
    return results


def _run_map_phase(
    fs: FileSystem,
    conf: JobConf,
    counters: Counters,
    observer: Optional["TraceRecorder"],
    cost_model: Optional["CostModel"],
    executor: str,
    workers: int,
) -> List[Tuple[Hashable, Any]]:
    """Run all map tasks; returns the intermediate pair stream.

    Per-task counters merge (and pairs concatenate) in input-spec order
    under every executor, so the stream and the totals are identical
    whether tasks ran serially, on threads, or in worker processes.
    """
    pairs: List[Tuple[Hashable, Any]] = []
    if executor == "serial":
        if observer is None:
            for spec in conf.inputs:
                task_pairs, task_counters = _map_task_core(
                    spec.path, fs.read_dir(spec.path), spec.mapper, conf.combiner
                )
                counters.merge(task_counters)
                pairs.extend(task_pairs)
            return pairs
        with observer.span("map", kind="phase", job=conf.name) as phase_span:
            for index, spec in enumerate(conf.inputs):
                task_pairs, task_counters = _run_map_task_traced(
                    spec, index, fs.read_dir(spec.path), conf.combiner,
                    conf.name, observer, phase_span, cost_model,
                )
                counters.merge(task_counters)
                pairs.extend(task_pairs)
        return pairs

    # Parallel executors materialise each input up front: records must be
    # shippable to workers, and file-system access stays on the parent.
    tasks = [
        (index, spec, list(fs.read_dir(spec.path)))
        for index, spec in enumerate(conf.inputs)
    ]
    phase_span = (
        observer.start_span("map", kind="phase", job=conf.name)
        if observer is not None
        else None
    )
    try:
        if executor == "threads":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _run_map_task_traced,
                        spec, index, records, conf.combiner,
                        conf.name, observer, phase_span, cost_model,
                    )
                    for index, spec, records in tasks
                ]
                results = [future.result() for future in futures]
        else:
            results = _run_map_tasks_processes(
                conf, tasks, observer, phase_span, cost_model, workers
            )
        for task_pairs, task_counters in results:
            counters.merge(task_counters)
            pairs.extend(task_pairs)
    finally:
        if observer is not None and phase_span is not None:
            observer.end_span(phase_span)
    return pairs


def run_job(
    fs: FileSystem,
    conf: JobConf,
    executor: Optional[str] = None,
    observer: Optional["TraceRecorder"] = None,
    cost_model: Optional["CostModel"] = None,
    workers: Optional[int] = None,
) -> JobResult:
    """Execute one MapReduce job and return its measurements.

    Parameters
    ----------
    fs:
        The file system holding the inputs; outputs are written back to it.
    conf:
        The job configuration.
    executor:
        ``"serial"``, ``"threads"`` or ``"processes"``; ``None`` defers to
        ``$REPRO_EXECUTOR`` and then ``"serial"``.  All three produce
        bit-identical outputs and counters.
    observer:
        Optional :class:`~repro.obs.TraceRecorder`; when given, the job,
        its phases and its tasks are recorded as spans and the
        :class:`JobResult` is registered via ``observer.record_job``.
    cost_model:
        Optional :class:`~repro.mapreduce.cost.CostModel` used only to
        attach modelled-seconds charges to the recorded spans (never
        affects execution).
    workers:
        Worker count for the parallel executors; ``None`` defers to
        ``$REPRO_WORKERS`` and then ``min(cpu_count, 8)``.
    """
    executor = resolve_executor(executor)
    workers = resolve_workers(workers)
    if conf.num_reduce_tasks < 1:
        raise MapReduceError("a job needs at least one reduce task")
    if not conf.inputs:
        raise MapReduceError(f"job {conf.name!r} has no inputs")
    counters = Counters()

    job_span = (
        observer.start_span(
            f"job:{conf.name}",
            kind="job",
            job=conf.name,
            executor=executor,
            num_reduce_tasks=conf.num_reduce_tasks,
        )
        if observer is not None
        else None
    )
    try:
        pairs = _run_map_phase(
            fs, conf, counters, observer, cost_model, executor, workers
        )
        counters.increment("framework", "shuffle_records", len(pairs))

        logical_loads: Dict[Hashable, int] = defaultdict(int)
        for key, _ in pairs:
            logical_loads[key] += 1

        if observer is not None:
            with observer.span(
                "shuffle", kind="phase", job=conf.name
            ) as shuffle_span:
                tasks = shuffle(pairs, conf.num_reduce_tasks, conf.partitioner)
                shuffle_span.annotate(
                    records=len(pairs), reduce_tasks=conf.num_reduce_tasks
                )
                if cost_model is not None:
                    shuffle_span.annotate(
                        modelled_seconds=len(pairs)
                        * cost_model.shuffle_cost
                        / cost_model.parallelism
                    )
        else:
            tasks = shuffle(pairs, conf.num_reduce_tasks, conf.partitioner)
        reduce_task_loads = [
            sum(len(values) for _, values in groups) for groups in tasks
        ]

        reduce_span = (
            observer.start_span("reduce", kind="phase", job=conf.name)
            if observer is not None
            else None
        )
        try:
            if executor == "serial":
                results = [
                    _run_reduce_task(
                        conf, index, groups, observer, reduce_span, cost_model
                    )
                    for index, groups in enumerate(tasks)
                ]
            elif executor == "threads":
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _run_reduce_task,
                            conf,
                            index,
                            groups,
                            observer,
                            reduce_span,
                            cost_model,
                        )
                        for index, groups in enumerate(tasks)
                    ]
                    results = [future.result() for future in futures]
            else:
                results = _run_reduce_tasks_processes(
                    conf, tasks, observer, reduce_span, cost_model, workers
                )
        finally:
            if observer is not None and reduce_span is not None:
                observer.end_span(reduce_span)

        total_output = 0
        task_outputs: List[int] = []
        task_comparisons: List[int] = []
        for index, (records, task_counters) in enumerate(results):
            counters.merge(task_counters)
            fs.append_partition(conf.output, index, records)
            total_output += len(records)
            task_outputs.append(len(records))
            task_comparisons.append(task_counters.value("work", "comparisons"))

        result = JobResult(
            name=conf.name,
            counters=counters,
            reduce_task_loads=reduce_task_loads,
            logical_reducer_loads=dict(logical_loads),
            output=conf.output,
            output_records=total_output,
            reduce_task_outputs=task_outputs,
            reduce_task_comparisons=task_comparisons,
        )
        if observer is not None and job_span is not None:
            job_span.counters = counters.snapshot()
            job_span.annotate(
                output_records=total_output,
                shuffled_records=len(pairs),
                reduce_task_loads=list(reduce_task_loads),
            )
            if cost_model is not None:
                job_span.annotate(modelled_seconds=cost_model.job_time(result))
            observer.record_job(result)
        return result
    finally:
        if observer is not None and job_span is not None:
            observer.end_span(job_span)
