"""Job execution engines.

:func:`run_job` executes one configured job against a file system.  Three
executors are available:

* ``"serial"`` — deterministic single-threaded execution (default; what
  tests and benchmarks use — parallelism is *simulated* by the cost model,
  which is how the paper's cluster numbers are reproduced in shape).
* ``"threads"`` — map AND reduce tasks run on a thread pool.  Useful for
  smoke-testing that task code is self-contained; CPython's GIL means
  this is about realism of the execution model, not speed.
* ``"processes"`` — map AND reduce tasks run on a shared
  :class:`~concurrent.futures.ProcessPoolExecutor` for true multi-core
  execution.  Task payloads (records, mapper/combiner/reducer instances)
  are pickled to the workers in chunks; each worker returns its output
  plus a counter snapshot and wall-clock duration, and the parent merges
  counters in task-submission order — so totals, outputs and recorded
  span sets are bit-identical to ``serial`` (pinned by the executor
  parity tests).  Worker-side object mutations (e.g. a stateful mapper)
  are *not* shipped back.

The executor may also be selected via the ``REPRO_EXECUTOR`` environment
variable (an explicit ``executor=`` argument wins), and the worker count
via ``REPRO_WORKERS`` — this is how CI runs the whole suite under the
``processes`` backend.  Orthogonally, ``REPRO_DATA_PLANE=columnar`` (or
``data_plane="columnar"``) moves protocol-aware jobs onto the columnar
data plane — struct-of-arrays batches, an argsort shuffle and
shared-memory reduce transport under ``processes`` — with bit-identical
outputs and counters (see ``docs/data_plane.md``).

Execution follows Hadoop's lifecycle: per-input map tasks (setup, map each
record, cleanup), optional per-map-task combiner, sort-shuffle, reduce
tasks (setup, reduce each key group in key order, cleanup), each reduce
task writing one ``part-*`` file under the job's output path.

When an :class:`~repro.obs.TraceRecorder` observer is passed, every job,
phase (map / shuffle / reduce) and task is recorded as a span carrying
counter deltas and — when a cost model is supplied — its modelled-seconds
charge.  Task spans from the ``threads`` executor are recorded live on
the worker threads (parented explicitly under the phase span); the
``processes`` executor ships lightweight ``(duration, counters)`` task
records back and the parent materialises the spans via
:meth:`~repro.obs.TraceRecorder.record_completed`.  Observation is
passive: with ``observer=None`` the execution path, results and counters
are identical to an unobserved run.

Fault tolerance (:mod:`repro.faults`) mirrors Hadoop's task-attempt
semantics.  When a fault plan, a retry budget (``max_attempts`` > 1) or
speculation is active, every map/reduce task becomes an *attempt loop*:
a failed attempt — injected crash, corrupt output detected at commit, or
a genuine task exception — is retried with exponential backoff (charged
as virtual time on the retry's span; real sleeping only happens under
the parallel executors, capped), its counters discarded so job totals
stay bit-identical to a fault-free run.  Reduce attempts stage output
through the file system's ``_temporary``/promote commit protocol, and
speculative backups of plan-delayed stragglers run after the phase wave
— the committed result is the first attempt to finish, the backup is
discarded before commit and counted as ``faults:speculative_wasted``.
Failed and speculative attempts are recorded as ``kind="attempt"`` spans
with ``attempt=`` metadata.  With no fault machinery active the
original single-attempt code paths run unchanged.
"""

from __future__ import annotations

import copy
import math
import os
import pickle
import threading
import time
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.columnar.batch import (
    ColumnarPairs,
    MapBlock,
    PayloadStore,
    job_columnar_gate,
)
from repro.columnar.codec import KEY_CODECS, KeyCodec
from repro.columnar.plane import resolve_data_plane
from repro.columnar.shm import pack_reduce_task, unpack_reduce_task
from repro.errors import (
    FaultInjectedError,
    MapReduceError,
    TaskTimeoutError,
    WorkerPoolError,
)
from repro.faults import (
    CORRUPT,
    FAULTS_GROUP,
    AttemptInjector,
    ResolvedFaults,
    resolve_faults,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import InputSpec, JobConf, JobResult
from repro.mapreduce.shuffle import columnar_shuffle, partition_stats, shuffle
from repro.mapreduce.task import MapContext, Mapper, ReduceContext, Reducer
from repro.obs.metrics import GROUP_FAULTS, GROUP_LIVE, LOAD_BUCKETS
from repro.obs.profile import run_profiled_task as _process_profiled_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cost import CostModel
    from repro.obs.profile import Profiler
    from repro.obs.recorder import TraceRecorder
    from repro.obs.span import Span


def _profiler_of(observer: Optional["TraceRecorder"]) -> Optional["Profiler"]:
    """The attached data-plane profiler, if any."""
    return getattr(observer, "profiler", None) if observer is not None else None


def _live_of(observer: Optional["TraceRecorder"]) -> Optional[Any]:
    """The attached live telemetry hub, if any."""
    return getattr(observer, "live", None) if observer is not None else None


def _task_beat(
    live: Optional[Any], job: str, phase: str, index: int, executor: str
) -> Optional[Any]:
    """A heartbeat emitter for one task, or ``None`` with telemetry off."""
    if live is None:
        return None
    return live.task_beat(job, phase, index, 0, executor)

__all__ = [
    "run_job",
    "EXECUTORS",
    "resolve_executor",
    "resolve_workers",
    "shutdown_worker_pools",
]

#: The recognised execution backends.
EXECUTORS = ("serial", "threads", "processes")

#: Environment variables consulted when ``executor``/``workers`` are not
#: given explicitly (how CI forces a whole test run onto one backend).
EXECUTOR_ENV = "REPRO_EXECUTOR"
WORKERS_ENV = "REPRO_WORKERS"

#: Default worker-count ceiling — beyond this, per-task pickling overhead
#: dominates on the workloads the simulator runs.
_DEFAULT_WORKERS_CAP = 8


def resolve_executor(executor: Optional[str] = None) -> str:
    """The effective executor name: explicit argument, else
    ``$REPRO_EXECUTOR``, else ``"serial"``.  Unknown names raise."""
    name = executor or os.environ.get(EXECUTOR_ENV, "").strip() or "serial"
    if name not in EXECUTORS:
        raise MapReduceError(
            f"unknown executor {name!r}; expected one of {EXECUTORS}"
        )
    return name


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit argument, else
    ``$REPRO_WORKERS``, else ``min(cpu_count, 8)``.  Must be >= 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise MapReduceError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = min(os.cpu_count() or 1, _DEFAULT_WORKERS_CAP)
    if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
        raise MapReduceError(
            f"workers must be a positive integer, got {workers!r}"
        )
    return workers


# ----------------------------------------------------------------------
# Worker-process pool.  One shared pool per worker count, reused across
# jobs (and across a whole pipeline / test session) so process start-up
# is amortised.  All pool interaction happens on the parent; workers
# only ever run the module-level ``_process_*_task`` functions, which
# keeps the backend safe under both fork and spawn start methods.
# ----------------------------------------------------------------------

_pools_lock = threading.Lock()
_pools: Dict[int, ProcessPoolExecutor] = {}


def _process_pool(workers: int) -> ProcessPoolExecutor:
    with _pools_lock:
        pool = _pools.get(workers)
        if pool is None:
            # Start the multiprocessing resource tracker *before* the
            # first worker is forked so every worker inherits it.  The
            # columnar reduce path has workers attach SharedMemory
            # blocks; with one shared tracker the attach-registrations
            # collapse into the creator's entry and the parent's
            # ``unlink()`` is the single clean removal.  A worker forked
            # without a tracker would lazily spawn its own and report
            # the parent's already-unlinked blocks as leaked at exit.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            pool = ProcessPoolExecutor(max_workers=workers)
            _pools[workers] = pool
        return pool


def shutdown_worker_pools() -> None:
    """Shut down every cached worker pool (fresh pools are created on
    demand afterwards).  Mostly useful for embedders and tests."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


def _discard_broken_pool(pool: ProcessPoolExecutor, workers: int) -> None:
    with _pools_lock:
        if _pools.get(workers) is pool:
            _pools.pop(workers)
    pool.shutdown(wait=False)


def _pool_map(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int,
    job: str,
    phase: str,
    indices: Sequence[int],
    profiler: Optional["Profiler"] = None,
) -> List[Any]:
    """Dispatch payloads to the worker pool in chunks, preserving order.

    A broken pool surfaces as :class:`WorkerPoolError` carrying the job,
    the phase and the submitted task indices — with chunked ``pool.map``
    dispatch no result is retrievable once the pool dies, so the whole
    batch is reported as pending.

    With a profiler attached, each ``(fn, payload)`` is pre-pickled on
    the parent and shipped through
    :func:`repro.obs.profile.run_profiled_task` — the timed
    ``dumps``/``loads`` on both sides *are* the real serialization work
    (the pool's own transport then only re-pickles opaque bytes), so the
    recorded encode/decode seconds and byte counts measure exactly what
    the unprofiled path pays.
    """
    pool = _process_pool(workers)
    chunksize = max(1, math.ceil(len(payloads) / (workers * 4)))
    if profiler is None:
        try:
            return list(pool.map(fn, payloads, chunksize=chunksize))
        except BrokenProcessPool as exc:
            _discard_broken_pool(pool, workers)
            raise WorkerPoolError(job, phase, indices, str(exc)) from exc
    started = time.perf_counter()
    blobs = [
        pickle.dumps((fn, payload), protocol=pickle.HIGHEST_PROTOCOL)
        for payload in payloads
    ]
    profiler.record_pickle(
        job, phase, "parent", "encode", time.perf_counter() - started
    )
    profiler.record_pickle_bytes(
        job, phase, "request", sum(len(blob) for blob in blobs)
    )
    try:
        shipped = list(
            pool.map(_process_profiled_task, blobs, chunksize=chunksize)
        )
    except BrokenProcessPool as exc:
        _discard_broken_pool(pool, workers)
        raise WorkerPoolError(job, phase, indices, str(exc)) from exc
    results = []
    decode_seconds = 0.0
    response_bytes = 0
    for result_blob, wprof in shipped:
        started = time.perf_counter()
        results.append(pickle.loads(result_blob))
        decode_seconds += time.perf_counter() - started
        response_bytes += len(result_blob)
        profiler.absorb_worker(job, phase, wprof)
    profiler.record_pickle(job, phase, "parent", "decode", decode_seconds)
    profiler.record_pickle_bytes(job, phase, "response", response_bytes)
    return results


def _submit_attempt(
    fn: Callable[[Any], Any],
    payload: Any,
    workers: int,
    job: str,
    phase: str,
    task_index: int,
    profiler: Optional["Profiler"] = None,
) -> Tuple[Any, Counters, float]:
    """Run one task attempt on the worker pool.

    Fault-tolerant execution submits attempts individually (never
    chunked): a retry must re-run exactly the failed task, and a
    per-attempt future lets injected worker-side failures map back to
    the one attempt that raised them.  Profiled dispatch pre-pickles the
    payload exactly like :func:`_pool_map`; injected faults still raise
    through the attempt's future unchanged.
    """
    pool = _process_pool(workers)
    if profiler is None:
        try:
            result, counter_dict, elapsed = pool.submit(fn, payload).result()
        except BrokenProcessPool as exc:
            _discard_broken_pool(pool, workers)
            raise WorkerPoolError(job, phase, (task_index,), str(exc)) from exc
        return result, Counters.from_dict(counter_dict), elapsed
    started = time.perf_counter()
    blob = pickle.dumps((fn, payload), protocol=pickle.HIGHEST_PROTOCOL)
    profiler.record_pickle(
        job, phase, "parent", "encode", time.perf_counter() - started
    )
    profiler.record_pickle_bytes(job, phase, "request", len(blob))
    try:
        result_blob, wprof = pool.submit(
            _process_profiled_task, blob
        ).result()
    except BrokenProcessPool as exc:
        _discard_broken_pool(pool, workers)
        raise WorkerPoolError(job, phase, (task_index,), str(exc)) from exc
    started = time.perf_counter()
    result, counter_dict, elapsed = pickle.loads(result_blob)
    profiler.record_pickle(
        job, phase, "parent", "decode", time.perf_counter() - started
    )
    profiler.record_pickle_bytes(job, phase, "response", len(result_blob))
    profiler.absorb_worker(job, phase, wprof)
    return result, Counters.from_dict(counter_dict), elapsed


# ----------------------------------------------------------------------
# Task bodies.  Each task runs against a *fresh* Counters instance so the
# same code executes identically in-process and in a worker process; the
# parent merges per-task counters in task-submission order, which makes
# totals independent of the executor.
# ----------------------------------------------------------------------

def _map_task_core(
    path: str,
    records: Sequence[Any],
    mapper: Mapper,
    combiner: Optional[Reducer],
    faults: Optional[AttemptInjector] = None,
    beat: Optional[Any] = None,
) -> Tuple[List[Tuple[Hashable, Any]], Counters]:
    """Run one map task (one input spec), combiner included."""
    counters = Counters()
    context = MapContext(counters, path, beat)
    mapper.setup(context)
    if beat is None:
        # Telemetry off: the seed's loop, byte for byte.
        for record in records:
            counters.increment("framework", "map_input_records")
            mapper.map(record, context)
    else:
        processed = 0
        for record in records:
            counters.increment("framework", "map_input_records")
            mapper.map(record, context)
            processed += 1
            beat.progress(processed)
        beat.progress(processed, force=True)
    if faults is not None:
        faults.check("cleanup")
    mapper.cleanup(context)
    task_pairs = context.drain()
    counters.increment("framework", "map_output_records", len(task_pairs))
    if combiner is not None:
        if beat is not None:
            # Boundary beat before the combiner takes over the attempt.
            beat.progress(force=True)
        task_pairs = _run_combiner(combiner, task_pairs, counters, faults)
    return task_pairs, counters


def _run_combiner(
    combiner: Reducer,
    pairs: List[Tuple[Hashable, Any]],
    counters: Counters,
    faults: Optional[AttemptInjector] = None,
) -> List[Tuple[Hashable, Any]]:
    """Apply a combiner to one map task's output, Hadoop style: the
    combiner reduces each key's values locally and re-emits pairs under
    the same key."""
    if faults is not None:
        faults.check("combiner")
    counters.increment("framework", "combine_input_records", len(pairs))
    grouped: Dict[Hashable, List[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    combined: List[Tuple[Hashable, Any]] = []
    context = ReduceContext(counters, task_index=-1)
    combiner.setup(context)
    for key in sorted(grouped.keys(), key=repr):
        combiner.reduce(key, grouped[key], context)
        for record in context.drain():
            combined.append((key, record))
    combiner.cleanup(context)
    counters.increment("framework", "combine_output_records", len(combined))
    return combined


def _reduce_task_core(
    reducer: Reducer,
    task_index: int,
    groups: List[Tuple[Hashable, List[Any]]],
    faults: Optional[AttemptInjector] = None,
    beat: Optional[Any] = None,
) -> Tuple[List[Any], Counters]:
    """The untraced body of one physical reduce task."""
    counters = Counters()
    # Zero-initialise so even an empty task reports its input counters
    # (key routing decides which tasks receive groups at all).
    counters.increment("framework", "reduce_input_groups", 0)
    counters.increment("framework", "reduce_input_records", 0)
    context = ReduceContext(counters, task_index, beat)
    reducer.setup(context)
    output: List[Any] = []
    if beat is None:
        for key, values in groups:
            counters.increment("framework", "reduce_input_groups")
            counters.increment(
                "framework", "reduce_input_records", len(values)
            )
            reducer.reduce(key, values, context)
            output.extend(context.drain())
    else:
        processed = 0
        for key, values in groups:
            counters.increment("framework", "reduce_input_groups")
            counters.increment(
                "framework", "reduce_input_records", len(values)
            )
            reducer.reduce(key, values, context)
            output.extend(context.drain())
            processed += len(values)
            beat.progress(processed)
        beat.progress(processed, force=True)
    if faults is not None:
        faults.check("cleanup")
    reducer.cleanup(context)
    output.extend(context.drain())
    counters.increment("framework", "reduce_output_records", len(output))
    return output, counters


# ----------------------------------------------------------------------
# Span annotation helpers (shared by all executors so recorded spans are
# identical regardless of where the task ran).
# ----------------------------------------------------------------------

def _map_span_attrs(
    task_counters: Counters,
    num_pairs: int,
    cost_model: Optional["CostModel"],
) -> Dict[str, Any]:
    attrs: Dict[str, Any] = {"output_pairs": num_pairs}
    if cost_model is not None:
        reads = task_counters.value("framework", "map_input_records")
        attrs["modelled_seconds"] = (
            reads * cost_model.read_cost / cost_model.parallelism
        )
    return attrs


def _reduce_span_attrs(
    task_counters: Counters,
    output: Sequence[Any],
    cost_model: Optional["CostModel"],
) -> Dict[str, Any]:
    load = task_counters.value("framework", "reduce_input_records")
    attrs: Dict[str, Any] = {
        "input_records": load,
        "output_records": len(output),
    }
    if cost_model is not None:
        attrs["modelled_seconds"] = (
            load * cost_model.shuffle_cost
            + task_counters.value("work", "comparisons")
            * cost_model.comparison_cost
            + len(output) * cost_model.output_cost
        )
    return attrs


# ----------------------------------------------------------------------
# Metric recording (parent side).  Only winning attempts record, so the
# "run"-group families are invariant under fault injection; increments
# are commutative, so the "threads" executor's concurrent recording
# yields the same samples as serial execution.
# ----------------------------------------------------------------------

def _record_map_task_metrics(
    observer: Optional["TraceRecorder"],
    job: str,
    input_path: str,
    task_counters: Counters,
    num_pairs: int,
) -> None:
    """Per-map-task tuple in/out, labelled by input relation path.

    The in/out ratio per input is the paper's *replication factor* of
    that relation: intermediate tuples emitted per distinct input tuple.
    """
    if observer is None:
        return
    records = observer.metrics.counter(
        "repro_map_records_total",
        "Records entering (direction=in) and pairs leaving "
        "(direction=out) map tasks, per input relation.",
        labels=("job", "input", "direction"),
    )
    reads = task_counters.value("framework", "map_input_records")
    records.inc(reads, job=job, input=input_path, direction="in")
    records.inc(num_pairs, job=job, input=input_path, direction="out")


def _record_reduce_task_metrics(
    observer: Optional["TraceRecorder"],
    job: str,
    task_counters: Counters,
    output: Sequence[Any],
) -> None:
    """Per-reduce-task tuple in/out plus the per-reducer load histogram."""
    if observer is None:
        return
    metrics = observer.metrics
    load = task_counters.value("framework", "reduce_input_records")
    records = metrics.counter(
        "repro_reduce_records_total",
        "Records entering (direction=in) and leaving (direction=out) "
        "reduce tasks.",
        labels=("job", "direction"),
    )
    records.inc(load, job=job, direction="in")
    records.inc(len(output), job=job, direction="out")
    metrics.histogram(
        "repro_reduce_task_load",
        "Distribution of physical reduce-task input loads (records).",
        labels=("job",),
        buckets=LOAD_BUCKETS,
    ).observe(load, job=job)


def _record_job_metrics(
    observer: Optional["TraceRecorder"],
    conf: JobConf,
    pairs: Sequence[Any],
    tasks: Sequence[Any],
    logical_loads: Dict[Hashable, int],
    counters: Counters,
) -> None:
    """Job-level shuffle, skew, replication and fault metrics."""
    if observer is None:
        return
    metrics = observer.metrics
    shuffled = metrics.counter(
        "repro_shuffle_records_total",
        "Intermediate pairs routed through the shuffle.",
        labels=("job",),
    )
    shuffled.inc(len(pairs), job=conf.name)
    partition_records = metrics.gauge(
        "repro_shuffle_partition_records",
        "Records routed to each physical reduce partition.",
        labels=("job", "partition"),
    )
    partition_bytes = metrics.gauge(
        "repro_shuffle_partition_repr_bytes",
        "Bytes-ish (UTF-8 repr size) routed to each reduce partition — "
        "the paper's communication-cost proxy.",
        labels=("job", "partition"),
    )
    for stat in partition_stats(tasks):
        label = f"{stat.index:05d}"
        partition_records.set(stat.records, job=conf.name, partition=label)
        partition_bytes.set(stat.repr_bytes, job=conf.name, partition=label)
    key_skew = metrics.histogram(
        "repro_key_load",
        "Per-logical-reducer (distinct intermediate key) load "
        "distribution — the key-skew histogram.",
        labels=("job",),
        buckets=LOAD_BUCKETS,
    )
    for load in logical_loads.values():
        key_skew.observe(load, job=conf.name)
    reads = counters.value("framework", "map_input_records")
    emitted = counters.value("framework", "map_output_records")
    if reads:
        metrics.gauge(
            "repro_replication_factor",
            "Map-output pairs emitted per input record of the job "
            "(tuples emitted / distinct input tuples).",
            labels=("job",),
        ).set(emitted / reads, job=conf.name)
    faults_total = metrics.counter(
        "repro_faults_total",
        "Fault-injection bookkeeping: failed/retried/speculative "
        "attempts per job.",
        labels=("job", "kind"),
        group=GROUP_FAULTS,
    )
    for kind, value in sorted(counters.as_dict().get(FAULTS_GROUP, {}).items()):
        if value:
            faults_total.inc(value, job=conf.name, kind=kind)


# ----------------------------------------------------------------------
# In-process task wrappers (serial + threads): the span is recorded live
# around the task body, parented explicitly so worker threads attach to
# the right phase span.
# ----------------------------------------------------------------------

def _run_map_task_traced(
    spec: InputSpec,
    index: int,
    records: Sequence[Any],
    combiner: Optional[Reducer],
    job_name: str,
    observer: Optional["TraceRecorder"],
    parent: Optional["Span"],
    cost_model: Optional["CostModel"],
    beat: Optional[Any] = None,
) -> Tuple[List[Tuple[Hashable, Any]], Counters]:
    if observer is None:
        return _map_task_core(spec.path, records, spec.mapper, combiner)
    with observer.span(
        f"map:{spec.path}",
        kind="task",
        parent=parent,
        job=job_name,
        phase="map",
        task_index=index,
    ) as span:
        if beat is not None:
            beat.start()
        task_pairs, task_counters = _map_task_core(
            spec.path, records, spec.mapper, combiner, beat=beat
        )
        if beat is not None:
            beat.finish(
                task_counters.value("framework", "map_input_records")
            )
        span.counters = task_counters.delta({})
        span.annotate(
            **_map_span_attrs(task_counters, len(task_pairs), cost_model)
        )
        _record_map_task_metrics(
            observer, job_name, spec.path, task_counters, len(task_pairs)
        )
        return task_pairs, task_counters


def _run_reduce_task(
    conf: JobConf,
    task_index: int,
    groups: List[Tuple[Hashable, List[Any]]],
    observer: Optional["TraceRecorder"] = None,
    parent: Optional["Span"] = None,
    cost_model: Optional["CostModel"] = None,
    beat: Optional[Any] = None,
) -> Tuple[List[Any], Counters]:
    """Run one physical reduce task over its key groups.

    With an observer the task gets its own span — parented explicitly
    under the reduce-phase span so recording is correct even when this
    runs on a ``threads``-executor worker thread.
    """
    if observer is None:
        return _reduce_task_core(conf.reducer, task_index, groups)
    with observer.span(
        f"reduce[{task_index}]",
        kind="task",
        parent=parent,
        job=conf.name,
        phase="reduce",
        task_index=task_index,
    ) as span:
        if beat is not None:
            beat.start()
        output, counters = _reduce_task_core(
            conf.reducer, task_index, groups, beat=beat
        )
        if beat is not None:
            beat.finish(
                counters.value("framework", "reduce_input_records")
            )
        span.counters = counters.snapshot()
        span.annotate(**_reduce_span_attrs(counters, output, cost_model))
        _record_reduce_task_metrics(observer, conf.name, counters, output)
        return output, counters


# ----------------------------------------------------------------------
# Process-pool task entry points.  Module-level so they pickle by
# reference under spawn; they return ``(output, counters_dict, seconds)``
# records the parent folds back in.
# ----------------------------------------------------------------------

def _process_map_task(
    payload: Tuple[str, Sequence[Any], Mapper, Optional[Reducer]],
) -> Tuple[List[Tuple[Hashable, Any]], Dict[str, Dict[str, int]], float]:
    # Live telemetry appends a heartbeat emitter as an optional fifth
    # element (a manager-queue channel, picklable); len-gating keeps the
    # telemetry-off payload — and therefore its pickle — byte-identical
    # to the seed's.
    path, records, mapper, combiner = payload[:4]
    beat = payload[4] if len(payload) > 4 else None
    if beat is not None:
        beat.start()
    started = time.perf_counter()
    task_pairs, task_counters = _map_task_core(
        path, records, mapper, combiner, beat=beat
    )
    elapsed = time.perf_counter() - started
    if beat is not None:
        beat.finish(task_counters.value("framework", "map_input_records"))
    return task_pairs, task_counters.as_dict(), elapsed


def _process_reduce_task(
    payload: Tuple[Reducer, int, List[Tuple[Hashable, List[Any]]]],
) -> Tuple[List[Any], Dict[str, Dict[str, int]], float]:
    reducer, task_index, groups = payload[:3]
    beat = payload[3] if len(payload) > 3 else None
    if beat is not None:
        beat.start()
    started = time.perf_counter()
    output, task_counters = _reduce_task_core(
        reducer, task_index, groups, beat=beat
    )
    elapsed = time.perf_counter() - started
    if beat is not None:
        beat.finish(
            task_counters.value("framework", "reduce_input_records")
        )
    return output, task_counters.as_dict(), elapsed


def _process_map_attempt(
    payload: Tuple[str, Sequence[Any], Mapper, Optional[Reducer], Tuple],
) -> Tuple[List[Tuple[Hashable, Any]], Dict[str, Dict[str, int]], float]:
    """One fault-aware map attempt: the injected events travel in the
    payload so worker-side lifecycle crashes fire inside the worker and
    propagate back through the attempt's future."""
    path, records, mapper, combiner, events = payload[:5]
    beat = payload[5] if len(payload) > 5 else None
    injector = AttemptInjector(events)
    started = time.perf_counter()
    task_pairs, task_counters = _map_task_core(
        path, records, mapper, combiner, faults=injector, beat=beat
    )
    return task_pairs, task_counters.as_dict(), time.perf_counter() - started


def _process_reduce_attempt(
    payload: Tuple[Reducer, int, List[Tuple[Hashable, List[Any]]], Tuple],
) -> Tuple[List[Any], Dict[str, Dict[str, int]], float]:
    reducer, task_index, groups, events = payload[:4]
    beat = payload[4] if len(payload) > 4 else None
    injector = AttemptInjector(events)
    started = time.perf_counter()
    output, task_counters = _reduce_task_core(
        reducer, task_index, groups, faults=injector, beat=beat
    )
    return output, task_counters.as_dict(), time.perf_counter() - started


# ----------------------------------------------------------------------
# Phase drivers.
# ----------------------------------------------------------------------

def _run_map_tasks_processes(
    conf: JobConf,
    tasks: Sequence[Tuple[int, InputSpec, List[Any]]],
    observer: Optional["TraceRecorder"],
    phase_span: Optional["Span"],
    cost_model: Optional["CostModel"],
    workers: int,
) -> List[Tuple[List[Tuple[Hashable, Any]], Counters]]:
    live = _live_of(observer)
    if live is None:
        payloads = [
            (spec.path, records, spec.mapper, conf.combiner)
            for _, spec, records in tasks
        ]
    else:
        payloads = [
            (
                spec.path, records, spec.mapper, conf.combiner,
                _task_beat(live, conf.name, "map", index, "processes"),
            )
            for index, spec, records in tasks
        ]
    shipped = _pool_map(
        _process_map_task, payloads, workers,
        conf.name, "map", [index for index, _, _ in tasks],
        profiler=_profiler_of(observer),
    )
    results = []
    for (index, spec, _), (task_pairs, counter_dict, elapsed) in zip(
        tasks, shipped
    ):
        task_counters = Counters.from_dict(counter_dict)
        if observer is not None:
            observer.record_completed(
                f"map:{spec.path}",
                kind="task",
                parent=phase_span,
                duration=elapsed,
                counters=task_counters.delta({}),
                job=conf.name,
                phase="map",
                task_index=index,
                **_map_span_attrs(task_counters, len(task_pairs), cost_model),
            )
            _record_map_task_metrics(
                observer, conf.name, spec.path, task_counters, len(task_pairs)
            )
        results.append((task_pairs, task_counters))
    return results


def _run_reduce_tasks_processes(
    conf: JobConf,
    tasks: Sequence[List[Tuple[Hashable, List[Any]]]],
    observer: Optional["TraceRecorder"],
    phase_span: Optional["Span"],
    cost_model: Optional["CostModel"],
    workers: int,
) -> List[Tuple[List[Any], Counters]]:
    live = _live_of(observer)
    if live is None:
        payloads = [
            (conf.reducer, index, groups)
            for index, groups in enumerate(tasks)
        ]
    else:
        payloads = [
            (
                conf.reducer, index, groups,
                _task_beat(live, conf.name, "reduce", index, "processes"),
            )
            for index, groups in enumerate(tasks)
        ]
    shipped = _pool_map(
        _process_reduce_task, payloads, workers,
        conf.name, "reduce", range(len(payloads)),
        profiler=_profiler_of(observer),
    )
    results = []
    for index, (output, counter_dict, elapsed) in enumerate(shipped):
        task_counters = Counters.from_dict(counter_dict)
        if observer is not None:
            observer.record_completed(
                f"reduce[{index}]",
                kind="task",
                parent=phase_span,
                duration=elapsed,
                counters=task_counters.snapshot(),
                job=conf.name,
                phase="reduce",
                task_index=index,
                **_reduce_span_attrs(task_counters, output, cost_model),
            )
            _record_reduce_task_metrics(
                observer, conf.name, task_counters, output
            )
        results.append((output, task_counters))
    return results


def _run_map_phase(
    fs: FileSystem,
    conf: JobConf,
    counters: Counters,
    observer: Optional["TraceRecorder"],
    cost_model: Optional["CostModel"],
    executor: str,
    workers: int,
) -> List[Tuple[Hashable, Any]]:
    """Run all map tasks; returns the intermediate pair stream.

    Per-task counters merge (and pairs concatenate) in input-spec order
    under every executor, so the stream and the totals are identical
    whether tasks ran serially, on threads, or in worker processes.
    """
    pairs: List[Tuple[Hashable, Any]] = []
    if executor == "serial":
        if observer is None:
            for spec in conf.inputs:
                task_pairs, task_counters = _map_task_core(
                    spec.path, fs.read_dir(spec.path), spec.mapper, conf.combiner
                )
                counters.merge(task_counters)
                pairs.extend(task_pairs)
            return pairs
        live = _live_of(observer)
        with observer.span("map", kind="phase", job=conf.name) as phase_span:
            for index, spec in enumerate(conf.inputs):
                task_pairs, task_counters = _run_map_task_traced(
                    spec, index, fs.read_dir(spec.path), conf.combiner,
                    conf.name, observer, phase_span, cost_model,
                    beat=_task_beat(live, conf.name, "map", index, "serial"),
                )
                counters.merge(task_counters)
                pairs.extend(task_pairs)
        return pairs

    # Parallel executors materialise each input up front: records must be
    # shippable to workers, and file-system access stays on the parent.
    tasks = [
        (index, spec, list(fs.read_dir(spec.path)))
        for index, spec in enumerate(conf.inputs)
    ]
    phase_span = (
        observer.start_span("map", kind="phase", job=conf.name)
        if observer is not None
        else None
    )
    try:
        if executor == "threads":
            live = _live_of(observer)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _run_map_task_traced,
                        spec, index, records, conf.combiner,
                        conf.name, observer, phase_span, cost_model,
                        _task_beat(live, conf.name, "map", index, "threads"),
                    )
                    for index, spec, records in tasks
                ]
                results = [future.result() for future in futures]
        else:
            results = _run_map_tasks_processes(
                conf, tasks, observer, phase_span, cost_model, workers
            )
        for task_pairs, task_counters in results:
            counters.merge(task_counters)
            pairs.extend(task_pairs)
    finally:
        if observer is not None and phase_span is not None:
            observer.end_span(phase_span)
    return pairs


# ----------------------------------------------------------------------
# Columnar data plane (REPRO_DATA_PLANE=columnar; see docs/data_plane.md).
# The map phase runs inline on the parent under every executor — it is a
# handful of vectorised numpy passes per input, so the records plane's
# per-task pickling would cost more than it saves — while the reduce
# phase keeps each executor's dispatch, with the ``processes`` backend
# shipping column blocks through shared memory instead of pickles.
# ----------------------------------------------------------------------

def _columnar_map_task(
    path: str, records: Sequence[Any], mapper: Mapper
) -> Tuple[MapBlock, Counters, Any, Any]:
    """Run one map task on the columnar plane.

    Returns the emitted block, the task counters and the per-record
    routing-interval columns.  Counter parity with :func:`_map_task_core`
    is deliberate: ``map_input_records`` appears only when the input is
    non-empty (the records plane increments per record), user counters
    come from the block (non-zero amounts only), ``map_output_records``
    is always recorded.
    """
    counters = Counters()
    context = MapContext(counters, path)
    mapper.setup(context)
    if records:
        counters.increment("framework", "map_input_records", len(records))
    starts, ends = mapper.encode_intervals(records)
    block = mapper.map_columns(starts, ends, records)
    mapper.cleanup(context)
    if context.drain():
        raise MapReduceError(
            f"columnar mapper {type(mapper).__name__} emitted records "
            "through the context; columnar emission must go through "
            "map_columns"
        )
    for (group, name), amount in block.counters.items():
        counters.increment(group, name, amount)
    counters.increment("framework", "map_output_records", len(block))
    return block, counters, starts, ends


def _run_map_phase_columnar(
    fs: FileSystem,
    conf: JobConf,
    counters: Counters,
    observer: Optional["TraceRecorder"],
    cost_model: Optional["CostModel"],
    codec: KeyCodec,
    store: PayloadStore,
) -> ColumnarPairs:
    """Run all map tasks on the columnar plane (inline, every executor).

    Input records are retained in the job's payload store — the batch
    carries only payload ids, and values materialise lazily wherever the
    framework (or a reducer) actually needs the records-plane objects.
    """
    pairs = ColumnarPairs(codec)

    def run_task(index: int, spec: InputSpec) -> Tuple[int, Counters]:
        records = list(fs.read_dir(spec.path))
        block, task_counters, starts, ends = _columnar_map_task(
            spec.path, records, spec.mapper
        )
        store.add_segment(index, records, spec.mapper)
        pairs.append_block(block, index, starts, ends)
        return len(block), task_counters

    if observer is None:
        for index, spec in enumerate(conf.inputs):
            _, task_counters = run_task(index, spec)
            counters.merge(task_counters)
        return pairs
    live = _live_of(observer)
    with observer.span("map", kind="phase", job=conf.name) as phase_span:
        for index, spec in enumerate(conf.inputs):
            with observer.span(
                f"map:{spec.path}",
                kind="task",
                parent=phase_span,
                job=conf.name,
                phase="map",
                task_index=index,
            ) as span:
                beat = _task_beat(live, conf.name, "map", index, "serial")
                if beat is not None:
                    beat.start()
                num_pairs, task_counters = run_task(index, spec)
                if beat is not None:
                    beat.finish(num_pairs)
                span.counters = task_counters.delta({})
                span.annotate(
                    **_map_span_attrs(task_counters, num_pairs, cost_model)
                )
                _record_map_task_metrics(
                    observer, conf.name, spec.path, task_counters, num_pairs
                )
            counters.merge(task_counters)
    return pairs


def _process_columnar_reduce_task(
    payload: Tuple[Reducer, int, Any],
) -> Tuple[List[Any], Dict[str, Dict[str, int]], float]:
    """Worker entry for one shared-memory columnar reduce task.

    The reducer sees store-less :class:`ColumnValues` groups and emits
    compact gid-shaped outputs; the parent materialises them.  Every
    array view into the block must be dropped before ``close()``.
    """
    reducer, task_index, task = payload[:3]
    beat = payload[3] if len(payload) > 3 else None
    if beat is not None:
        beat.start()
    started = time.perf_counter()
    groups, shm = unpack_reduce_task(task)
    try:
        output, task_counters = _reduce_task_core(
            reducer, task_index, groups, beat=beat
        )
    finally:
        del groups
        if shm is not None:
            shm.close()
    elapsed = time.perf_counter() - started
    if beat is not None:
        beat.finish(
            task_counters.value("framework", "reduce_input_records")
        )
    return output, task_counters.as_dict(), elapsed


def _run_reduce_tasks_processes_columnar(
    conf: JobConf,
    tasks: Sequence[List[Tuple[Hashable, Any]]],
    observer: Optional["TraceRecorder"],
    phase_span: Optional["Span"],
    cost_model: Optional["CostModel"],
    workers: int,
    store: PayloadStore,
) -> List[Tuple[List[Any], Counters]]:
    """The ``processes`` reduce phase on the columnar plane.

    Each non-empty task's group columns travel in one shared-memory
    block (created, and always unlinked, by the parent); the pickled
    payload shrinks to the reducer plus a small descriptor.  Workers
    return gid-shaped outputs, which the parent materialises through the
    payload store before recording spans and metrics — so the recorded
    task facts describe the final records, exactly as on the records
    plane.
    """
    profiler = _profiler_of(observer)
    packed = [pack_reduce_task(groups) for groups in tasks]
    try:
        if profiler is not None:
            profiler.record_shm_bytes(
                conf.name, "reduce", "request",
                sum(descriptor.nbytes for descriptor, _ in packed),
            )
        live = _live_of(observer)
        if live is None:
            payloads = [
                (conf.reducer, index, descriptor)
                for index, (descriptor, _) in enumerate(packed)
            ]
        else:
            payloads = [
                (
                    conf.reducer, index, descriptor,
                    _task_beat(
                        live, conf.name, "reduce", index, "processes"
                    ),
                )
                for index, (descriptor, _) in enumerate(packed)
            ]
        shipped = _pool_map(
            _process_columnar_reduce_task, payloads, workers,
            conf.name, "reduce", range(len(payloads)),
            profiler=profiler,
        )
    finally:
        for _, shm in packed:
            if shm is not None:
                shm.close()
                shm.unlink()
    results = []
    for index, (gid_output, counter_dict, elapsed) in enumerate(shipped):
        output = [
            conf.reducer.materialize_output(out, store) for out in gid_output
        ]
        task_counters = Counters.from_dict(counter_dict)
        if observer is not None:
            observer.record_completed(
                f"reduce[{index}]",
                kind="task",
                parent=phase_span,
                duration=elapsed,
                counters=task_counters.snapshot(),
                job=conf.name,
                phase="reduce",
                task_index=index,
                **_reduce_span_attrs(task_counters, output, cost_model),
            )
            _record_reduce_task_metrics(
                observer, conf.name, task_counters, output
            )
        results.append((output, task_counters))
    return results


# ----------------------------------------------------------------------
# Fault-tolerant execution: the task-attempt loop (Hadoop semantics).
# Active only when a fault plan / retry budget / speculation is resolved;
# otherwise the single-attempt phase drivers above run unchanged.
# ----------------------------------------------------------------------

@dataclass
class _TaskOutcome:
    """What one task's attempt loop produced: the winning attempt's
    result and counters, the fault bookkeeping accumulated along the
    way, which attempt number won, and whether the winner was
    plan-delayed (making it a speculation candidate)."""

    result: Any
    counters: Counters
    fault_counters: Counters
    attempt: int
    delayed: bool


def _run_task_attempts(
    *,
    job: str,
    phase: str,
    task_index: int,
    span_name: str,
    execute: Callable[
        [int, AttemptInjector, Optional[Any]], Tuple[Any, Counters, float]
    ],
    fctx: ResolvedFaults,
    executor: str,
    observer: Optional["TraceRecorder"],
    parent: Optional["Span"],
    attrs_fn: Callable[[Counters, Any], Dict[str, Any]],
    counters_view: Callable[[Counters], Dict[str, Dict[str, int]]],
    stage: Optional[Callable[[Any, int], None]] = None,
    discard: Optional[Callable[[int], None]] = None,
    metrics_fn: Optional[Callable[[Counters, Any], None]] = None,
    beat: Optional[Any] = None,
) -> _TaskOutcome:
    """Run one task to success within its retry budget.

    Each attempt walks Hadoop's lifecycle: exponential backoff (real
    sleeping — capped — only under the parallel executors; the serial
    executor charges it as virtual time on the winning span), injected
    ``setup`` crashes, injected delays, the task body via ``execute``,
    optional output staging via ``stage``, then the commit-point checks
    (a ``corrupt-output`` event discards the staged output and fails the
    attempt).  A failed attempt's counters are discarded — only the
    winner's merge into the job, which is what keeps chaos-run totals
    bit-identical to fault-free runs — and the failure is recorded as a
    ``kind="attempt"`` span.  The winner keeps the regular
    ``kind="task"`` span, annotated with its ``attempt`` number.  Once
    the budget is spent the *original* exception propagates.

    With live telemetry attached, ``beat`` reports each attempt: its
    start is emitted *before* the injected-delay sleep, so a delayed
    attempt looks to the watchdog exactly like an observed straggler —
    started, then silent.  ``fctx.task_timeout`` additionally fails any
    attempt whose observed time (injected delay included; virtual under
    ``serial``) exceeds the limit, feeding this same retry loop.
    """
    fault_counters = Counters()
    real_sleep = executor != "serial"
    for attempt in range(fctx.max_attempts):
        injector = AttemptInjector(
            fctx.events_for(job, phase, task_index, attempt)
        )
        backoff = fctx.backoff_seconds(attempt)
        if backoff and real_sleep:
            time.sleep(min(backoff, fctx.sleep_cap))
        delay = injector.delay_seconds()
        attempt_beat = beat.for_attempt(attempt) if beat is not None else None
        started = time.perf_counter()
        staged = False
        try:
            injector.check("setup")
            if attempt_beat is not None:
                attempt_beat.start()
            if delay and real_sleep:
                time.sleep(min(delay, fctx.sleep_cap))
            result, task_counters, elapsed = execute(
                attempt, injector, attempt_beat
            )
            if fctx.task_timeout is not None:
                observed = (
                    time.perf_counter() - started
                    if real_sleep
                    else elapsed + delay
                )
                if observed > fctx.task_timeout:
                    raise TaskTimeoutError(
                        job, phase, task_index, observed, fctx.task_timeout
                    )
            if stage is not None:
                stage(result, attempt)
                staged = True
            if injector.corrupts_output():
                raise FaultInjectedError(CORRUPT, "commit")
            injector.check("commit")
        except Exception as exc:
            if staged and discard is not None:
                discard(attempt)
            fault_counters.increment(FAULTS_GROUP, "tasks_failed")
            if observer is not None:
                failure_attrs: Dict[str, Any] = {
                    "job": job,
                    "phase": phase,
                    "task_index": task_index,
                    "attempt": attempt,
                    "error": type(exc).__name__,
                }
                if isinstance(exc, FaultInjectedError):
                    failure_attrs["fault"] = exc.kind
                observer.record_completed(
                    span_name,
                    kind="attempt",
                    parent=parent,
                    duration=time.perf_counter() - started,
                    **failure_attrs,
                )
            if attempt + 1 >= fctx.max_attempts:
                raise
            fault_counters.increment(FAULTS_GROUP, "tasks_retried")
            continue
        if attempt_beat is not None:
            attempt_beat.finish()
        duration = elapsed
        if not real_sleep:
            duration += delay + backoff  # straggling is virtual when serial
        if observer is not None:
            attrs: Dict[str, Any] = {
                "job": job,
                "phase": phase,
                "task_index": task_index,
                "attempt": attempt,
            }
            if delay:
                attrs["fault_delay_seconds"] = delay
            attrs.update(attrs_fn(task_counters, result))
            observer.record_completed(
                span_name,
                kind="task",
                parent=parent,
                duration=duration,
                counters=counters_view(task_counters),
                **attrs,
            )
            if metrics_fn is not None:
                # Winner only: failed attempts never reach the metrics,
                # keeping the "run" group chaos-invariant.
                metrics_fn(task_counters, result)
        return _TaskOutcome(
            result, task_counters, fault_counters, attempt, delay > 0
        )
    raise MapReduceError(  # pragma: no cover - loop always returns/raises
        f"task {task_index} of job {job!r} exhausted its attempt budget"
    )


def _speculate(
    job: str,
    phase: str,
    outcomes: Sequence[_TaskOutcome],
    name_of: Callable[[int], str],
    rerun: Callable[[int, int], None],
    fctx: ResolvedFaults,
    observer: Optional["TraceRecorder"],
    parent: Optional["Span"],
    live: Optional[Any] = None,
) -> None:
    """Run backup attempts for straggling winners.

    Candidates come from two sources: winners the fault *plan* delayed
    (the scripted path), and tasks the live telemetry *watchdog* flagged
    as observed stragglers — no script involved, just stalled
    heartbeats.  First-to-finish wins — and by construction the original
    attempt has already finished, so the backup is pure wasted work: its
    output is discarded before commit and it is counted as
    ``faults:speculative_wasted`` and recorded as a speculative
    ``kind="attempt"`` span (watchdog-launched backups additionally
    carry ``trigger="watchdog"``).  A backup that itself fails is
    swallowed (a lost speculation never fails the job)."""
    if not fctx.speculative:
        return
    stalled = (
        live.stalled_indices(job, phase) if live is not None else frozenset()
    )
    if fctx.plan is None and not stalled:
        return
    for index, outcome in enumerate(outcomes):
        watchdog = index in stalled and not outcome.delayed
        if not outcome.delayed and not watchdog:
            continue
        backup = outcome.attempt + 1
        started = time.perf_counter()
        error: Optional[BaseException] = None
        try:
            rerun(index, backup)
        except Exception as exc:
            error = exc
        outcome.fault_counters.increment(FAULTS_GROUP, "speculative_wasted")
        if observer is not None:
            attrs: Dict[str, Any] = {
                "job": job,
                "phase": phase,
                "task_index": index,
                "attempt": backup,
                "speculative": True,
            }
            if watchdog:
                attrs["trigger"] = "watchdog"
            if error is not None:
                attrs["error"] = type(error).__name__
            observer.record_completed(
                name_of(index),
                kind="attempt",
                parent=parent,
                duration=time.perf_counter() - started,
                **attrs,
            )


def _run_map_phase_faulted(
    fs: FileSystem,
    conf: JobConf,
    counters: Counters,
    observer: Optional["TraceRecorder"],
    cost_model: Optional["CostModel"],
    executor: str,
    workers: int,
    fctx: ResolvedFaults,
) -> List[Tuple[Hashable, Any]]:
    """The map phase under fault-tolerant semantics.

    Inputs are materialised up front under every executor (an attempt
    must be re-runnable from identical records).  ``serial`` drives the
    attempt loops inline; ``threads`` and ``processes`` drive one loop
    per task on parent-side driver threads — under ``processes`` each
    attempt is shipped to the worker pool individually.  Outcomes merge
    in task order, so pairs and totals stay executor-independent.
    """
    tasks = [
        (index, spec, list(fs.read_dir(spec.path)))
        for index, spec in enumerate(conf.inputs)
    ]
    phase_span = (
        observer.start_span("map", kind="phase", job=conf.name)
        if observer is not None
        else None
    )
    pairs: List[Tuple[Hashable, Any]] = []
    live = _live_of(observer)
    try:
        def run_attempt(index, spec, records, injector, beat=None):
            if executor == "processes":
                if beat is None:
                    payload = (
                        spec.path, records, spec.mapper, conf.combiner,
                        injector.events,
                    )
                else:
                    payload = (
                        spec.path, records, spec.mapper, conf.combiner,
                        injector.events, beat,
                    )
                return _submit_attempt(
                    _process_map_attempt, payload, workers,
                    conf.name, "map", index,
                    profiler=_profiler_of(observer),
                )
            started = time.perf_counter()
            # Hadoop semantics: every attempt deserialises a pristine
            # mapper, so a failed attempt leaves no state behind (the
            # process pool gets this for free from pickling).
            task_pairs, task_counters = _map_task_core(
                spec.path, records, copy.deepcopy(spec.mapper),
                copy.deepcopy(conf.combiner), faults=injector, beat=beat,
            )
            return task_pairs, task_counters, time.perf_counter() - started

        def attempts(index, spec, records):
            return _run_task_attempts(
                job=conf.name,
                phase="map",
                task_index=index,
                span_name=f"map:{spec.path}",
                execute=lambda attempt, injector, beat: run_attempt(
                    index, spec, records, injector, beat
                ),
                fctx=fctx,
                executor=executor,
                observer=observer,
                parent=phase_span,
                attrs_fn=lambda c, r: _map_span_attrs(c, len(r), cost_model),
                counters_view=lambda c: c.delta({}),
                metrics_fn=lambda c, r, path=spec.path: (
                    _record_map_task_metrics(
                        observer, conf.name, path, c, len(r)
                    )
                ),
                beat=_task_beat(live, conf.name, "map", index, executor),
            )

        if executor == "serial":
            outcomes = [attempts(i, spec, recs) for i, spec, recs in tasks]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(attempts, i, spec, recs)
                    for i, spec, recs in tasks
                ]
                outcomes = [future.result() for future in futures]

        def rerun(index, attempt):
            _, spec, records = tasks[index]
            if executor == "processes":
                _submit_attempt(
                    _process_map_attempt,
                    (spec.path, records, spec.mapper, conf.combiner, ()),
                    workers, conf.name, "map", index,
                )
            else:
                _map_task_core(
                    spec.path, records, copy.deepcopy(spec.mapper),
                    copy.deepcopy(conf.combiner),
                )

        _speculate(
            conf.name, "map", outcomes,
            lambda i: f"map:{tasks[i][1].path}",
            rerun, fctx, observer, phase_span, live=live,
        )

        for outcome in outcomes:
            counters.merge(outcome.counters)
            counters.merge(outcome.fault_counters)
            pairs.extend(outcome.result)
    finally:
        if observer is not None and phase_span is not None:
            observer.end_span(phase_span)
    return pairs


def _run_reduce_phase_faulted(
    fs: FileSystem,
    conf: JobConf,
    tasks: Sequence[List[Tuple[Hashable, List[Any]]]],
    observer: Optional["TraceRecorder"],
    reduce_span: Optional["Span"],
    cost_model: Optional["CostModel"],
    executor: str,
    workers: int,
    fctx: ResolvedFaults,
) -> List[_TaskOutcome]:
    """The reduce phase under fault-tolerant semantics.

    Every attempt stages its output through the file system's commit
    protocol (``_temporary/task-NNNNN/attempt-K``); corrupt attempts are
    discarded, and the caller promotes each winner to its ``part-*``
    file when gathering results.
    """
    live = _live_of(observer)

    def run_attempt(index, groups, injector, beat=None):
        if executor == "processes":
            if beat is None:
                payload = (conf.reducer, index, groups, injector.events)
            else:
                payload = (
                    conf.reducer, index, groups, injector.events, beat
                )
            return _submit_attempt(
                _process_reduce_attempt, payload, workers,
                conf.name, "reduce", index,
                profiler=_profiler_of(observer),
            )
        started = time.perf_counter()
        # A pristine reducer per attempt (matching what pickling gives
        # the process pool): reducers may cache state on ``self``, and a
        # shared instance would let a failed attempt's work leak into a
        # concurrent task's counters.
        output, task_counters = _reduce_task_core(
            copy.deepcopy(conf.reducer), index, groups, faults=injector,
            beat=beat,
        )
        return output, task_counters, time.perf_counter() - started

    def attempts(index, groups):
        return _run_task_attempts(
            job=conf.name,
            phase="reduce",
            task_index=index,
            span_name=f"reduce[{index}]",
            execute=lambda attempt, injector, beat: run_attempt(
                index, groups, injector, beat
            ),
            fctx=fctx,
            executor=executor,
            observer=observer,
            parent=reduce_span,
            attrs_fn=lambda c, r: _reduce_span_attrs(c, r, cost_model),
            counters_view=lambda c: c.snapshot(),
            stage=lambda records, attempt: fs.write_attempt(
                conf.output, index, attempt, records
            ),
            discard=lambda attempt: fs.discard_attempt(
                conf.output, index, attempt
            ),
            metrics_fn=lambda c, r: _record_reduce_task_metrics(
                observer, conf.name, c, r
            ),
            beat=_task_beat(live, conf.name, "reduce", index, executor),
        )

    if executor == "serial":
        outcomes = [attempts(i, groups) for i, groups in enumerate(tasks)]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(attempts, i, groups)
                for i, groups in enumerate(tasks)
            ]
            outcomes = [future.result() for future in futures]

    def rerun(index, attempt):
        groups = tasks[index]
        if executor == "processes":
            output, _, _ = _submit_attempt(
                _process_reduce_attempt,
                (conf.reducer, index, groups, ()),
                workers, conf.name, "reduce", index,
            )
        else:
            output, _ = _reduce_task_core(
                copy.deepcopy(conf.reducer), index, groups
            )
        # The backup lost the race: stage its output, then discard it
        # without promotion — the winner's attempt file commits instead.
        fs.write_attempt(conf.output, index, attempt, output)
        fs.discard_attempt(conf.output, index, attempt)

    _speculate(
        conf.name, "reduce", outcomes,
        lambda i: f"reduce[{i}]",
        rerun, fctx, observer, reduce_span, live=live,
    )
    return outcomes


def run_job(
    fs: FileSystem,
    conf: JobConf,
    executor: Optional[str] = None,
    observer: Optional["TraceRecorder"] = None,
    cost_model: Optional["CostModel"] = None,
    workers: Optional[int] = None,
    faults: Any = None,
    max_attempts: Optional[int] = None,
    speculative: Optional[bool] = None,
    data_plane: Optional[str] = None,
    task_timeout: Optional[float] = None,
) -> JobResult:
    """Execute one MapReduce job and return its measurements.

    Parameters
    ----------
    fs:
        The file system holding the inputs; outputs are written back to it.
    conf:
        The job configuration.
    executor:
        ``"serial"``, ``"threads"`` or ``"processes"``; ``None`` defers to
        ``$REPRO_EXECUTOR`` and then ``"serial"``.  All three produce
        bit-identical outputs and counters.
    observer:
        Optional :class:`~repro.obs.TraceRecorder`; when given, the job,
        its phases and its tasks are recorded as spans and the
        :class:`JobResult` is registered via ``observer.record_job``.
    cost_model:
        Optional :class:`~repro.mapreduce.cost.CostModel` used only to
        attach modelled-seconds charges to the recorded spans (never
        affects execution).
    workers:
        Worker count for the parallel executors; ``None`` defers to
        ``$REPRO_WORKERS`` and then ``min(cpu_count, 8)``.
    faults:
        Fault-injection plan — a seed, a ``$REPRO_FAULTS``-style spec
        string, a :class:`~repro.faults.FaultPlan`-like object, ``False``
        (force off) or ``None`` (defer to ``$REPRO_FAULTS``).  See
        :func:`repro.faults.resolve_faults`.
    max_attempts:
        Retry budget per task; ``JobConf.max_attempts`` beats this, this
        beats ``$REPRO_MAX_ATTEMPTS``.
    speculative:
        Speculative re-execution of plan-delayed stragglers;
        ``JobConf.speculative`` beats this, this beats
        ``$REPRO_SPECULATIVE``.
    data_plane:
        ``"records"`` (the default) or ``"columnar"``; ``None`` defers to
        ``$REPRO_DATA_PLANE``.  The columnar plane engages per job, only
        when every mapper and the reducer implement the columnar
        protocol, no combiner is configured and no fault machinery is
        active — otherwise the job runs on the records plane, and with an
        observer attached the fallback and its reason are recorded in the
        ``repro_data_plane_fallback_total`` metric, the job span and the
        :class:`JobResult`.  Both planes produce bit-identical outputs
        and counters.
    task_timeout:
        Per-task attempt timeout in seconds; ``None`` defers to
        ``$REPRO_TASK_TIMEOUT``, then unlimited.  A timed-out attempt
        fails and retries with the established backoff semantics.
    """
    executor = resolve_executor(executor)
    workers = resolve_workers(workers)
    plane = resolve_data_plane(data_plane)
    fctx = resolve_faults(
        faults,
        conf.max_attempts if conf.max_attempts is not None else max_attempts,
        conf.speculative if conf.speculative is not None else speculative,
        task_timeout,
    )
    if conf.num_reduce_tasks < 1:
        raise MapReduceError("a job needs at least one reduce task")
    if not conf.inputs:
        raise MapReduceError(f"job {conf.name!r} has no inputs")
    counters = Counters()
    # The commit protocol reports through the observer's registry for
    # the duration of this job; cleared when running unobserved so a
    # later unobserved run never writes into a stale registry.  The
    # profiler rides along the same way (staged-bytes accounting).
    fs.metrics = observer.metrics if observer is not None else None
    fs.profiler = _profiler_of(observer)

    columnar_kind: Optional[str] = None
    plane_fallback: Optional[str] = None
    if plane == "columnar":
        if fctx.active:
            plane_fallback = "fault-machinery-active"
        elif conf.combiner is not None:
            plane_fallback = "combiner-configured"
        else:
            columnar_kind, plane_fallback = job_columnar_gate(conf)
    store = PayloadStore() if columnar_kind is not None else None
    if plane_fallback is not None and observer is not None:
        observer.metrics.counter(
            "repro_data_plane_fallback_total",
            "Jobs that fell back from the requested columnar plane to "
            "the records plane, by reason.",
            labels=("job", "reason"),
            group=GROUP_LIVE,
        ).inc(job=conf.name, reason=plane_fallback)

    job_attrs: Dict[str, Any] = {}
    if fctx.active:
        job_attrs["max_attempts"] = fctx.max_attempts
    if columnar_kind is not None:
        job_attrs["data_plane"] = "columnar"
    if plane_fallback is not None:
        job_attrs["data_plane_fallback"] = plane_fallback
    job_span = (
        observer.start_span(
            f"job:{conf.name}",
            kind="job",
            job=conf.name,
            executor=executor,
            num_reduce_tasks=conf.num_reduce_tasks,
            **job_attrs,
        )
        if observer is not None
        else None
    )
    live = _live_of(observer)
    if live is not None:
        live.job_started(conf.name)
    try:
        if live is not None:
            live.phase_started(conf.name, "map", len(conf.inputs))
        if fctx.active:
            pairs = _run_map_phase_faulted(
                fs, conf, counters, observer, cost_model, executor, workers,
                fctx,
            )
        elif columnar_kind is not None:
            pairs = _run_map_phase_columnar(
                fs, conf, counters, observer, cost_model,
                KEY_CODECS[columnar_kind], store,
            )
        else:
            pairs = _run_map_phase(
                fs, conf, counters, observer, cost_model, executor, workers
            )
        if live is not None:
            live.phase_finished(conf.name, "map")
        counters.increment("framework", "shuffle_records", len(pairs))

        if columnar_kind is not None:
            logical_loads: Dict[Hashable, int] = pairs.logical_loads()
        else:
            logical_loads = defaultdict(int)
            for key, _ in pairs:
                logical_loads[key] += 1

        def run_shuffle(profiler=None, job=""):
            if columnar_kind is not None:
                return columnar_shuffle(
                    pairs, conf.num_reduce_tasks, conf.partitioner,
                    store=store, profiler=profiler, job=job,
                )
            return shuffle(
                pairs, conf.num_reduce_tasks, conf.partitioner,
                profiler=profiler, job=job,
            )

        if live is not None:
            live.phase_started(conf.name, "shuffle", 1)
        if observer is not None:
            with observer.span(
                "shuffle", kind="phase", job=conf.name
            ) as shuffle_span:
                tasks = run_shuffle(
                    profiler=_profiler_of(observer), job=conf.name
                )
                shuffle_span.annotate(
                    records=len(pairs), reduce_tasks=conf.num_reduce_tasks
                )
                if cost_model is not None:
                    shuffle_span.annotate(
                        modelled_seconds=len(pairs)
                        * cost_model.shuffle_cost
                        / cost_model.parallelism
                    )
        else:
            tasks = run_shuffle()
        if live is not None:
            live.phase_finished(conf.name, "shuffle")
        reduce_task_loads = [
            sum(len(values) for _, values in groups) for groups in tasks
        ]

        if live is not None:
            live.phase_started(conf.name, "reduce", len(tasks))
        reduce_span = (
            observer.start_span("reduce", kind="phase", job=conf.name)
            if observer is not None
            else None
        )
        reduce_outcomes: Optional[List[_TaskOutcome]] = None
        try:
            if fctx.active:
                reduce_outcomes = _run_reduce_phase_faulted(
                    fs, conf, tasks, observer, reduce_span, cost_model,
                    executor, workers, fctx,
                )
                results = [
                    (outcome.result, outcome.counters)
                    for outcome in reduce_outcomes
                ]
            elif executor == "serial":
                results = [
                    _run_reduce_task(
                        conf, index, groups, observer, reduce_span, cost_model,
                        beat=_task_beat(live, conf.name, "reduce", index, "serial"),
                    )
                    for index, groups in enumerate(tasks)
                ]
            elif executor == "threads":
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _run_reduce_task,
                            conf,
                            index,
                            groups,
                            observer,
                            reduce_span,
                            cost_model,
                            beat=_task_beat(
                                live, conf.name, "reduce", index, "threads"
                            ),
                        )
                        for index, groups in enumerate(tasks)
                    ]
                    results = [future.result() for future in futures]
            elif columnar_kind is not None:
                results = _run_reduce_tasks_processes_columnar(
                    conf, tasks, observer, reduce_span, cost_model, workers,
                    store,
                )
            else:
                results = _run_reduce_tasks_processes(
                    conf, tasks, observer, reduce_span, cost_model, workers
                )
        finally:
            if observer is not None and reduce_span is not None:
                observer.end_span(reduce_span)
            if live is not None:
                live.phase_finished(conf.name, "reduce")

        total_output = 0
        task_outputs: List[int] = []
        task_comparisons: List[int] = []
        for index, (records, task_counters) in enumerate(results):
            counters.merge(task_counters)
            if reduce_outcomes is not None:
                outcome = reduce_outcomes[index]
                counters.merge(outcome.fault_counters)
                # Commit: promote the winning attempt's staged file.
                fs.promote_attempt(conf.output, index, outcome.attempt)
            else:
                fs.append_partition(conf.output, index, records)
            total_output += len(records)
            task_outputs.append(len(records))
            task_comparisons.append(task_counters.value("work", "comparisons"))

        _record_job_metrics(
            observer, conf, pairs, tasks, logical_loads, counters
        )
        result = JobResult(
            name=conf.name,
            counters=counters,
            reduce_task_loads=reduce_task_loads,
            logical_reducer_loads=dict(logical_loads),
            output=conf.output,
            output_records=total_output,
            reduce_task_outputs=task_outputs,
            reduce_task_comparisons=task_comparisons,
            data_plane="columnar" if columnar_kind is not None else "records",
            data_plane_fallback=plane_fallback,
        )
        if observer is not None and job_span is not None:
            job_span.counters = counters.snapshot()
            job_span.annotate(
                output_records=total_output,
                shuffled_records=len(pairs),
                reduce_task_loads=list(reduce_task_loads),
            )
            if cost_model is not None:
                job_span.annotate(modelled_seconds=cost_model.job_time(result))
            observer.record_job(result)
        return result
    finally:
        if live is not None:
            live.job_finished(conf.name)
        if observer is not None and job_span is not None:
            observer.end_span(job_span)
