"""Job execution engines.

:func:`run_job` executes one configured job against a file system.  Two
executors are available:

* ``"serial"`` — deterministic single-threaded execution (default; what
  tests and benchmarks use — parallelism is *simulated* by the cost model,
  which is how the paper's cluster numbers are reproduced in shape).
* ``"threads"`` — reduce tasks run on a thread pool.  Useful for smoke-
  testing that task code is self-contained; CPython's GIL means this is
  about realism of the execution model, not speed.

Execution follows Hadoop's lifecycle: per-input map tasks (setup, map each
record, cleanup), optional per-map-task combiner, sort-shuffle, reduce
tasks (setup, reduce each key group in key order, cleanup), each reduce
task writing one ``part-*`` file under the job's output path.
"""

from __future__ import annotations

from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Hashable, List, Tuple

from repro.errors import MapReduceError
from repro.mapreduce.counters import Counters
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import JobConf, JobResult
from repro.mapreduce.shuffle import shuffle
from repro.mapreduce.task import MapContext, ReduceContext, Reducer

__all__ = ["run_job"]


def _run_map_phase(
    fs: FileSystem, conf: JobConf, counters: Counters
) -> List[Tuple[Hashable, Any]]:
    """Run all map tasks; returns the intermediate pair stream."""
    pairs: List[Tuple[Hashable, Any]] = []
    for spec in conf.inputs:
        context = MapContext(counters, spec.path)
        spec.mapper.setup(context)
        for record in fs.read_dir(spec.path):
            counters.increment("framework", "map_input_records")
            spec.mapper.map(record, context)
        spec.mapper.cleanup(context)
        task_pairs = context.drain()
        counters.increment("framework", "map_output_records", len(task_pairs))
        if conf.combiner is not None:
            task_pairs = _run_combiner(conf.combiner, task_pairs, counters)
        pairs.extend(task_pairs)
    return pairs


def _run_combiner(
    combiner: Reducer,
    pairs: List[Tuple[Hashable, Any]],
    counters: Counters,
) -> List[Tuple[Hashable, Any]]:
    """Apply a combiner to one map task's output, Hadoop style: the
    combiner reduces each key's values locally and re-emits pairs under
    the same key."""
    counters.increment("framework", "combine_input_records", len(pairs))
    grouped: Dict[Hashable, List[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    combined: List[Tuple[Hashable, Any]] = []
    context = ReduceContext(counters, task_index=-1)
    combiner.setup(context)
    for key in sorted(grouped.keys(), key=repr):
        combiner.reduce(key, grouped[key], context)
        for record in context.drain():
            combined.append((key, record))
    combiner.cleanup(context)
    counters.increment("framework", "combine_output_records", len(combined))
    return combined


def _run_reduce_task(
    conf: JobConf,
    task_index: int,
    groups: List[Tuple[Hashable, List[Any]]],
) -> Tuple[List[Any], Counters]:
    """Run one physical reduce task over its key groups."""
    counters = Counters()
    context = ReduceContext(counters, task_index)
    conf.reducer.setup(context)
    output: List[Any] = []
    for key, values in groups:
        counters.increment("framework", "reduce_input_groups")
        counters.increment("framework", "reduce_input_records", len(values))
        conf.reducer.reduce(key, values, context)
        output.extend(context.drain())
    conf.reducer.cleanup(context)
    output.extend(context.drain())
    counters.increment("framework", "reduce_output_records", len(output))
    return output, counters


def run_job(fs: FileSystem, conf: JobConf, executor: str = "serial") -> JobResult:
    """Execute one MapReduce job and return its measurements.

    Parameters
    ----------
    fs:
        The file system holding the inputs; outputs are written back to it.
    conf:
        The job configuration.
    executor:
        ``"serial"`` or ``"threads"``.
    """
    if conf.num_reduce_tasks < 1:
        raise MapReduceError("a job needs at least one reduce task")
    if not conf.inputs:
        raise MapReduceError(f"job {conf.name!r} has no inputs")
    counters = Counters()

    pairs = _run_map_phase(fs, conf, counters)
    counters.increment("framework", "shuffle_records", len(pairs))

    logical_loads: Dict[Hashable, int] = defaultdict(int)
    for key, _ in pairs:
        logical_loads[key] += 1

    tasks = shuffle(pairs, conf.num_reduce_tasks, conf.partitioner)
    reduce_task_loads = [
        sum(len(values) for _, values in groups) for groups in tasks
    ]

    if executor == "serial":
        results = [
            _run_reduce_task(conf, index, groups)
            for index, groups in enumerate(tasks)
        ]
    elif executor == "threads":
        with ThreadPoolExecutor() as pool:
            futures = [
                pool.submit(_run_reduce_task, conf, index, groups)
                for index, groups in enumerate(tasks)
            ]
            results = [future.result() for future in futures]
    else:
        raise MapReduceError(f"unknown executor {executor!r}")

    total_output = 0
    task_outputs: List[int] = []
    task_comparisons: List[int] = []
    for index, (records, task_counters) in enumerate(results):
        counters.merge(task_counters)
        fs.append_partition(conf.output, index, records)
        total_output += len(records)
        task_outputs.append(len(records))
        task_comparisons.append(task_counters.value("work", "comparisons"))

    return JobResult(
        name=conf.name,
        counters=counters,
        reduce_task_loads=reduce_task_loads,
        logical_reducer_loads=dict(logical_loads),
        output=conf.output,
        output_records=total_output,
        reduce_task_outputs=task_outputs,
        reduce_task_comparisons=task_comparisons,
    )
