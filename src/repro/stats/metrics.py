"""Load-balance and communication metrics.

The paper's Section 7 argues entirely in terms of per-reducer load
distributions (Figure 4) and intermediate pair counts (Tables 1-3).  This
module turns the simulator's raw measurements into the summary statistics
the benchmark harness tabulates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

__all__ = ["LoadBalance", "load_balance", "jain_fairness"]


def jain_fairness(loads: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly balanced, 1/n = one hot spot.

    ``J = (sum x)^2 / (n * sum x^2)`` over the per-reducer loads.
    """
    values = [x for x in loads if x >= 0]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(x * x for x in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class LoadBalance:
    """Summary of a per-reducer load distribution."""

    reducers: int
    total: int
    max_load: int
    mean_load: float
    stdev: float
    imbalance: float  #: max / mean (1.0 = perfect)
    fairness: float  #: Jain's index

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LoadBalance(n={self.reducers}, max={self.max_load}, "
            f"mean={self.mean_load:.1f}, imbalance={self.imbalance:.2f}, "
            f"jain={self.fairness:.3f})"
        )


def load_balance(loads: Mapping[Hashable, int]) -> LoadBalance:
    """Summarise a logical-reducer load mapping."""
    values = list(loads.values())
    n = len(values)
    if n == 0:
        return LoadBalance(0, 0, 0, 0.0, 0.0, 1.0, 1.0)
    total = sum(values)
    mean = total / n
    variance = sum((v - mean) ** 2 for v in values) / n
    max_load = max(values)
    return LoadBalance(
        reducers=n,
        total=total,
        max_load=max_load,
        mean_load=mean,
        stdev=math.sqrt(variance),
        imbalance=(max_load / mean) if mean > 0 else 1.0,
        fairness=jain_fairness(values),
    )
