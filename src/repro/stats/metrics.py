"""Load-balance and communication metrics.

The paper's Section 7 argues entirely in terms of per-reducer load
distributions (Figure 4) and intermediate pair counts (Tables 1-3).  This
module turns the simulator's raw measurements into the summary statistics
the benchmark harness tabulates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

__all__ = [
    "LoadBalance",
    "load_balance",
    "jain_fairness",
    "gini",
    "percentile",
]


def gini(loads: Sequence[float]) -> float:
    """Gini coefficient of a load distribution: 0 = perfectly even,
    →1 = all load on one reducer.

    Uses the sorted-rank identity
    ``G = (2 * sum(i * x_i) / (n * sum x)) - (n + 1) / n``
    with 1-based ranks over the ascending-sorted loads.
    """
    values = sorted(x for x in loads if x >= 0)
    n = len(values)
    total = sum(values)
    if n == 0 or total == 0:
        return 0.0
    weighted = sum(rank * value for rank, value in enumerate(values, start=1))
    return (2.0 * weighted) / (n * total) - (n + 1) / n


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``.

    Deterministic and interpolation-free, so the same loads always give
    the same p50/p95 regardless of platform float quirks.
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return float(ordered[max(0, min(len(ordered) - 1, rank - 1))])


def jain_fairness(loads: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly balanced, 1/n = one hot spot.

    ``J = (sum x)^2 / (n * sum x^2)`` over the per-reducer loads.
    """
    values = [x for x in loads if x >= 0]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(x * x for x in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class LoadBalance:
    """Summary of a per-reducer load distribution."""

    reducers: int
    total: int
    max_load: int
    mean_load: float
    stdev: float
    imbalance: float  #: max / mean (1.0 = perfect)
    fairness: float  #: Jain's index
    gini: float = 0.0  #: Gini coefficient (0 = even)
    p50: float = 0.0  #: median per-reducer load
    p95: float = 0.0  #: 95th-percentile per-reducer load

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LoadBalance(n={self.reducers}, max={self.max_load}, "
            f"mean={self.mean_load:.1f}, p95={self.p95:.0f}, "
            f"imbalance={self.imbalance:.2f}, gini={self.gini:.3f}, "
            f"jain={self.fairness:.3f})"
        )


def load_balance(loads: Mapping[Hashable, int]) -> LoadBalance:
    """Summarise a logical-reducer load mapping."""
    values = list(loads.values())
    n = len(values)
    if n == 0:
        return LoadBalance(0, 0, 0, 0.0, 0.0, 1.0, 1.0)
    total = sum(values)
    mean = total / n
    variance = sum((v - mean) ** 2 for v in values) / n
    max_load = max(values)
    return LoadBalance(
        reducers=n,
        total=total,
        max_load=max_load,
        mean_load=mean,
        stdev=math.sqrt(variance),
        imbalance=(max_load / mean) if mean > 0 else 1.0,
        fairness=jain_fairness(values),
        gini=gini(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
    )
