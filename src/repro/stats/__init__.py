"""Measurement post-processing: load-balance statistics and the ASCII
table renderer used by the benchmark harness."""

from repro.stats.metrics import LoadBalance, jain_fairness, load_balance
from repro.stats.reporting import human_count, human_seconds, render_table

__all__ = [
    "LoadBalance",
    "human_count",
    "human_seconds",
    "jain_fairness",
    "load_balance",
    "render_table",
]
