"""Measurement post-processing: load-balance statistics and the ASCII
table renderer used by the benchmark harness."""

from repro.stats.metrics import (
    LoadBalance,
    gini,
    jain_fairness,
    load_balance,
    percentile,
)
from repro.stats.reporting import human_count, human_seconds, render_table

__all__ = [
    "LoadBalance",
    "gini",
    "human_count",
    "human_seconds",
    "jain_fairness",
    "load_balance",
    "percentile",
    "render_table",
]
