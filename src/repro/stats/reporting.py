"""ASCII table rendering for the benchmark harness.

Keeps the harness output close to the paper's tables: fixed columns,
human-scaled numbers (K/M suffixes), and a caption line naming the
reproduced table/figure.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["human_count", "human_seconds", "render_table"]


def human_count(value: float) -> str:
    """1234567 -> '1.2M', 45300 -> '45.3K', 987 -> '987'."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 1_000:
        return f"{value / 1_000:.1f}K"
    return f"{value:.0f}" if float(value).is_integer() else f"{value:.2f}"


def human_seconds(seconds: float) -> str:
    """Modelled seconds as mm:ss (or h:mm:ss beyond an hour)."""
    total = int(round(seconds))
    hours, rest = divmod(total, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes:02d}:{secs:02d}"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a caption."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.rjust(widths[index]) for index, cell in enumerate(cells)
        )

    divider = "-+-".join("-" * w for w in widths)
    lines = [title, fmt(list(headers)), divider]
    lines.extend(fmt(row) for row in str_rows)
    if note:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
