"""Join query model: conditions, queries, and query-class detection.

A condition joins two relation attributes under one Allen predicate.  The
paper's four query classes (Section 1) are detected automatically:

* ``COLOCATION`` — single interval attribute per relation, only colocation
  predicates;
* ``SEQUENCE`` — single attribute, only ``before``/``after``;
* ``HYBRID`` — single attribute, both kinds;
* ``GENERAL`` — anything involving multiple attributes (including
  real-valued attributes via their point-interval embedding).

Terms may be written ``"R1"`` (the default attribute ``I``) or ``"R1.A"``.

Examples
--------
>>> q = IntervalJoinQuery.parse(
...     [("R1", "overlaps", "R2"), ("R2", "contains", "R3")]
... )
>>> q.query_class.name
'COLOCATION'
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence, Tuple, Union

from repro.errors import QueryError
from repro.intervals.allen import AllenPredicate, get_predicate
from repro.core.schema import DEFAULT_ATTRIBUTE

__all__ = ["Term", "JoinCondition", "QueryClass", "IntervalJoinQuery"]


@dataclass(frozen=True, order=True)
class Term:
    """A ``relation.attribute`` reference."""

    relation: str
    attribute: str = DEFAULT_ATTRIBUTE

    @classmethod
    def parse(cls, text: Union[str, "Term"]) -> "Term":
        """Parse ``"R1"`` or ``"R1.A"`` (at most one dot)."""
        if isinstance(text, Term):
            return text
        parts = text.split(".")
        if len(parts) == 1:
            return cls(parts[0])
        if len(parts) == 2 and all(parts):
            return cls(parts[0], parts[1])
        raise QueryError(f"malformed term {text!r}; expected 'Rel' or 'Rel.Attr'")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.relation}.{self.attribute}"


@dataclass(frozen=True)
class JoinCondition:
    """One predicate between two terms: ``left P right``."""

    left: Term
    predicate: AllenPredicate
    right: Term

    def __post_init__(self) -> None:
        if self.left.relation == self.right.relation:
            raise QueryError(
                f"condition joins a relation to itself: {self.left} "
                f"{self.predicate.name} {self.right}; alias the relation "
                "for self-joins"
            )

    @classmethod
    def parse(
        cls,
        left: Union[str, Term],
        predicate: Union[str, AllenPredicate],
        right: Union[str, Term],
    ) -> "JoinCondition":
        return cls(Term.parse(left), get_predicate(predicate), Term.parse(right))

    @property
    def is_sequence(self) -> bool:
        return self.predicate.is_sequence

    @property
    def is_colocation(self) -> bool:
        return self.predicate.is_colocation

    def as_triple(self) -> Tuple[str, AllenPredicate, str]:
        """The condition keyed by relation names only (single-attribute
        queries), as consumed by :mod:`repro.intervals.sets`."""
        return (self.left.relation, self.predicate, self.right.relation)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.left} {self.predicate.name} {self.right}"


class QueryClass(enum.Enum):
    """The paper's four-way query taxonomy (Section 1)."""

    COLOCATION = "colocation"
    SEQUENCE = "sequence"
    HYBRID = "hybrid"
    GENERAL = "general"


class IntervalJoinQuery:
    """A multi-way interval join query.

    Parameters
    ----------
    conditions:
        The join conditions.  The relation set is inferred from them; an
        optional explicit ``relations`` order fixes output-tuple column
        order (default: first-appearance order).
    """

    def __init__(
        self,
        conditions: Sequence[JoinCondition],
        relations: Sequence[str] = (),
    ) -> None:
        if not conditions:
            raise QueryError("a join query needs at least one condition")
        self.conditions: Tuple[JoinCondition, ...] = tuple(conditions)

        appearing: List[str] = []
        for cond in self.conditions:
            for name in (cond.left.relation, cond.right.relation):
                if name not in appearing:
                    appearing.append(name)
        if relations:
            missing = set(appearing) - set(relations)
            if missing:
                raise QueryError(
                    f"explicit relation list omits {sorted(missing)}"
                )
            self.relations: Tuple[str, ...] = tuple(dict.fromkeys(relations))
        else:
            self.relations = tuple(appearing)

        self._check_connected()

    # ------------------------------------------------------------------
    @classmethod
    def parse(
        cls,
        conditions: Iterable[
            Tuple[Union[str, Term], Union[str, AllenPredicate], Union[str, Term]]
        ],
        relations: Sequence[str] = (),
    ) -> "IntervalJoinQuery":
        """Build a query from ``(left, predicate, right)`` triples."""
        return cls(
            [JoinCondition.parse(l, p, r) for l, p, r in conditions],
            relations=relations,
        )

    # ------------------------------------------------------------------
    def _check_connected(self) -> None:
        """The join graph over relations must be connected — otherwise the
        query is a cross product of independent joins, which none of the
        paper's algorithms (nor its problem statement) covers."""
        if len(self.relations) <= 1:
            return
        adjacency = {name: set() for name in self.relations}
        for cond in self.conditions:
            adjacency[cond.left.relation].add(cond.right.relation)
            adjacency[cond.right.relation].add(cond.left.relation)
        seen = {self.relations[0]}
        frontier = [self.relations[0]]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        if seen != set(self.relations):
            raise QueryError(
                "query join graph is disconnected: "
                f"{sorted(set(self.relations) - seen)} unreachable"
            )

    # ------------------------------------------------------------------
    @property
    def terms(self) -> Tuple[Term, ...]:
        out: List[Term] = []
        for cond in self.conditions:
            for term in (cond.left, cond.right):
                if term not in out:
                    out.append(term)
        return tuple(out)

    def attributes_of(self, relation: str) -> Tuple[str, ...]:
        """The attributes of ``relation`` referenced by this query."""
        out: List[str] = []
        for term in self.terms:
            if term.relation == relation and term.attribute not in out:
                out.append(term.attribute)
        return tuple(out)

    @property
    def is_single_attribute(self) -> bool:
        """True when every relation joins through exactly one attribute and
        all those attributes play the role of one global time axis (the
        Sections 4-8 setting)."""
        return all(len(self.attributes_of(name)) == 1 for name in self.relations)

    @property
    def query_class(self) -> QueryClass:
        has_colocation = any(c.is_colocation for c in self.conditions)
        has_sequence = any(c.is_sequence for c in self.conditions)
        if not self.is_single_attribute:
            return QueryClass.GENERAL
        if has_colocation and has_sequence:
            return QueryClass.HYBRID
        if has_sequence:
            return QueryClass.SEQUENCE
        return QueryClass.COLOCATION

    # ------------------------------------------------------------------
    def conditions_as_triples(self) -> List[Tuple[str, AllenPredicate, str]]:
        """Conditions keyed by relation name (single-attribute queries)."""
        if not self.is_single_attribute:
            raise QueryError(
                "relation-keyed conditions are only defined for "
                "single-attribute queries"
            )
        return [cond.as_triple() for cond in self.conditions]

    def validate_against(self, data: Mapping[str, "object"]) -> None:
        """Check every query relation is present in a data mapping."""
        missing = [name for name in self.relations if name not in data]
        if missing:
            raise QueryError(f"data missing relations: {missing}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " and ".join(str(cond) for cond in self.conditions)
