"""Relations and rows.

A :class:`Row` is an immutable record with a row id and named attribute
values; attribute values are :class:`~repro.intervals.interval.Interval`
instances or plain numbers (the latter are *real-valued attributes*, which
Section 9 of the paper embeds as length-0 intervals).  A :class:`Relation`
is a named, ordered collection of rows sharing an attribute schema.

Row ids are unique within a relation, so an output tuple is fully
identified by the rids of its member rows in query relation order — the
representation the test suite uses to compare algorithm output against the
reference join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import QueryError
from repro.intervals.interval import Interval, point

__all__ = ["Row", "Relation", "DEFAULT_ATTRIBUTE", "AttributeValue"]

#: The attribute name used by single-attribute relations built from bare
#: interval lists (the paper's Sections 4-8 setting).
DEFAULT_ATTRIBUTE = "I"

AttributeValue = Union[Interval, float, int]


@dataclass(frozen=True)
class Row:
    """One immutable tuple of a relation.

    Attributes
    ----------
    rid:
        Row id, unique within the owning relation.
    data:
        Attribute name/value pairs, stored as a sorted tuple so rows are
        hashable and cheaply comparable.
    """

    rid: int
    data: Tuple[Tuple[str, AttributeValue], ...]

    @classmethod
    def make(cls, rid: int, values: Mapping[str, AttributeValue]) -> "Row":
        """Build a row from a mapping of attribute values."""
        return cls(rid, tuple(sorted(values.items())))

    # ------------------------------------------------------------------
    def value(self, attribute: str) -> AttributeValue:
        """The raw value of ``attribute``."""
        for name, value in self.data:
            if name == attribute:
                return value
        raise QueryError(f"row {self.rid} has no attribute {attribute!r}")

    def interval(self, attribute: str) -> Interval:
        """The value of ``attribute`` as an interval.

        Real-valued attributes are returned as the degenerate point
        interval ``[v, v]`` (the Section 9 embedding).
        """
        value = self.value(attribute)
        if isinstance(value, Interval):
            return value
        return point(float(value))

    @property
    def attributes(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.data)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{name}={value}" for name, value in self.data)
        return f"Row#{self.rid}({body})"


class Relation:
    """A named, ordered collection of rows with a fixed attribute schema."""

    def __init__(self, name: str, rows: Iterable[Row]):
        self.name = name
        self.rows: List[Row] = list(rows)
        if self.rows:
            schema = self.rows[0].attributes
            seen_rids = set()
            for row in self.rows:
                if row.attributes != schema:
                    raise QueryError(
                        f"relation {name!r}: row {row.rid} schema "
                        f"{row.attributes} differs from {schema}"
                    )
                if row.rid in seen_rids:
                    raise QueryError(
                        f"relation {name!r}: duplicate row id {row.rid}"
                    )
                seen_rids.add(row.rid)
            self.attributes: Tuple[str, ...] = schema
        else:
            self.attributes = ()

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def of_intervals(
        cls,
        name: str,
        intervals: Iterable[Interval],
        attribute: str = DEFAULT_ATTRIBUTE,
    ) -> "Relation":
        """A single-interval-attribute relation from bare intervals."""
        rows = [
            Row.make(rid, {attribute: interval})
            for rid, interval in enumerate(intervals)
        ]
        return cls(name, rows)

    @classmethod
    def of_records(
        cls, name: str, records: Iterable[Mapping[str, AttributeValue]]
    ) -> "Relation":
        """A relation from attribute mappings; rids assigned by position."""
        rows = [Row.make(rid, record) for rid, record in enumerate(records)]
        return cls(name, rows)

    def alias(self, name: str) -> "Relation":
        """The same rows under another relation name (for self-joins)."""
        return Relation(name, self.rows)

    # ------------------------------------------------------------------
    def intervals(self, attribute: str = DEFAULT_ATTRIBUTE) -> List[Interval]:
        """All values of one attribute, as intervals, in row order."""
        return [row.interval(attribute) for row in self.rows]

    def row_by_id(self, rid: int) -> Row:
        for row in self.rows:
            if row.rid == rid:
                return row
        raise QueryError(f"relation {self.name!r} has no row id {rid}")

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, {len(self.rows)} rows)"
