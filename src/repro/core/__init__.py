"""The paper's primary contribution: multi-way interval join processing
on MapReduce — query model, planner, and the four algorithms plus their
baselines."""

from repro.core.executor import execute
from repro.core.graph import Component, JoinGraph
from repro.core.local import LocalJoiner
from repro.core.planner import ALGORITHMS, Plan, choose_algorithm, plan
from repro.core.query import IntervalJoinQuery, JoinCondition, QueryClass, Term
from repro.core.reference import reference_join
from repro.core.results import ExecutionMetrics, JoinResult
from repro.core.schema import DEFAULT_ATTRIBUTE, Relation, Row
from repro.core.validation import (
    ValidationError,
    assert_equivalent,
    validate_result,
)
from repro.core.tuning import (
    ShareRecommendation,
    TuningReport,
    profile_data,
    recommend_grid,
    recommend_partitions,
    recommend_shares,
)

__all__ = [
    "ALGORITHMS",
    "Component",
    "DEFAULT_ATTRIBUTE",
    "ExecutionMetrics",
    "IntervalJoinQuery",
    "JoinCondition",
    "JoinGraph",
    "JoinResult",
    "LocalJoiner",
    "Plan",
    "QueryClass",
    "Relation",
    "Row",
    "ShareRecommendation",
    "TuningReport",
    "profile_data",
    "recommend_grid",
    "recommend_partitions",
    "recommend_shares",
    "Term",
    "choose_algorithm",
    "execute",
    "plan",
    "reference_join",
    "ValidationError",
    "assert_equivalent",
    "validate_result",
]
