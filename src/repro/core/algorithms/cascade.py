"""2-way Cascade — the multi-cycle baseline (Section 6).

Processes a multi-way query as a series of 2-way joins, one MapReduce job
each, materialising every intermediate result on the (simulated)
distributed file system — which is exactly why the paper finds it slow:
each cycle re-reads and re-shuffles increasingly large intermediates.

Faithful to the paper's experimental setup (Section 7.1), each step's
routing follows the step predicate's kind:

* a **colocation** routing condition uses the Figure-1 operators
  (split the earlier side, project the later);
* a **sequence** routing condition uses a *2-dimensional All-Matrix*: the
  intermediate result and the new relation each form one grid dimension
  and only consistent cells receive data ("Both 2-way joins in 2-way Cd
  are executed using 2D versions of All-Matrix").

Intermediate records are *partial tuples* — tuples of ``(relation, row)``
pairs for the relations bound so far.  Every condition joining the new
relation to any bound relation is evaluated in the step's reducer, so the
cascade is correct for arbitrary (including cyclic) join graphs.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.columnar.batch import ColumnValues, reduce_columns
from repro.core.algorithms.base import JoinAlgorithm, input_path
from repro.core.query import IntervalJoinQuery, JoinCondition
from repro.core.results import JoinResult
from repro.core.schema import Relation, Row
from repro.intervals.allen import MapOperator
from repro.intervals.partitioning import Partitioning
from repro.obs.recorder import TraceRecorder
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.shuffle import RoundRobinKeyPartitioner
from repro.mapreduce.task import MapContext, Mapper, ReduceContext, Reducer

__all__ = ["TwoWayCascade"]

#: A partial tuple: ``((relation, row), ...)`` for the bound relations.
PartialTuple = Tuple[Tuple[str, Row], ...]

_NEW_SIDE = "__new__"
_BOUND_SIDE = "__bound__"


def _binding_order(query: IntervalJoinQuery) -> List[str]:
    """A connected relation order (each new relation shares a condition
    with an already-bound one)."""
    remaining = list(query.relations)
    order = [remaining.pop(0)]
    while remaining:
        for candidate in list(remaining):
            touches_bound = any(
                (
                    cond.left.relation == candidate
                    and cond.right.relation in order
                )
                or (
                    cond.right.relation == candidate
                    and cond.left.relation in order
                )
                for cond in query.conditions
            )
            if touches_bound:
                remaining.remove(candidate)
                order.append(candidate)
                break
        else:  # pragma: no cover - queries are validated connected
            order.append(remaining.pop(0))
    return order


def _step_conditions(
    query: IntervalJoinQuery, bound: Sequence[str], new: str
) -> List[JoinCondition]:
    """All conditions joining ``new`` to the bound set."""
    bound_set = set(bound)
    return [
        cond
        for cond in query.conditions
        if (cond.left.relation == new and cond.right.relation in bound_set)
        or (cond.right.relation == new and cond.left.relation in bound_set)
    ]


def _routing_condition(step_conditions: Sequence[JoinCondition]) -> JoinCondition:
    """Prefer a colocation condition for routing (cheaper: split beats
    replicate / grid fan-out)."""
    for cond in step_conditions:
        if cond.is_colocation:
            return cond
    return step_conditions[0]


def _cell_tables(partitioning: Partitioning, by_coord):
    """Dense per-coordinate grid fan-out tables.

    Returns ``(codes, counts, offsets)``: for coordinate ``q`` the cells
    of ``by_coord[q]`` (insertion order, as the records plane emits them)
    are ``codes[offsets[q] : offsets[q] + counts[q]]`` as packed int64
    cell codes.
    """
    import numpy as np

    from repro.columnar.codec import CellKeyCodec

    n = len(partitioning)
    counts = np.zeros(n, dtype=np.int64)
    offsets = np.zeros(n, dtype=np.int64)
    codes: List[int] = []
    for coord in range(n):
        cells = by_coord.get(coord, ())
        offsets[coord] = len(codes)
        counts[coord] = len(cells)
        codes.extend(CellKeyCodec.encode_cell(cell) for cell in cells)
    return np.asarray(codes, dtype=np.int64), counts, offsets


def _grid_map_block(partitioning: Partitioning, tables, starts, tag: str):
    """Vectorised grid-mapper emission: each record fans out to the cells
    pinned at its projected coordinate, in per-coordinate insertion order
    (record-major, matching the records plane's per-record loops)."""
    import numpy as np

    from repro.columnar.batch import MapBlock

    codes, counts, offsets = tables
    q = partitioning.locate_array(starts)
    per = counts[q]
    total = int(per.sum())
    row_idx = np.repeat(np.arange(len(q), dtype=np.int64), per)
    run_offsets = np.cumsum(per) - per
    intra = np.arange(total, dtype=np.int64) - np.repeat(run_offsets, per)
    key_codes = codes[np.repeat(offsets[q], per) + intra]
    return MapBlock.single_tag(key_codes, row_idx, tag)


class _RowSideMapper(Mapper):
    """Route a base relation's rows with one Figure-1 operator."""

    columnar_key_kind = "int"

    def __init__(
        self,
        relation: str,
        attribute: str,
        partitioning: Partitioning,
        operator: MapOperator,
        side: str,
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        self.partitioning = partitioning
        self.operator = operator
        self.side = side

    def map(self, record: Row, context: MapContext) -> None:
        interval = record.interval(self.attribute)
        payload = (self.side, (self.relation, record))
        if self.operator is MapOperator.PROJECT:
            context.emit(self.partitioning.project(interval), payload)
            return
        if self.operator is MapOperator.SPLIT:
            targets = list(self.partitioning.split(interval))
        else:
            targets = list(self.partitioning.replicate(interval))
            context.counters.increment("join", "replicated_intervals")
            context.counters.increment("join", "replicated_pairs", len(targets))
        for index in targets:
            context.emit(index, payload)

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        return True

    def encode_intervals(self, records):
        import numpy as np

        starts = np.empty(len(records), dtype=np.float64)
        ends = np.empty(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            interval = record.interval(self.attribute)
            starts[i] = interval.start
            ends[i] = interval.end
        return starts, ends

    def map_columns(self, starts, ends, records):
        from repro.columnar.batch import MapBlock, operator_map_columns

        key_codes, row_idx, counters = operator_map_columns(
            self.partitioning, self.operator, starts, ends
        )
        return MapBlock.single_tag(key_codes, row_idx, self.side, counters)

    def value_of(self, record: Row):
        return (self.side, (self.relation, record))


class _PartialSideMapper(Mapper):
    """Route partial tuples by one bound member's interval."""

    columnar_key_kind = "int"

    def __init__(
        self,
        member_relation: str,
        attribute: str,
        partitioning: Partitioning,
        operator: MapOperator,
    ) -> None:
        self.member_relation = member_relation
        self.attribute = attribute
        self.partitioning = partitioning
        self.operator = operator

    def _member_interval(self, record: PartialTuple):
        for relation, row in record:
            if relation == self.member_relation:
                return row.interval(self.attribute)
        raise PlanningError(
            f"partial tuple missing member {self.member_relation!r}"
        )

    def map(self, record: PartialTuple, context: MapContext) -> None:
        interval = self._member_interval(record)
        payload = (_BOUND_SIDE, record)
        if self.operator is MapOperator.PROJECT:
            context.emit(self.partitioning.project(interval), payload)
            return
        if self.operator is MapOperator.SPLIT:
            targets = list(self.partitioning.split(interval))
        else:
            targets = list(self.partitioning.replicate(interval))
            context.counters.increment("join", "replicated_intervals")
            context.counters.increment("join", "replicated_pairs", len(targets))
        for index in targets:
            context.emit(index, payload)

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        return True

    def encode_intervals(self, records):
        import numpy as np

        starts = np.empty(len(records), dtype=np.float64)
        ends = np.empty(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            interval = self._member_interval(record)
            starts[i] = interval.start
            ends[i] = interval.end
        return starts, ends

    def map_columns(self, starts, ends, records):
        from repro.columnar.batch import MapBlock, operator_map_columns

        key_codes, row_idx, counters = operator_map_columns(
            self.partitioning, self.operator, starts, ends
        )
        return MapBlock.single_tag(key_codes, row_idx, _BOUND_SIDE, counters)

    def value_of(self, record: PartialTuple):
        return (_BOUND_SIDE, record)


class _GridRowMapper(Mapper):
    """Sequence step, new-relation side: pin this side's grid dimension."""

    columnar_key_kind = "cell"

    def __init__(
        self,
        relation: str,
        attribute: str,
        partitioning: Partitioning,
        dim: int,
        cells: Sequence[Tuple[int, int]],
        side: str,
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        self.partitioning = partitioning
        self.dim = dim
        self.by_coord: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for cell in cells:
            self.by_coord[cell[dim]].append(cell)
        self.side = side
        self._tables = None

    def map(self, record: Row, context: MapContext) -> None:
        q = self.partitioning.project(record.interval(self.attribute))
        for cell in self.by_coord.get(q, ()):
            context.emit(cell, (self.side, (self.relation, record)))

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        return True

    def encode_intervals(self, records):
        import numpy as np

        starts = np.empty(len(records), dtype=np.float64)
        ends = np.empty(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            interval = record.interval(self.attribute)
            starts[i] = interval.start
            ends[i] = interval.end
        return starts, ends

    def map_columns(self, starts, ends, records):
        if self._tables is None:
            self._tables = _cell_tables(self.partitioning, self.by_coord)
        return _grid_map_block(
            self.partitioning, self._tables, starts, self.side
        )

    def value_of(self, record: Row):
        return (self.side, (self.relation, record))


class _GridPartialMapper(Mapper):
    """Sequence step, intermediate side: pin dimension by member start."""

    columnar_key_kind = "cell"

    def __init__(
        self,
        member_relation: str,
        attribute: str,
        partitioning: Partitioning,
        dim: int,
        cells: Sequence[Tuple[int, int]],
    ) -> None:
        self.member_relation = member_relation
        self.attribute = attribute
        self.partitioning = partitioning
        self.dim = dim
        self.by_coord: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for cell in cells:
            self.by_coord[cell[dim]].append(cell)
        self._tables = None

    def _member_interval(self, record: PartialTuple):
        for relation, row in record:
            if relation == self.member_relation:
                return row.interval(self.attribute)
        raise PlanningError(  # pragma: no cover - structurally impossible
            "partial tuple missing routing member"
        )

    def map(self, record: PartialTuple, context: MapContext) -> None:
        interval = self._member_interval(record)
        q = self.partitioning.project(interval)
        for cell in self.by_coord.get(q, ()):
            context.emit(cell, (_BOUND_SIDE, record))

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        return True

    def encode_intervals(self, records):
        import numpy as np

        starts = np.empty(len(records), dtype=np.float64)
        ends = np.empty(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            interval = self._member_interval(record)
            starts[i] = interval.start
            ends[i] = interval.end
        return starts, ends

    def map_columns(self, starts, ends, records):
        if self._tables is None:
            self._tables = _cell_tables(self.partitioning, self.by_coord)
        return _grid_map_block(
            self.partitioning, self._tables, starts, _BOUND_SIDE
        )

    def value_of(self, record: PartialTuple):
        return (_BOUND_SIDE, record)


class _StepJoinReducer(Reducer):
    """Join partial tuples (or first-relation rows) with the new relation,
    checking every step condition; exactly-once via the projected /
    pinned side.

    Candidates are generated output-sensitively with a plane sweep on the
    routing condition (the cascade's cost should come from re-reading and
    re-shuffling intermediates, not from a needlessly quadratic local
    join), then filtered by the remaining step conditions.
    """

    def __init__(
        self,
        new_relation: str,
        routing: JoinCondition,
        conditions: Sequence[JoinCondition],
        attributes: Mapping[str, str],
    ) -> None:
        self.new_relation = new_relation
        self.routing = routing
        self.conditions = [c for c in conditions if c is not routing]
        self.attributes = dict(attributes)
        if routing.left.relation == new_relation:
            self._member = routing.right.relation
            self._member_attr = routing.right.attribute
            self._new_attr = routing.left.attribute
            self._new_is_left = True
        else:
            self._member = routing.left.relation
            self._member_attr = routing.left.attribute
            self._new_attr = routing.right.attribute
            self._new_is_left = False

    def reduce(
        self, key: Hashable, values: List[Tuple[str, object]], context: ReduceContext
    ) -> None:
        if isinstance(values, ColumnValues):
            reduce_columns(self, key, values, context)
            return
        partials: List[Tuple[object, PartialTuple]] = []
        new_rows: List[Tuple[object, Row]] = []
        for side, payload in values:
            if side == _BOUND_SIDE:
                partial: PartialTuple = payload  # type: ignore[assignment]
                member_row = dict(partial)[self._member]
                partials.append(
                    (member_row.interval(self._member_attr), partial)
                )
            else:
                _, row = payload  # type: ignore[misc]
                new_rows.append((row.interval(self._new_attr), row))

        from repro.intervals.sweep import join_pairs

        predicate = self.routing.predicate
        if self._new_is_left:
            left_items, right_items = new_rows, partials
        else:
            left_items, right_items = partials, new_rows

        def candidates():
            # The routing condition runs through the per-predicate sweep
            # kernels — output-sensitive, so only satisfying pairs are
            # enumerated (and charged as comparisons, mirroring how
            # LocalJoiner charges the pairs it examines).
            for litem, ritem in join_pairs(left_items, right_items, predicate):
                context.counters.increment("work", "comparisons")
                if self._new_is_left:
                    yield ritem, litem
                else:
                    yield litem, ritem

        for (_, partial), (_, row) in candidates():
            members = dict(partial)
            members[self.new_relation] = row
            ok = True
            for cond in self.conditions:
                context.counters.increment("work", "comparisons")
                left = members[cond.left.relation].interval(
                    cond.left.attribute
                )
                right = members[cond.right.relation].interval(
                    cond.right.attribute
                )
                if not cond.predicate.holds(left, right):
                    ok = False
                    break
            if ok:
                context.emit(partial + ((self.new_relation, row),))

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        # Residual (non-routing) conditions read arbitrary member
        # attributes, which the routing columns do not carry.
        return not self.conditions

    def columnar_outputs(self, key, values: ColumnValues, counters):
        from repro.intervals.sweep import join_pairs

        bound_mask = values.tag_mask(_BOUND_SIDE)
        partials = values.items(bound_mask)
        news = values.items(~bound_mask)
        if self._new_is_left:
            left_items, right_items = news, partials
        else:
            left_items, right_items = partials, news
        for litem, ritem in join_pairs(
            left_items, right_items, self.routing.predicate
        ):
            counters.increment("work", "comparisons")
            if self._new_is_left:
                yield (ritem[1], litem[1])
            else:
                yield (litem[1], ritem[1])

    def materialize_output(self, out, store):
        bound_gid, new_gid = out
        partial: PartialTuple = store.value(bound_gid)[1]
        row = store.value(new_gid)[1][1]
        return partial + ((self.new_relation, row),)


class _WrapMapper(Mapper):
    """Wrap a base relation's rows as 1-member partial tuples (step 0
    bound side)."""

    columnar_key_kind = "int"

    def __init__(
        self,
        relation: str,
        attribute: str,
        partitioning: Partitioning,
        operator: MapOperator,
    ) -> None:
        self._inner = _PartialSideMapper(
            relation, attribute, partitioning, operator
        )
        self.relation = relation

    def map(self, record: Row, context: MapContext) -> None:
        self._inner.map(((self.relation, record),), context)

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        return True

    def encode_intervals(self, records):
        import numpy as np

        starts = np.empty(len(records), dtype=np.float64)
        ends = np.empty(len(records), dtype=np.float64)
        attribute = self._inner.attribute
        for i, record in enumerate(records):
            interval = record.interval(attribute)
            starts[i] = interval.start
            ends[i] = interval.end
        return starts, ends

    def map_columns(self, starts, ends, records):
        # Routing depends only on the encoded endpoints, so the inner
        # mapper's operator logic applies to the raw rows unchanged.
        return self._inner.map_columns(starts, ends, records)

    def value_of(self, record: Row):
        return (_BOUND_SIDE, ((self.relation, record),))


class TwoWayCascade(JoinAlgorithm):
    """The paper's cascade-of-2-way-joins baseline."""

    name = "two_way_cascade"
    columnar_capable = True

    def __init__(self, grid_parts: Optional[int] = None) -> None:
        #: per-dimension partitions of the 2-D grid used for sequence
        #: steps; default sized so consistent cells ~ num_partitions.
        self.grid_parts = grid_parts

    def run(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        *,
        num_partitions: int = 16,
        fs: Optional[FileSystem] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        partitioning: Optional[Partitioning] = None,
        partition_strategy: str = "uniform",
        observer: Optional[TraceRecorder] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> JoinResult:
        if not query.is_single_attribute:
            raise PlanningError(
                "TwoWayCascade handles single-attribute queries"
            )
        file_system, pipeline, parts = self._setup(
            query, data, num_partitions, fs, executor,
            partitioning, partition_strategy,
            observer=observer, cost_model=cost_model, workers=workers,
            faults=faults, max_attempts=max_attempts, speculative=speculative,
            data_plane=data_plane,
        )
        attributes = {
            name: query.attributes_of(name)[0] for name in query.relations
        }
        order = _binding_order(query)
        grid_o = self.grid_parts or max(
            2, math.ceil(math.sqrt(2 * num_partitions))
        )
        grid_partitioning = (
            parts
            if len(parts) == grid_o
            else Partitioning.uniform(parts.t_min, parts.t_max, grid_o)
        )

        current_path: Optional[str] = None
        for step, new in enumerate(order[1:], start=1):
            bound = order[:step]
            step_conditions = _step_conditions(query, bound, new)
            routing = _routing_condition(step_conditions)
            output = f"cascade/step-{step:02d}"
            if routing.is_colocation:
                job = self._colocation_step(
                    query, bound, new, routing, step_conditions,
                    attributes, parts, current_path, output, num_partitions,
                )
            else:
                job = self._sequence_step(
                    query, bound, new, routing, step_conditions,
                    attributes, grid_partitioning, grid_o,
                    current_path, output,
                )
            pipeline.run(job)
            current_path = output

        raw = list(file_system.read_dir(current_path or ""))
        by_relation = {name: index for index, name in enumerate(query.relations)}
        tuples = []
        for partial in raw:
            ordered: List[Optional[Row]] = [None] * len(query.relations)
            for relation, row in partial:
                ordered[by_relation[relation]] = row
            tuples.append(tuple(ordered))
        return self._finish(
            query, pipeline, cost_model, tuples,
            shape={
                "cascade_steps": len(order) - 1,
                "partition_intervals": len(parts),
                "grid_side": grid_o,
            },
        )

    # ------------------------------------------------------------------
    def _bound_member(self, routing: JoinCondition, new: str) -> Tuple[str, str, bool]:
        """(bound relation, its attribute, bound_is_left)."""
        if routing.left.relation == new:
            return routing.right.relation, routing.right.attribute, False
        return routing.left.relation, routing.left.attribute, True

    def _colocation_step(
        self,
        query: IntervalJoinQuery,
        bound: Sequence[str],
        new: str,
        routing: JoinCondition,
        step_conditions: Sequence[JoinCondition],
        attributes: Mapping[str, str],
        parts: Partitioning,
        current_path: Optional[str],
        output: str,
        num_partitions: int,
    ) -> JobConf:
        member, member_attr, bound_is_left = self._bound_member(routing, new)
        bound_op = (
            routing.predicate.left_operator
            if bound_is_left
            else routing.predicate.right_operator
        )
        new_op = (
            routing.predicate.right_operator
            if bound_is_left
            else routing.predicate.left_operator
        )
        if current_path is None:
            bound_mapper: Mapper = _WrapMapper(member, member_attr, parts, bound_op)
            bound_input = input_path(member)
        else:
            bound_mapper = _PartialSideMapper(member, member_attr, parts, bound_op)
            bound_input = current_path
        new_attr = (
            routing.left.attribute if not bound_is_left else routing.right.attribute
        )
        return JobConf(
            name=f"cascade-{new}",
            inputs=[
                InputSpec(bound_input, bound_mapper),
                InputSpec(
                    input_path(new),
                    _RowSideMapper(new, new_attr, parts, new_op, _NEW_SIDE),
                ),
            ],
            reducer=_StepJoinReducer(new, routing, step_conditions, attributes),
            output=output,
            num_reduce_tasks=num_partitions,
            partitioner=RoundRobinKeyPartitioner(),
        )

    def _sequence_step(
        self,
        query: IntervalJoinQuery,
        bound: Sequence[str],
        new: str,
        routing: JoinCondition,
        step_conditions: Sequence[JoinCondition],
        attributes: Mapping[str, str],
        grid_partitioning: Partitioning,
        grid_o: int,
        current_path: Optional[str],
        output: str,
    ) -> JobConf:
        member, member_attr, bound_is_left = self._bound_member(routing, new)
        # Dimension 0 = bound side, 1 = new side.  Consistency: the
        # enforced-earlier side's coordinate <= the later side's.
        bound_first = (
            routing.predicate.enforces_left_first()
            if bound_is_left
            else routing.predicate.enforces_right_first()
        )
        cells: List[Tuple[int, int]] = [
            (i, j)
            for i in range(grid_o)
            for j in range(grid_o)
            if (i <= j if bound_first else j <= i)
        ]
        if current_path is None:
            bound_mapper: Mapper = _GridWrapMapper(
                member, member_attr, grid_partitioning, 0, cells
            )
            bound_input = input_path(member)
        else:
            bound_mapper = _GridPartialMapper(
                member, member_attr, grid_partitioning, 0, cells
            )
            bound_input = current_path
        new_attr = (
            routing.left.attribute if not bound_is_left else routing.right.attribute
        )
        return JobConf(
            name=f"cascade-{new}",
            inputs=[
                InputSpec(bound_input, bound_mapper),
                InputSpec(
                    input_path(new),
                    _GridRowMapper(
                        new, new_attr, grid_partitioning, 1, cells, _NEW_SIDE
                    ),
                ),
            ],
            reducer=_StepJoinReducer(new, routing, step_conditions, attributes),
            output=output,
            num_reduce_tasks=max(1, len(cells)),
            partitioner=RoundRobinKeyPartitioner(),
        )

    def predict(self, query, profile, conf=None):
        from repro.core.predict import exact_cascade, operator_fanout
        from repro.core.tuning import (
            CyclePrediction,
            PlanPrediction,
            PredictConfig,
            condition_selectivity,
        )

        conf = conf or PredictConfig()
        if not query.is_single_attribute:
            raise PlanningError(
                "TwoWayCascade handles single-attribute queries"
            )
        if conf.exact:
            return exact_cascade(self, query, conf)
        parts = conf.num_partitions
        grid_o = self.grid_parts or max(
            2, math.ceil(math.sqrt(2 * parts))
        )
        order = _binding_order(query)
        partials = float(profile.rows_per_relation.get(order[0], 0))
        cycles = []
        # Colocation steps key by partition index, sequence steps by
        # (i, j) grid cells — loads collide and sum within each family.
        colocation_load = 0.0
        sequence_load = 0.0
        for step, new in enumerate(order[1:], start=1):
            bound = order[:step]
            step_conditions = _step_conditions(query, bound, new)
            routing = _routing_condition(step_conditions)
            n_new = profile.rows_per_relation.get(new, 0)
            reads = partials + n_new
            if routing.is_colocation:
                _, _, bound_is_left = self._bound_member(routing, new)
                bound_op = (
                    routing.predicate.left_operator
                    if bound_is_left
                    else routing.predicate.right_operator
                )
                new_op = (
                    routing.predicate.right_operator
                    if bound_is_left
                    else routing.predicate.left_operator
                )
                out = partials * operator_fanout(
                    bound_op, profile, parts
                ) + n_new * operator_fanout(new_op, profile, parts)
                load = out / parts
                colocation_load += load
                cycles.append(
                    CyclePrediction(
                        name=f"cascade-{new}",
                        records_read=reads,
                        map_output_records=out,
                        shuffled_records=out,
                        reduce_tasks=parts,
                        max_reducer_load=load,
                    )
                )
            else:
                cells = grid_o * (grid_o + 1) // 2
                out = (partials + n_new) * cells / grid_o
                load = out / max(1, cells)
                sequence_load += load
                cycles.append(
                    CyclePrediction(
                        name=f"cascade-{new}",
                        records_read=reads,
                        map_output_records=out,
                        shuffled_records=out,
                        reduce_tasks=max(1, cells),
                        max_reducer_load=load,
                    )
                )
            selectivity = 1.0
            for cond in step_conditions:
                selectivity *= condition_selectivity(cond, profile)
            partials *= n_new * selectivity
        return PlanPrediction(
            algorithm=self.name,
            cost_model=conf.cost_model,
            cycles=tuple(cycles),
            max_reducer_load=max(colocation_load, sequence_load),
            consistent_reducers=parts,
            total_reducers=parts,
        )


class _GridWrapMapper(Mapper):
    """Step-0 bound side of a sequence step: wrap rows as partial tuples
    and pin the grid dimension."""

    columnar_key_kind = "cell"

    def __init__(
        self,
        relation: str,
        attribute: str,
        partitioning: Partitioning,
        dim: int,
        cells: Sequence[Tuple[int, int]],
    ) -> None:
        self._inner = _GridPartialMapper(
            relation, attribute, partitioning, dim, cells
        )
        self.relation = relation

    def map(self, record: Row, context: MapContext) -> None:
        self._inner.map(((self.relation, record),), context)

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        return True

    def encode_intervals(self, records):
        import numpy as np

        starts = np.empty(len(records), dtype=np.float64)
        ends = np.empty(len(records), dtype=np.float64)
        attribute = self._inner.attribute
        for i, record in enumerate(records):
            interval = record.interval(attribute)
            starts[i] = interval.start
            ends[i] = interval.end
        return starts, ends

    def map_columns(self, starts, ends, records):
        return self._inner.map_columns(starts, ends, records)

    def value_of(self, record: Row):
        return (_BOUND_SIDE, ((self.relation, record),))
