"""Shared plumbing for join algorithms.

Every algorithm implements :class:`JoinAlgorithm`: given a query, the data,
and sizing knobs it runs one or more simulated MapReduce jobs and returns a
:class:`~repro.core.results.JoinResult` whose metrics carry the counters the
paper's evaluation tables report.

Conventions used by all implementations:

* relations are written to the file system as one file per relation,
  ``input/<name>``, holding the raw :class:`~repro.core.schema.Row` records;
* intermediate values are ``(relation_name, row)`` pairs;
* user counters: ``join:replicated_intervals`` (distinct intervals chosen
  for replication), ``join:replicated_pairs`` (key-value pairs produced by
  replication), ``work:comparisons`` (predicate evaluations inside
  reducers).
"""

from __future__ import annotations

import abc
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.columnar import resolve_data_plane
from repro.core.query import IntervalJoinQuery
from repro.core.results import ExecutionMetrics, JoinResult
from repro.core.schema import Relation, Row
from repro.intervals.partitioning import Partitioning
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.fs import FileSystem, InMemoryFileSystem
from repro.mapreduce.pipeline import Pipeline, warn_if_all_fell_back
from repro.obs.recorder import TraceRecorder

__all__ = [
    "JoinAlgorithm",
    "build_partitioning",
    "input_path",
    "record_algorithm_metrics",
    "write_inputs",
]


def record_algorithm_metrics(
    observer: Optional[TraceRecorder], metrics: ExecutionMetrics
) -> None:
    """Surface one algorithm run's paper-level numbers as gauges.

    Replication factor and (for grid algorithms) the consistent-vs-total
    reducer utilisation are what Sections 6–7 of the paper compare
    algorithms by; composite algorithms (FCTS/FSTC) call this directly
    with their combined metrics.
    """
    if observer is None:
        return
    registry = observer.metrics
    registry.gauge(
        "repro_algorithm_replication_factor",
        "Map-output pairs per input record over the whole algorithm "
        "(all cycles).",
        labels=("algorithm",),
    ).set(metrics.replication_factor, algorithm=metrics.algorithm)
    observed = registry.gauge(
        "repro_algorithm_observed",
        "Observed run quantities the cost model predicts: the observed "
        "side of every plan reconciliation.",
        labels=("algorithm", "quantity"),
    )
    for quantity, value in sorted(metrics.observed_quantities().items()):
        observed.set(value, algorithm=metrics.algorithm, quantity=quantity)
    registry.gauge(
        "repro_algorithm_output_records",
        "Tuples produced by the algorithm's final cycle.",
        labels=("algorithm",),
    ).set(metrics.output_records, algorithm=metrics.algorithm)
    if metrics.consistent_reducers is not None and metrics.total_reducers:
        reducers = registry.gauge(
            "repro_grid_reducers",
            "Grid reducers by kind: consistent (receive data) vs total "
            "(all grid cells).",
            labels=("algorithm", "kind"),
        )
        reducers.set(
            metrics.consistent_reducers,
            algorithm=metrics.algorithm,
            kind="consistent",
        )
        reducers.set(
            metrics.total_reducers, algorithm=metrics.algorithm, kind="total"
        )
        registry.gauge(
            "repro_grid_utilisation",
            "Consistent reducers as a fraction of the full grid.",
            labels=("algorithm",),
        ).set(metrics.grid_utilisation or 0.0, algorithm=metrics.algorithm)
    for dimension, value in sorted(metrics.shape.items()):
        registry.gauge(
            "repro_algorithm_shape",
            "Algorithm-declared shape metadata (grid dims, stages, "
            "partition intervals).",
            labels=("algorithm", "dimension"),
        ).set(value, algorithm=metrics.algorithm, dimension=dimension)


def input_path(relation: str) -> str:
    """The conventional file-system path of a relation's input file."""
    return f"input/{relation}"


def write_inputs(
    fs: FileSystem, query: IntervalJoinQuery, data: Mapping[str, Relation]
) -> None:
    """Write every query relation's rows to the file system."""
    query.validate_against(data)
    for name in query.relations:
        fs.write(input_path(name), data[name].rows, overwrite=True)


def build_partitioning(
    query: IntervalJoinQuery,
    data: Mapping[str, Relation],
    parts: int,
    strategy: str = "uniform",
) -> Partitioning:
    """A partitioning of the global time range covering all query attributes.

    ``strategy`` is ``"uniform"`` (the paper's equi-width setup) or
    ``"equi_depth"`` (boundaries at start-point quantiles; ablation A2).
    """
    starts: List[float] = []
    lo: Optional[float] = None
    hi: Optional[float] = None
    for term in query.terms:
        relation = data[term.relation]
        for row in relation.rows:
            iv = row.interval(term.attribute)
            starts.append(iv.start)
            lo = iv.start if lo is None else min(lo, iv.start)
            hi = iv.end if hi is None else max(hi, iv.end)
    if lo is None or hi is None:
        # No data at all: any non-degenerate range works.
        lo, hi = 0.0, 1.0
    if hi <= lo:
        hi = lo + 1.0
    if strategy == "uniform":
        # Pad the right edge so the maximal start point projects inside.
        span = hi - lo
        return Partitioning.uniform(lo, hi + span * 1e-9 + 1e-9, parts)
    if strategy == "equi_depth":
        return Partitioning.equi_depth(starts, parts)
    raise PlanningError(f"unknown partitioning strategy {strategy!r}")


class JoinAlgorithm(abc.ABC):
    """Interface of all join execution strategies."""

    #: Short name used in metrics, planning, and benchmark tables.
    name: str = "abstract"

    #: Whether at least one of the algorithm's jobs implements the
    #: columnar protocol — a *static* declaration EXPLAIN uses to warn
    #: that ``--data-plane columnar`` would fall back wholesale.  The
    #: authoritative per-job decision stays with
    #: :func:`repro.columnar.job_columnar_gate` at run time.
    columnar_capable: bool = False

    @abc.abstractmethod
    def run(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        *,
        num_partitions: int = 16,
        fs: Optional[FileSystem] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        partitioning: Optional[Partitioning] = None,
        partition_strategy: str = "uniform",
        observer: Optional[TraceRecorder] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> JoinResult:
        """Execute the query and return tuples plus metrics.

        Parameters
        ----------
        query, data:
            The join query and its relations.
        num_partitions:
            Partitions of the time range (1-dim algorithms) or per grid
            dimension (matrix algorithms).
        fs:
            File system to run against (fresh in-memory one by default).
        executor:
            MapReduce executor: ``"serial"``, ``"threads"`` or
            ``"processes"``; ``None`` defers to ``$REPRO_EXECUTOR`` and
            then ``"serial"``.  All three are bit-identical in outputs
            and counters.
        workers:
            Worker count for the parallel executors (``None``: see
            :func:`repro.mapreduce.runner.resolve_workers`).
        cost_model:
            Converts counters to modelled seconds.
        partitioning:
            Externally supplied partitioning (overrides
            ``num_partitions``/``partition_strategy``).
        partition_strategy:
            ``"uniform"`` or ``"equi_depth"``.
        observer:
            Optional :class:`~repro.obs.TraceRecorder`; every job, phase
            and task of the run is recorded as a span.  Purely passive —
            results and counters are identical with or without it.
        faults:
            Fault-injection plan — a seed, spec string or
            :class:`~repro.faults.FaultPlan`-like object; ``None`` defers
            to ``$REPRO_FAULTS``, ``False`` forces injection off.  Any
            plan within the retry budget leaves tuples, outputs and
            counters (modulo the ``faults`` group) bit-identical.
        max_attempts:
            Per-task retry budget (``None``: ``$REPRO_MAX_ATTEMPTS``).
        speculative:
            Speculative re-execution of plan-delayed stragglers
            (``None``: ``$REPRO_SPECULATIVE``).
        data_plane:
            ``"records"`` or ``"columnar"``; ``None`` defers to
            ``$REPRO_DATA_PLANE``.  Both planes are bit-identical in
            tuples, counters and logical loads; jobs whose mappers or
            reducer lack columnar support fall back to records per job.
        """

    # ------------------------------------------------------------------
    def predict(self, query, profile, conf=None):
        """Predict the run's communication footprint without running it.

        Parameters
        ----------
        query:
            The :class:`IntervalJoinQuery` to be planned.
        profile:
            A :class:`repro.core.tuning.DataProfile` of the input data
            (from :func:`repro.core.tuning.profile_data`).
        conf:
            A :class:`repro.core.tuning.PredictConfig`.  The default
            *analytic* tier evaluates the paper's Section-6 closed-form
            formulas from the profile alone; ``conf.exact=True`` instead
            dry-runs the algorithm's real mappers (and flag/mark decision
            reducers) over ``conf.data`` so the predicted counters match
            the run bit-for-bit — join reducers are never executed.

        Returns
        -------
        repro.core.tuning.PlanPrediction
            Per-cycle reads / map output / shuffle / reducer loads plus
            plan totals; ``prediction.quantities()`` aligns key-for-key
            with ``ExecutionMetrics.observed_quantities()``.
        """
        raise PlanningError(
            f"algorithm {self.name!r} does not implement predict()"
        )

    # ------------------------------------------------------------------
    def _setup(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        num_partitions: int,
        fs: Optional[FileSystem],
        executor: Optional[str],
        partitioning: Optional[Partitioning],
        partition_strategy: str,
        observer: Optional[TraceRecorder] = None,
        cost_model: Optional[CostModel] = None,
        workers: Optional[int] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> Tuple[FileSystem, Pipeline, Partitioning]:
        """Common preamble: file system, pipeline, partitioning, inputs."""
        if num_partitions < 1:
            raise PlanningError("num_partitions must be >= 1")
        file_system = fs if fs is not None else InMemoryFileSystem()
        pipeline = Pipeline(
            file_system,
            executor=executor,
            observer=observer,
            cost_model=cost_model,
            workers=workers,
            faults=faults,
            max_attempts=max_attempts,
            speculative=speculative,
            data_plane=data_plane,
        )
        if partitioning is None:
            partitioning = build_partitioning(
                query, data, num_partitions, strategy=partition_strategy
            )
        write_inputs(file_system, query, data)
        return file_system, pipeline, partitioning

    def _finish(
        self,
        query: IntervalJoinQuery,
        pipeline: Pipeline,
        cost_model: CostModel,
        tuples: Sequence[Tuple[Row, ...]],
        consistent_reducers: Optional[int] = None,
        total_reducers: Optional[int] = None,
        shape: Optional[Mapping[str, int]] = None,
    ) -> JoinResult:
        """Common postamble: fold pipeline counters into a result.

        ``shape`` is the algorithm's self-description — grid dimensions,
        cascade stages, partition-interval counts — surfaced on
        :class:`ExecutionMetrics` and, when the run is observed, as
        ``repro_algorithm_shape`` gauges for the dashboard's reducer
        utilisation table.
        """
        warn_if_all_fell_back(
            pipeline.result.jobs, resolve_data_plane(pipeline.data_plane)
        )
        metrics = ExecutionMetrics.from_pipeline(
            self.name, pipeline.result, cost_model
        )
        metrics.consistent_reducers = consistent_reducers
        metrics.total_reducers = total_reducers
        if shape:
            metrics.shape = dict(shape)
        record_algorithm_metrics(pipeline.observer, metrics)
        return JoinResult(query, tuples, metrics)
