"""FCTS and FSTC — the hybrid-query baselines (Section 8).

* **FCTS** (First Colocation Then Sequence): solve every colocation
  component with RCCIS, materialise the component results, then join them
  with one All-Matrix-style grid job over the components.
* **FSTC** (First Sequence Then Colocation): solve the sequence sub-query
  with All-Matrix, materialise the partial tuples, then attach the
  remaining relations one at a time with cascade colocation steps.

Both suffer exactly the problem the paper highlights: large intermediate
results are written to and re-read from the distributed file system
between phases — the overhead All-Seq-Matrix exists to avoid.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlanningError, UnsatisfiableQueryError
from repro.core.algorithms.base import (
    JoinAlgorithm,
    input_path,
    record_algorithm_metrics,
)
from repro.core.algorithms.cascade import (
    PartialTuple,
    _NEW_SIDE,
    _PartialSideMapper,
    _RowSideMapper,
    _StepJoinReducer,
    _WrapMapper,
)
from repro.core.algorithms.gen_matrix import GridSpec
from repro.core.algorithms.rccis import RCCIS
from repro.core.algorithms.gen_matrix import AllMatrix
from repro.core.graph import Component, JoinGraph
from repro.core.query import IntervalJoinQuery, JoinCondition, QueryClass
from repro.core.results import ExecutionMetrics, JoinResult
from repro.core.schema import Relation, Row
from repro.intervals.partitioning import Partitioning
from repro.obs.recorder import TraceRecorder
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.fs import FileSystem, InMemoryFileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.shuffle import RoundRobinKeyPartitioner
from repro.mapreduce.pipeline import Pipeline
from repro.mapreduce.task import MapContext, Mapper, ReduceContext, Reducer

__all__ = ["FCTS", "FSTC"]


def _component_subquery(component: Component) -> IntervalJoinQuery:
    """The colocation sub-query a component encapsulates."""
    return IntervalJoinQuery(list(component.conditions))


def _cross_component_conditions(
    query: IntervalJoinQuery, graph: JoinGraph
) -> List[JoinCondition]:
    """Conditions not internal to any single component (the Q' edges),
    plus intra-component sequence conditions (which component sub-joins,
    being colocation-only, do not evaluate)."""
    internal = set()
    for component in graph.components:
        internal.update(component.conditions)
    return [cond for cond in query.conditions if cond not in internal]


class _ComponentPartialMapper(Mapper):
    """Route one component's materialised partial tuples to grid cells:
    coordinate = start partition of the right-most member interval."""

    def __init__(
        self,
        component: Component,
        grid: GridSpec,
        attributes: Mapping[str, str],
    ) -> None:
        self.component = component
        self.grid = grid
        self.attributes = dict(attributes)
        self.dim = component.index
        self._cells_by_coord: Dict[int, List[Tuple[int, ...]]] = defaultdict(list)
        for cell in grid.cells:
            self._cells_by_coord[cell[self.dim]].append(cell)

    def map(self, record: PartialTuple, context: MapContext) -> None:
        rightmost = max(
            row.interval(self.attributes[relation]).start
            for relation, row in record
        )
        q = self.grid.partitioning.locate(rightmost)
        for cell in self._cells_by_coord.get(q, ()):
            context.emit(cell, (self.dim, record))


class _ComponentJoinReducer(Reducer):
    """Cross-product component partials within a cell, filtered by the
    cross-component conditions."""

    def __init__(
        self,
        query: IntervalJoinQuery,
        conditions: Sequence[JoinCondition],
        dimensions: int,
    ) -> None:
        self.query = query
        self.conditions = list(conditions)
        self.dimensions = dimensions

    def reduce(
        self,
        key: Hashable,
        values: List[Tuple[int, PartialTuple]],
        context: ReduceContext,
    ) -> None:
        partials: List[List[PartialTuple]] = [[] for _ in range(self.dimensions)]
        for dim, record in values:
            partials[dim].append(record)
        if any(not group for group in partials):
            return

        members: Dict[str, Row] = {}

        def extend(dim: int) -> None:
            if dim == self.dimensions:
                context.emit(
                    tuple(
                        (name, members[name]) for name in self.query.relations
                    )
                )
                return
            for record in partials[dim]:
                for relation, row in record:
                    members[relation] = row
                ok = True
                for cond in self.conditions:
                    if (
                        cond.left.relation in members
                        and cond.right.relation in members
                    ):
                        context.counters.increment("work", "comparisons")
                        if not cond.predicate.holds(
                            members[cond.left.relation].interval(
                                cond.left.attribute
                            ),
                            members[cond.right.relation].interval(
                                cond.right.attribute
                            ),
                        ):
                            ok = False
                            break
                if ok:
                    extend(dim + 1)
                for relation, _ in record:
                    members.pop(relation, None)

        extend(0)


class FCTS(JoinAlgorithm):
    """First Colocation Then Sequence."""

    name = "fcts"
    columnar_capable = True

    def __init__(self, grid_parts: Optional[int] = None) -> None:
        self.grid_parts = grid_parts

    def run(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        *,
        num_partitions: int = 16,
        fs: Optional[FileSystem] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        partitioning: Optional[Partitioning] = None,
        partition_strategy: str = "uniform",
        observer: Optional[TraceRecorder] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> JoinResult:
        if not query.is_single_attribute:
            raise PlanningError("FCTS handles single-attribute queries")
        try:
            graph = JoinGraph(query)
        except UnsatisfiableQueryError:
            return JoinResult(query, [], ExecutionMetrics(algorithm=self.name))
        file_system = fs if fs is not None else InMemoryFileSystem()
        attributes = {
            name: query.attributes_of(name)[0] for name in query.relations
        }
        sub_metrics: List[ExecutionMetrics] = []

        # ----- phase 1: component colocation joins (RCCIS) -----
        component_paths: Dict[int, str] = {}
        intra_seq = [
            cond
            for cond in _cross_component_conditions(query, graph)
            if graph.component_of(cond.left).index
            == graph.component_of(cond.right).index
        ]
        for component in graph.components:
            path = f"fcts/component-{component.index}"
            if len(component.terms) == 1:
                term = next(iter(component.terms))
                records = [
                    ((term.relation, row),) for row in data[term.relation].rows
                ]
                file_system.write(path, records, overwrite=True)
            else:
                subquery = _component_subquery(component)
                subdata = {
                    name: data[name] for name in subquery.relations
                }
                sub_result = RCCIS().run(
                    subquery,
                    subdata,
                    num_partitions=num_partitions,
                    fs=InMemoryFileSystem(),
                    executor=executor,
                    workers=workers,
                    cost_model=cost_model,
                    partition_strategy=partition_strategy,
                    observer=observer,
                    faults=faults,
                    max_attempts=max_attempts,
                    speculative=speculative,
                    data_plane=data_plane,
                )
                sub_metrics.append(sub_result.metrics)
                seq_filters = [
                    cond
                    for cond in intra_seq
                    if {cond.left.relation, cond.right.relation}
                    <= set(subquery.relations)
                ]
                records = []
                for tuple_rows in sub_result.tuples:
                    members = dict(zip(subquery.relations, tuple_rows))
                    if all(
                        cond.predicate.holds(
                            members[cond.left.relation].interval(
                                cond.left.attribute
                            ),
                            members[cond.right.relation].interval(
                                cond.right.attribute
                            ),
                        )
                        for cond in seq_filters
                    ):
                        records.append(
                            tuple(
                                (name, members[name])
                                for name in subquery.relations
                            )
                        )
                file_system.write(path, records, overwrite=True)
            component_paths[component.index] = path

        # ----- phase 2: All-Matrix over the components -----
        grid_o = self.grid_parts or num_partitions
        pipeline = Pipeline(
            file_system,
            executor=executor,
            workers=workers,
            observer=observer,
            cost_model=cost_model,
            faults=faults,
            max_attempts=max_attempts,
            speculative=speculative,
            data_plane=data_plane,
        )
        from repro.core.algorithms.base import build_partitioning

        parts = partitioning or build_partitioning(
            query, data, grid_o, strategy=partition_strategy
        )
        if len(parts) != grid_o:
            grid_o = len(parts)
        grid = GridSpec(graph, parts)
        cross = [
            cond
            for cond in _cross_component_conditions(query, graph)
            if graph.component_of(cond.left).index
            != graph.component_of(cond.right).index
        ]
        job = JobConf(
            name="fcts-matrix",
            inputs=[
                InputSpec(
                    component_paths[component.index],
                    _ComponentPartialMapper(component, grid, attributes),
                )
                for component in graph.components
            ],
            reducer=_ComponentJoinReducer(query, cross, len(graph.components)),
            output="fcts/output",
            num_reduce_tasks=max(1, len(grid.cells)),
            partitioner=RoundRobinKeyPartitioner(),
        )
        pipeline.run(job)

        raw = list(file_system.read_dir("fcts/output"))
        by_relation = {name: i for i, name in enumerate(query.relations)}
        tuples = []
        for partial in raw:
            ordered: List[Optional[Row]] = [None] * len(query.relations)
            for relation, row in partial:
                ordered[by_relation[relation]] = row
            tuples.append(tuple(ordered))

        matrix_metrics = ExecutionMetrics.from_pipeline(
            self.name, pipeline.result, cost_model
        )
        metrics = ExecutionMetrics.combine(
            self.name, sub_metrics + [matrix_metrics]
        )
        metrics.output_records = len(tuples)
        metrics.consistent_reducers = len(grid.cells)
        metrics.total_reducers = grid.total_cells
        metrics.shape = {
            "grid_dimensions": grid.dimensions,
            "consistent_cells": len(grid.cells),
            "total_cells": grid.total_cells,
            "colocation_subjoins": len(sub_metrics),
        }
        record_algorithm_metrics(observer, metrics)
        return JoinResult(query, tuples, metrics)

    def predict(self, query, profile, conf=None):
        from repro.core.predict import (
            analytic_grid,
            empty_prediction,
            exact_fcts,
        )
        from repro.core.tuning import (
            CyclePrediction,
            PlanPrediction,
            PredictConfig,
            condition_selectivity,
            crossing_fraction,
            replicate_fanout,
            split_factor,
        )

        conf = conf or PredictConfig()
        if not query.is_single_attribute:
            raise PlanningError("FCTS handles single-attribute queries")
        if conf.exact:
            return exact_fcts(self, query, conf)
        try:
            graph = JoinGraph(query)
        except UnsatisfiableQueryError:
            return empty_prediction(
                self.name, conf, "join graph unsatisfiable; no jobs run"
            )
        parts = conf.num_partitions
        intra_seq = [
            cond
            for cond in _cross_component_conditions(query, graph)
            if graph.component_of(cond.left).index
            == graph.component_of(cond.right).index
        ]
        cycles = []
        rccis_load = 0.0
        partial_counts = []
        for component in graph.components:
            relations = sorted({t.relation for t in component.terms})
            if len(component.terms) == 1:
                partial_counts.append(
                    float(profile.rows_per_relation.get(relations[0], 0))
                )
                continue
            comp_reads = float(
                sum(profile.rows_per_relation.get(r, 0) for r in relations)
            )
            crossing = crossing_fraction(profile, parts)
            out_flag = comp_reads * split_factor(profile, parts)
            out_join = comp_reads * (
                (1.0 - crossing) + crossing * replicate_fanout(parts)
            )
            cycles.append(
                CyclePrediction(
                    name="rccis-flag",
                    records_read=comp_reads,
                    map_output_records=out_flag,
                    shuffled_records=out_flag,
                    reduce_tasks=parts,
                    max_reducer_load=out_flag / parts,
                )
            )
            cycles.append(
                CyclePrediction(
                    name="rccis-join",
                    records_read=comp_reads,
                    map_output_records=out_join,
                    shuffled_records=out_join,
                    reduce_tasks=parts,
                    max_reducer_load=out_join / parts,
                )
            )
            # All RCCIS sub-runs share one (rccis, partition) key space
            # after ExecutionMetrics.combine, so their loads sum.
            rccis_load += (out_flag + out_join) / parts
            count = 1.0
            for r in relations:
                count *= profile.rows_per_relation.get(r, 0)
            for cond in component.conditions:
                count *= condition_selectivity(cond, profile)
            for cond in intra_seq:
                if {cond.left.relation, cond.right.relation} <= set(
                    relations
                ):
                    count *= condition_selectivity(cond, profile)
            partial_counts.append(count)
        grid_o = self.grid_parts or parts
        grid = analytic_grid(graph, [grid_o] * len(graph.components))
        cells = max(1, len(grid.cells))
        reads = sum(partial_counts)
        # Each partial is pinned to one coordinate on its own dimension.
        out = sum(partial_counts) * len(grid.cells) / grid_o
        matrix_load = out / cells
        cycles.append(
            CyclePrediction(
                name="fcts-matrix",
                records_read=reads,
                map_output_records=out,
                shuffled_records=out,
                reduce_tasks=cells,
                max_reducer_load=matrix_load,
            )
        )
        return PlanPrediction(
            algorithm=self.name,
            cost_model=conf.cost_model,
            cycles=tuple(cycles),
            max_reducer_load=max(rccis_load, matrix_load),
            consistent_reducers=len(grid.cells),
            total_reducers=grid.total_cells,
        )


class FSTC(JoinAlgorithm):
    """First Sequence Then Colocation."""

    name = "fstc"
    columnar_capable = True

    def __init__(self, grid_parts: Optional[int] = None) -> None:
        self.grid_parts = grid_parts

    def run(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        *,
        num_partitions: int = 16,
        fs: Optional[FileSystem] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        partitioning: Optional[Partitioning] = None,
        partition_strategy: str = "uniform",
        observer: Optional[TraceRecorder] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> JoinResult:
        if query.query_class is not QueryClass.HYBRID:
            raise PlanningError("FSTC handles hybrid queries")
        sequence_conditions = [c for c in query.conditions if c.is_sequence]
        try:
            seq_query = IntervalJoinQuery(sequence_conditions)
        except Exception as exc:
            raise PlanningError(
                "FSTC requires the sequence conditions to form a connected "
                f"sub-query: {exc}"
            ) from exc

        file_system = fs if fs is not None else InMemoryFileSystem()
        attributes = {
            name: query.attributes_of(name)[0] for name in query.relations
        }

        # ----- phase 1: the sequence sub-join via All-Matrix -----
        seq_data = {name: data[name] for name in seq_query.relations}
        grid_o = self.grid_parts or num_partitions
        seq_result = AllMatrix().run(
            seq_query,
            seq_data,
            num_partitions=grid_o,
            fs=InMemoryFileSystem(),
            executor=executor,
            workers=workers,
            cost_model=cost_model,
            partition_strategy=partition_strategy,
            observer=observer,
            faults=faults,
            max_attempts=max_attempts,
            speculative=speculative,
            data_plane=data_plane,
        )
        partial_records = [
            tuple((name, row) for name, row in zip(seq_query.relations, t))
            for t in seq_result.tuples
        ]
        current_path = "fstc/seq"
        file_system.write(current_path, partial_records, overwrite=True)

        # ----- phase 2: cascade the remaining relations in -----
        from repro.core.algorithms.base import build_partitioning

        parts = partitioning or build_partitioning(
            query, data, num_partitions, strategy=partition_strategy
        )
        for name in query.relations:
            if not file_system.exists(input_path(name)):
                file_system.write(
                    input_path(name), data[name].rows, overwrite=True
                )

        pipeline = Pipeline(
            file_system,
            executor=executor,
            workers=workers,
            observer=observer,
            cost_model=cost_model,
            faults=faults,
            max_attempts=max_attempts,
            speculative=speculative,
            data_plane=data_plane,
        )
        bound: List[str] = list(seq_query.relations)
        remaining = [n for n in query.relations if n not in bound]
        step = 0
        while remaining:
            step += 1
            nxt: Optional[str] = None
            routing: Optional[JoinCondition] = None
            for candidate in remaining:
                for cond in query.conditions:
                    names = {cond.left.relation, cond.right.relation}
                    if (
                        candidate in names
                        and (names - {candidate}) <= set(bound)
                        and cond.is_colocation
                    ):
                        nxt, routing = candidate, cond
                        break
                if nxt:
                    break
            if nxt is None or routing is None:
                raise PlanningError(
                    "FSTC could not attach remaining relations "
                    f"{remaining} through colocation conditions"
                )
            step_conditions = [
                cond
                for cond in query.conditions
                if nxt in (cond.left.relation, cond.right.relation)
                and ({cond.left.relation, cond.right.relation} - {nxt})
                <= set(bound)
            ]
            member = (
                routing.right.relation
                if routing.left.relation == nxt
                else routing.left.relation
            )
            member_attr = attributes[member]
            bound_is_left = routing.left.relation == member
            bound_op = (
                routing.predicate.left_operator
                if bound_is_left
                else routing.predicate.right_operator
            )
            new_op = (
                routing.predicate.right_operator
                if bound_is_left
                else routing.predicate.left_operator
            )
            output = f"fstc/step-{step:02d}"
            job = JobConf(
                name=f"fstc-{nxt}",
                inputs=[
                    InputSpec(
                        current_path,
                        _PartialSideMapper(member, member_attr, parts, bound_op),
                    ),
                    InputSpec(
                        input_path(nxt),
                        _RowSideMapper(
                            nxt, attributes[nxt], parts, new_op, _NEW_SIDE
                        ),
                    ),
                ],
                reducer=_StepJoinReducer(nxt, routing, step_conditions, attributes),
                output=output,
                num_reduce_tasks=num_partitions,
                partitioner=RoundRobinKeyPartitioner(),
            )
            pipeline.run(job)
            current_path = output
            bound.append(nxt)
            remaining.remove(nxt)

        raw = list(file_system.read_dir(current_path))
        by_relation = {name: i for i, name in enumerate(query.relations)}
        tuples = []
        for partial in raw:
            ordered: List[Optional[Row]] = [None] * len(query.relations)
            for relation, row in partial:
                ordered[by_relation[relation]] = row
            tuples.append(tuple(ordered))

        cascade_metrics = ExecutionMetrics.from_pipeline(
            self.name, pipeline.result, cost_model
        )
        metrics = ExecutionMetrics.combine(
            self.name, [seq_result.metrics, cascade_metrics]
        )
        metrics.output_records = len(tuples)
        metrics.shape = {
            "partition_intervals": len(parts),
            "colocation_steps": step,
        }
        record_algorithm_metrics(observer, metrics)
        return JoinResult(query, tuples, metrics)

    def predict(self, query, profile, conf=None):
        from repro.core.predict import (
            analytic_grid,
            exact_fstc,
            operator_fanout,
        )
        from repro.core.tuning import (
            CyclePrediction,
            PlanPrediction,
            PredictConfig,
            condition_selectivity,
        )

        conf = conf or PredictConfig()
        if query.query_class is not QueryClass.HYBRID:
            raise PlanningError("FSTC handles hybrid queries")
        if conf.exact:
            return exact_fstc(self, query, conf)
        sequence_conditions = [c for c in query.conditions if c.is_sequence]
        try:
            seq_query = IntervalJoinQuery(sequence_conditions)
        except Exception as exc:
            raise PlanningError(
                "FSTC requires the sequence conditions to form a connected "
                f"sub-query: {exc}"
            ) from exc
        parts = conf.num_partitions
        grid_o = self.grid_parts or parts
        seq_graph = JoinGraph(seq_query)
        grid = analytic_grid(
            seq_graph, [grid_o] * len(seq_graph.components)
        )
        cells = max(1, len(grid.cells))
        seq_reads = float(
            sum(
                profile.rows_per_relation.get(name, 0)
                for name in seq_query.relations
            )
        )
        seq_out = seq_reads * len(grid.cells) / grid_o
        seq_load = seq_out / cells
        cycles = [
            CyclePrediction(
                name="all_matrix-join",
                records_read=seq_reads,
                map_output_records=seq_out,
                shuffled_records=seq_out,
                reduce_tasks=cells,
                max_reducer_load=seq_load,
            )
        ]
        partials = 1.0
        for name in seq_query.relations:
            partials *= profile.rows_per_relation.get(name, 0)
        for cond in sequence_conditions:
            partials *= condition_selectivity(cond, profile)

        colocation_load = 0.0
        bound = list(seq_query.relations)
        remaining = [n for n in query.relations if n not in bound]
        while remaining:
            nxt = None
            routing = None
            for candidate in remaining:
                for cond in query.conditions:
                    names = {cond.left.relation, cond.right.relation}
                    if (
                        candidate in names
                        and (names - {candidate}) <= set(bound)
                        and cond.is_colocation
                    ):
                        nxt, routing = candidate, cond
                        break
                if nxt:
                    break
            if nxt is None or routing is None:
                raise PlanningError(
                    "FSTC could not attach remaining relations "
                    f"{remaining} through colocation conditions"
                )
            step_conditions = [
                cond
                for cond in query.conditions
                if nxt in (cond.left.relation, cond.right.relation)
                and ({cond.left.relation, cond.right.relation} - {nxt})
                <= set(bound)
            ]
            bound_is_left = routing.left.relation != nxt
            bound_op = (
                routing.predicate.left_operator
                if bound_is_left
                else routing.predicate.right_operator
            )
            new_op = (
                routing.predicate.right_operator
                if bound_is_left
                else routing.predicate.left_operator
            )
            n_new = profile.rows_per_relation.get(nxt, 0)
            out = partials * operator_fanout(
                bound_op, profile, parts
            ) + n_new * operator_fanout(new_op, profile, parts)
            load = out / parts
            colocation_load += load
            cycles.append(
                CyclePrediction(
                    name=f"fstc-{nxt}",
                    records_read=partials + n_new,
                    map_output_records=out,
                    shuffled_records=out,
                    reduce_tasks=parts,
                    max_reducer_load=load,
                )
            )
            selectivity = 1.0
            for cond in step_conditions:
                selectivity *= condition_selectivity(cond, profile)
            partials *= n_new * selectivity
            bound.append(nxt)
            remaining.remove(nxt)
        return PlanPrediction(
            algorithm=self.name,
            cost_model=conf.cost_model,
            cycles=tuple(cycles),
            max_reducer_load=max(seq_load, colocation_load),
            consistent_reducers=parts,
            total_reducers=parts,
        )
