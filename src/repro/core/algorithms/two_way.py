"""2-way interval joins (Section 4).

A single MapReduce cycle: each side of the predicate is projected, split
or replicated according to the operator table derived from Figure 1 (see
:mod:`repro.intervals.allen`), and each reducer joins what it receives.
The right-most-member ownership rule makes the output exactly-once even
for the predicates that split or replicate one side.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import PlanningError
from repro.core.algorithms.base import JoinAlgorithm, input_path
from repro.core.algorithms.rccis import JoinReducer
from repro.core.query import IntervalJoinQuery
from repro.core.results import JoinResult
from repro.core.schema import Relation, Row
from repro.intervals.allen import MapOperator
from repro.intervals.partitioning import Partitioning
from repro.obs.recorder import TraceRecorder
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.shuffle import RoundRobinKeyPartitioner
from repro.mapreduce.task import MapContext, Mapper

__all__ = ["TwoWayJoin", "OperatorMapper"]


class OperatorMapper(Mapper):
    """Applies one of the Section-3 primitives to one relation."""

    columnar_key_kind = "int"

    def __init__(
        self,
        relation: str,
        attribute: str,
        partitioning: Partitioning,
        operator: MapOperator,
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        self.partitioning = partitioning
        self.operator = operator

    def map(self, record: Row, context: MapContext) -> None:
        interval = record.interval(self.attribute)
        if self.operator is MapOperator.PROJECT:
            context.emit(
                self.partitioning.project(interval), (self.relation, record)
            )
            return
        if self.operator is MapOperator.SPLIT:
            targets = list(self.partitioning.split(interval))
        else:
            targets = list(self.partitioning.replicate(interval))
            context.counters.increment("join", "replicated_intervals")
            context.counters.increment("join", "replicated_pairs", len(targets))
        for index in targets:
            context.emit(index, (self.relation, record))

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        return True

    def encode_intervals(self, records):
        import numpy as np

        starts = np.empty(len(records), dtype=np.float64)
        ends = np.empty(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            interval = record.interval(self.attribute)
            starts[i] = interval.start
            ends[i] = interval.end
        return starts, ends

    def map_columns(self, starts, ends, records):
        from repro.columnar.batch import MapBlock, operator_map_columns

        key_codes, row_idx, counters = operator_map_columns(
            self.partitioning, self.operator, starts, ends
        )
        return MapBlock.single_tag(key_codes, row_idx, self.relation, counters)

    def value_of(self, record: Row):
        return (self.relation, record)


class TwoWayJoin(JoinAlgorithm):
    """Single-condition interval join via the Figure-1 operator table."""

    name = "two_way"
    columnar_capable = True

    def run(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        *,
        num_partitions: int = 16,
        fs: Optional[FileSystem] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        partitioning: Optional[Partitioning] = None,
        partition_strategy: str = "uniform",
        observer: Optional[TraceRecorder] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> JoinResult:
        if len(query.conditions) != 1 or len(query.relations) != 2:
            raise PlanningError(
                "TwoWayJoin handles exactly one condition over two relations"
            )
        condition = query.conditions[0]
        file_system, pipeline, parts = self._setup(
            query, data, num_partitions, fs, executor,
            partitioning, partition_strategy,
            observer=observer, cost_model=cost_model, workers=workers,
            faults=faults, max_attempts=max_attempts, speculative=speculative,
            data_plane=data_plane,
        )
        attributes = {
            name: query.attributes_of(name)[0] for name in query.relations
        }
        left_name = condition.left.relation
        right_name = condition.right.relation
        job = JobConf(
            name="two-way",
            inputs=[
                InputSpec(
                    input_path(left_name),
                    OperatorMapper(
                        left_name,
                        condition.left.attribute,
                        parts,
                        condition.predicate.left_operator,
                    ),
                ),
                InputSpec(
                    input_path(right_name),
                    OperatorMapper(
                        right_name,
                        condition.right.attribute,
                        parts,
                        condition.predicate.right_operator,
                    ),
                ),
            ],
            reducer=JoinReducer(query, attributes, parts),
            output="twoway/output",
            num_reduce_tasks=num_partitions,
            partitioner=RoundRobinKeyPartitioner(),
        )
        pipeline.run(job)
        tuples = list(file_system.read_dir("twoway/output"))
        return self._finish(
            query, pipeline, cost_model, tuples,
            shape={"partition_intervals": len(parts), "cycles": 1},
        )

    def predict(self, query, profile, conf=None):
        from repro.core.predict import exact_two_way, operator_fanout
        from repro.core.tuning import (
            CyclePrediction,
            PlanPrediction,
            PredictConfig,
        )

        conf = conf or PredictConfig()
        if len(query.conditions) != 1 or len(query.relations) != 2:
            raise PlanningError(
                "TwoWayJoin handles exactly one condition over two relations"
            )
        if conf.exact:
            return exact_two_way(self, query, conf)
        condition = query.conditions[0]
        parts = conf.num_partitions
        reads = 0.0
        out = 0.0
        for term, operator in (
            (condition.left, condition.predicate.left_operator),
            (condition.right, condition.predicate.right_operator),
        ):
            n = profile.rows_per_relation.get(term.relation, 0)
            reads += n
            out += n * operator_fanout(operator, profile, parts)
        load = out / parts
        cycle = CyclePrediction(
            name="two-way",
            records_read=reads,
            map_output_records=out,
            shuffled_records=out,
            reduce_tasks=parts,
            max_reducer_load=load,
        )
        return PlanPrediction(
            algorithm=self.name,
            cost_model=conf.cost_model,
            cycles=(cycle,),
            max_reducer_load=load,
            consistent_reducers=parts,
            total_reducers=parts,
        )
