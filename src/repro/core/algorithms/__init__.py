"""The paper's join algorithms and baselines."""

from repro.core.algorithms.all_replicate import AllReplicate
from repro.core.algorithms.base import JoinAlgorithm, build_partitioning
from repro.core.algorithms.cascade import TwoWayCascade
from repro.core.algorithms.crossing import CrossingSetFinder
from repro.core.algorithms.gen_matrix import (
    AllMatrix,
    AllSeqMatrix,
    GenMatrix,
    GridSpec,
)
from repro.core.algorithms.hybrid import FCTS, FSTC
from repro.core.algorithms.pasm import PASM
from repro.core.algorithms.rccis import RCCIS
from repro.core.algorithms.two_way import TwoWayJoin

__all__ = [
    "AllMatrix",
    "AllReplicate",
    "AllSeqMatrix",
    "CrossingSetFinder",
    "FCTS",
    "FSTC",
    "GenMatrix",
    "GridSpec",
    "JoinAlgorithm",
    "PASM",
    "RCCIS",
    "TwoWayCascade",
    "TwoWayJoin",
    "build_partitioning",
]
