"""The grid engine: Gen-Matrix, All-Seq-Matrix and All-Matrix.

One engine implements the paper's three grid algorithms, which share their
structure and differ only in what a *dimension* is:

* **All-Matrix** (Section 7.1): pure sequence queries — every relation is
  its own colocation component, so the grid has one dimension per relation
  and the whole join runs in a single MapReduce cycle.
* **All-Seq-Matrix** (Section 8.1): hybrid single-attribute queries — one
  dimension per colocation component; a preliminary RCCIS flagging cycle
  decides which intervals each embedded colocation sub-join must
  replicate.
* **Gen-Matrix** (Section 9.1): general queries — vertices are
  ``(relation, attribute)`` pairs; a relation's tuple is routed under the
  conjunction of the per-attribute constraints.

Consistent reducers
-------------------
A grid cell is *consistent* when ``i_j <= i_k`` for every enforced
less-than order between components ``C_j < C_k``.  The paper prunes
inconsistent cells unconditionally; that pruning is only sound when every
member of the earlier component provably starts no later than the sequence
partner's start (see DESIGN.md — the paper's own evaluation queries all
satisfy this, but adversarial hybrid queries do not).  We verify the
soundness condition per order pair with Allen path consistency and fall
back to keeping the cells whenever it cannot be proven, preserving
correctness at the cost of pruning less.

Flag distribution
-----------------
The flagging cycle emits only the flagged ``(relation, rid, attribute)``
triples; the driver ships that small table to the routing mappers the way
a Hadoop job would use the DistributedCache.  (RCCIS proper instead passes
whole flagged rows through its first cycle's output, exactly as the paper
describes; both designs are implemented so the test suite cross-checks
them.)
"""

from __future__ import annotations

import itertools
import math
from collections import defaultdict
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import PlanningError, UnsatisfiableQueryError
from repro.core.algorithms.base import JoinAlgorithm, input_path
from repro.core.algorithms.crossing import CrossingSetFinder
from repro.core.graph import Component, JoinGraph
from repro.core.local import LocalJoiner
from repro.core.query import IntervalJoinQuery, QueryClass, Term
from repro.core.results import ExecutionMetrics, JoinResult
from repro.core.schema import Relation, Row
from repro.intervals.composition import path_consistency
from repro.intervals.partitioning import Partitioning
from repro.obs.recorder import TraceRecorder
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.shuffle import RoundRobinKeyPartitioner
from repro.mapreduce.task import MapContext, Mapper, ReduceContext, Reducer

__all__ = ["GenMatrix", "AllSeqMatrix", "AllMatrix", "GridSpec"]

Cell = Tuple[int, ...]
FlagKey = Tuple[str, int, str]  # (relation, rid, attribute)


def default_grid_parts(num_partitions: int, dimensions: int) -> int:
    """Per-dimension partition count giving roughly ``num_partitions``
    cells in total."""
    if dimensions <= 0:
        return max(2, num_partitions)
    return max(2, math.ceil(num_partitions ** (1.0 / dimensions)))


class GridSpec:
    """The reducer grid: components, justified orders, consistent cells.

    Dimensions may carry *different* granularities (Afrati-style shares:
    give heavy components more partitions), in which case consistency
    between two coordinates compares partition boundaries rather than
    indices: a cell survives a justified order ``C_j <= C_k`` iff some
    start point in dimension j's partition can precede some start point
    in dimension k's — i.e. ``min_start_j < max_start_k`` — which reduces
    to ``i_j <= i_k`` when the granularities coincide.
    """

    def __init__(
        self,
        graph: JoinGraph,
        partitionings: Union[Partitioning, Sequence[Partitioning]],
    ) -> None:
        self.graph = graph
        self.dimensions = len(graph.components)
        if isinstance(partitionings, Partitioning):
            per_dim: List[Partitioning] = [partitionings] * self.dimensions
        else:
            per_dim = list(partitionings)
            if len(per_dim) != self.dimensions:
                raise PlanningError(
                    "grid needs one partitioning per dimension "
                    f"({self.dimensions}), got {len(per_dim)}"
                )
        self.partitionings: Tuple[Partitioning, ...] = tuple(per_dim)
        self.justified_orders = self._justify_orders()
        self.cells: List[Cell] = [
            cell
            for cell in itertools.product(
                *(range(len(p)) for p in self.partitionings)
            )
            if all(
                self._order_possible(j, cell[j], k, cell[k])
                for j, k in self.justified_orders
            )
        ]
        self.total_cells = 1
        for p in self.partitionings:
            self.total_cells *= len(p)
        self._projections: Dict[Tuple[int, ...], Dict[Tuple[int, ...], List[Cell]]] = {}

    # ------------------------------------------------------------------
    def partitioning_of(self, dim: int) -> Partitioning:
        """The partitioning governing one grid dimension."""
        return self.partitionings[dim]

    @property
    def partitioning(self) -> Partitioning:
        """The shared partitioning of a uniform grid (the common case)."""
        first = self.partitionings[0]
        if any(p is not first and p != first for p in self.partitionings):
            raise PlanningError(
                "grid has per-dimension partitionings; use partitioning_of"
            )
        return first

    def _order_possible(self, dim_j: int, i_j: int, dim_k: int, i_k: int) -> bool:
        """Whether a start in partition ``i_j`` of dim ``j`` can be <= a
        start in partition ``i_k`` of dim ``k``.  Edge partitions absorb
        clamped out-of-range starts, so the first partition's lower bound
        and the last partition's upper bound are unbounded."""
        pj = self.partitionings[dim_j]
        pk = self.partitionings[dim_k]
        min_start_j = float("-inf") if i_j == 0 else pj.boundaries[i_j]
        max_start_k = (
            float("inf")
            if i_k == len(pk) - 1
            else pk.boundaries[i_k + 1]
        )
        return min_start_j < max_start_k

    # ------------------------------------------------------------------
    def _justify_orders(self) -> FrozenSet[Tuple[int, int]]:
        """The component order pairs for which inconsistent-cell pruning
        is provably sound (see module docstring)."""
        graph = self.graph
        if not graph.component_orders:
            return frozenset()
        try:
            tightened = path_consistency(graph.constraint_network())
        except UnsatisfiableQueryError:
            # Provably empty query; the caller handles emptiness — every
            # pruning is vacuously sound.
            return graph.component_orders
        justified: Set[Tuple[int, int]] = set()
        for cond in graph.sequence_conditions:
            if cond.predicate.enforces_left_first():
                early_term, late_term = cond.left, cond.right
            else:
                early_term, late_term = cond.right, cond.left
            cj = graph.component_of(early_term).index
            ck = graph.component_of(late_term).index
            if cj == ck:
                continue
            early_component = graph.components[cj]
            # Sound iff no member of the earlier component can start after
            # the early endpoint's interval ends, i.e. Allen "after" is
            # excluded between every member and the early endpoint.
            sound = all(
                "after" not in tightened.constraint(str(term), str(early_term))
                for term in early_component.terms
            )
            if sound:
                justified.add((cj, ck))
        return frozenset(justified)

    # ------------------------------------------------------------------
    def cells_matching(
        self, constraints: Mapping[int, FrozenSet[int]]
    ) -> List[Cell]:
        """Consistent cells whose coordinate on each constrained dimension
        lies in the allowed set (grouped-lookup, precomputed per dimension
        subset)."""
        dims = tuple(sorted(constraints))
        if not dims:
            return self.cells
        index = self._projections.get(dims)
        if index is None:
            index = defaultdict(list)
            for cell in self.cells:
                index[tuple(cell[d] for d in dims)].append(cell)
            self._projections[dims] = index
        out: List[Cell] = []
        for values in itertools.product(
            *(sorted(constraints[d]) for d in dims)
        ):
            out.extend(index.get(values, ()))
        return out


# ----------------------------------------------------------------------
# Flagging cycle (per multi-term component)
# ----------------------------------------------------------------------


class _ComponentSplitMapper(Mapper):
    """Split one term's interval values, keyed by (component, partition)."""

    def __init__(self, term: Term, component: int, partitioning: Partitioning):
        self.term = term
        self.component = component
        self.partitioning = partitioning

    def map(self, record: Row, context: MapContext) -> None:
        interval = record.interval(self.term.attribute)
        for index in self.partitioning.split(interval):
            context.emit(
                (self.component, index), (str(self.term), record)
            )


class _ComponentFlaggingReducer(Reducer):
    """Run the crossing-set CSP for one (component, partition); emit the
    flagged ``(relation, rid, attribute)`` triples."""

    def __init__(
        self,
        components: Sequence[Component],
        partitionings: Mapping[int, Partitioning],
    ) -> None:
        self.components = {comp.index: comp for comp in components}
        self.partitionings = dict(partitionings)

    def reduce(
        self,
        key: Hashable,
        values: List[Tuple[str, Row]],
        context: ReduceContext,
    ) -> None:
        component_index, partition = key  # type: ignore[misc]
        component = self.components[component_index]
        partitioning = self.partitionings[component_index]
        terms = sorted(component.terms)
        term_by_name = {str(term): term for term in terms}
        rows_by_term: Dict[str, List[Row]] = defaultdict(list)
        for term_name, row in values:
            rows_by_term[term_name].append(row)
        intervals = {
            term_name: [
                row.interval(term_by_name[term_name].attribute)
                for row in rows
            ]
            for term_name, rows in rows_by_term.items()
        }

        relations = [term.relation for term in terms]
        if len(set(relations)) < len(relations):
            # Two attributes of one relation inside one component: the CSP
            # variables would have to co-bind.  Fall back to flagging every
            # interval starting here (All-Replicate semantics within the
            # dimension) — always correct, never optimal.
            for term_name, rows in rows_by_term.items():
                term = term_by_name[term_name]
                for row, interval in zip(rows, intervals[term_name]):
                    if partitioning.project(interval) == partition:
                        context.counters.increment(
                            "join", "replicated_intervals"
                        )
                        context.emit((term.relation, row.rid, term.attribute))
            return

        conditions = [
            (str(cond.left), cond.predicate, str(cond.right))
            for cond in component.conditions
        ]
        finder = CrossingSetFinder(
            [str(term) for term in terms],
            conditions,
            partitioning,
            partition,
        )
        masks = finder.replicable(intervals)
        for term_name, rows in rows_by_term.items():
            term = term_by_name[term_name]
            mask = masks.get(term_name)
            for index, row in enumerate(rows):
                interval = intervals[term_name][index]
                if partitioning.project(interval) != partition:
                    continue
                if mask is not None and bool(mask[index]):
                    context.counters.increment("join", "replicated_intervals")
                    context.emit((term.relation, row.rid, term.attribute))


# ----------------------------------------------------------------------
# Routing + join cycle
# ----------------------------------------------------------------------


class _GridRouteMapper(Mapper):
    """Route one relation's rows to the consistent cells satisfying all
    per-attribute constraints (conditions E1 + E2 of Sections 8.1/9.1)."""

    def __init__(
        self,
        relation: str,
        terms: Sequence[Term],
        term_components: Mapping[str, int],
        grid: GridSpec,
        flags: FrozenSet[FlagKey],
    ) -> None:
        self.relation = relation
        self.terms = list(terms)
        self.term_components = dict(term_components)
        self.grid = grid
        self.flags = flags

    def map(self, record: Row, context: MapContext) -> None:
        constraints: Dict[int, FrozenSet[int]] = {}
        replicated = False
        for term in self.terms:
            dim = self.term_components[str(term)]
            parts = self.grid.partitioning_of(dim)
            interval = record.interval(term.attribute)
            q = parts.project(interval)
            if (self.relation, record.rid, term.attribute) in self.flags:
                allowed = frozenset(range(q, len(parts)))
                replicated = True
            else:
                allowed = frozenset((q,))
            if dim in constraints:
                constraints[dim] = constraints[dim] & allowed
            else:
                constraints[dim] = allowed
        if any(not allowed for allowed in constraints.values()):
            return  # contradictory constraints: the row joins nothing
        targets = self.grid.cells_matching(constraints)
        if replicated:
            context.counters.increment("join", "replicated_pairs", len(targets))
        for cell in targets:
            context.emit(cell, (self.relation, record))


class _GridJoinReducer(Reducer):
    """Join one cell's rows; emit tuples owned by this cell (per
    component, the right-most member interval starts at the cell's
    coordinate).

    When a component replicates intervals (an embedded RCCIS sub-join),
    enumeration is *anchored* on that component: the join is driven, per
    anchor term, from rows whose interval starts at the cell's coordinate
    on the component's dimension, and the anchored row must be the
    component's unique right-most member (ties broken by term order).
    This keeps the reducer's work proportional to the tuples it owns
    instead of re-enumerating combinations of replicated rows owned by
    earlier cells (see the RCCIS JoinReducer for the 1-dim argument).
    """

    def __init__(self, query: IntervalJoinQuery, grid: GridSpec) -> None:
        self.query = query
        self.grid = grid
        # component index -> list of terms whose intervals it governs
        self.component_terms: Dict[int, List[Term]] = defaultdict(list)
        for component in grid.graph.components:
            self.component_terms[component.index] = sorted(component.terms)
        # Anchor on the largest component (the one whose replication
        # would otherwise cause re-enumeration); None for all-singleton
        # grids (pure routing delivers each tuple to exactly one cell).
        # Components holding two attributes of one relation are excluded
        # — their terms co-bind one row, which would break the
        # exactly-once run decomposition; they fall back to the plain
        # ownership filter.
        multi = [
            comp
            for comp in grid.graph.components
            if len(comp.terms) > 1
            and len({term.relation for term in comp.terms})
            == len(comp.terms)
        ]
        self._anchor_component: Optional[int] = (
            max(multi, key=lambda c: len(c.terms)).index if multi else None
        )

    def _joiner(self, anchor_relation: Optional[str], count) -> LocalJoiner:
        # Built per reduce() call: the reducer instance is shared across
        # concurrently-running tasks under the threads executor, so a
        # cached joiner's count callback would attribute one task's
        # comparisons to another's counters.
        return LocalJoiner(self.query, count, start_with=anchor_relation)

    def reduce(
        self,
        key: Hashable,
        values: List[Tuple[str, Row]],
        context: ReduceContext,
    ) -> None:
        cell: Cell = tuple(key)  # type: ignore[arg-type]
        rows_by_relation: Dict[str, List[Row]] = defaultdict(list)
        for relation, row in values:
            rows_by_relation[relation].append(row)

        def count(n: int) -> None:
            context.counters.increment("work", "comparisons", n)

        def owns(binding: Mapping[str, Row]) -> bool:
            for dim, terms in self.component_terms.items():
                rightmost_start = max(
                    binding[term.relation].interval(term.attribute).start
                    for term in terms
                )
                locate = self.grid.partitioning_of(dim).locate
                if locate(rightmost_start) != cell[dim]:
                    return False
            return True

        if self._anchor_component is None:
            joiner = self._joiner(None, count)
            for tuple_rows in joiner.join(rows_by_relation, accept=owns):
                context.emit(tuple_rows)
            return

        # Decompose enumeration by the last *local* member of the anchor
        # component (local = interval starts at the cell's coordinate on
        # that dimension): run k anchors term k on its local rows, allows
        # anything for earlier terms and only non-local rows for later
        # ones.  Each owned tuple appears in exactly one run; purely
        # replicated combinations are never enumerated.  The remaining
        # per-dimension ownership checks stay in ``owns``.
        anchor_dim = self._anchor_component
        anchor_terms = self.component_terms[anchor_dim]
        anchor_parts = self.grid.partitioning_of(anchor_dim)

        def is_local(term: Term, row: Row) -> bool:
            return (
                anchor_parts.locate(row.interval(term.attribute).start)
                == cell[anchor_dim]
            )

        for k, anchor_term in enumerate(anchor_terms):
            relation = anchor_term.relation
            local = [
                row
                for row in rows_by_relation.get(relation, ())
                if is_local(anchor_term, row)
            ]
            if not local:
                continue
            candidates = dict(rows_by_relation)
            candidates[relation] = local
            usable = True
            for later in anchor_terms[k + 1:]:
                candidates[later.relation] = [
                    row
                    for row in rows_by_relation.get(later.relation, ())
                    if not is_local(later, row)
                ]
                if not candidates[later.relation]:
                    usable = False
                    break
            if not usable:
                continue

            joiner = self._joiner(relation, count)
            for tuple_rows in joiner.join(candidates, accept=owns):
                context.emit(tuple_rows)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class GenMatrix(JoinAlgorithm):
    """The general grid algorithm (Section 9.1).

    ``num_partitions`` is interpreted as the *per-dimension* partition
    count when ``grid_parts`` is not given explicitly.
    """

    name = "gen_matrix"

    #: restrict to a query class (None = any); subclasses override.
    _required_class: Optional[QueryClass] = None

    def __init__(
        self, grid_parts: Optional[Union[int, Sequence[int]]] = None
    ) -> None:
        #: per-dimension granularity: a single ``o`` for a uniform grid,
        #: or one value per colocation component for Afrati-style shares
        #: (heavier components get more partitions; see
        #: :func:`repro.core.tuning.recommend_shares`).
        self.grid_parts = grid_parts

    # ------------------------------------------------------------------
    def _check_query(self, query: IntervalJoinQuery) -> None:
        if (
            self._required_class is not None
            and query.query_class is not self._required_class
        ):
            raise PlanningError(
                f"{type(self).__name__} handles {self._required_class.name} "
                f"queries; got {query.query_class.name}"
            )

    def run(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        *,
        num_partitions: int = 16,
        fs: Optional[FileSystem] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        partitioning: Optional[Partitioning] = None,
        partition_strategy: str = "uniform",
        observer: Optional[TraceRecorder] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> JoinResult:
        self._check_query(query)
        try:
            graph = JoinGraph(query)
        except UnsatisfiableQueryError:
            return JoinResult(
                query, [], ExecutionMetrics(algorithm=self.name)
            )
        grid_parts = self.grid_parts or num_partitions
        if isinstance(grid_parts, int):
            per_dim_parts: List[int] = [grid_parts] * len(graph.components)
        else:
            per_dim_parts = list(grid_parts)
            if len(per_dim_parts) != len(graph.components):
                raise PlanningError(
                    "grid_parts must give one granularity per dimension "
                    f"({len(graph.components)}), got {len(per_dim_parts)}"
                )
        file_system, pipeline, parts = self._setup(
            query, data, per_dim_parts[0], fs, executor,
            partitioning, partition_strategy,
            observer=observer, cost_model=cost_model, workers=workers,
            faults=faults, max_attempts=max_attempts, speculative=speculative,
            data_plane=data_plane,
        )
        if partitioning is not None or len(set(per_dim_parts)) == 1:
            partitionings: List[Partitioning] = [parts] * len(
                graph.components
            )
        else:
            from repro.core.algorithms.base import build_partitioning

            partitionings = [
                build_partitioning(query, data, o, strategy=partition_strategy)
                for o in per_dim_parts
            ]
        grid = GridSpec(graph, partitionings)

        # ----- cycle 1: flagging (only for multi-term components) -----
        multi_components = [
            comp for comp in graph.components if len(comp.terms) > 1
        ]
        flags: Set[FlagKey] = set()
        if multi_components:
            inputs = []
            for comp in multi_components:
                for term in sorted(comp.terms):
                    inputs.append(
                        InputSpec(
                            input_path(term.relation),
                            _ComponentSplitMapper(
                                term, comp.index,
                                grid.partitioning_of(comp.index),
                            ),
                        )
                    )
            flag_job = JobConf(
                name=f"{self.name}-flag",
                inputs=inputs,
                reducer=_ComponentFlaggingReducer(
                    multi_components,
                    {
                        comp.index: grid.partitioning_of(comp.index)
                        for comp in multi_components
                    },
                ),
                output=f"{self.name}/flags",
                num_reduce_tasks=max(
                    1,
                    sum(
                        len(grid.partitioning_of(comp.index))
                        for comp in multi_components
                    ),
                ),
                partitioner=RoundRobinKeyPartitioner(),
            )
            pipeline.run(flag_job)
            flags = set(file_system.read_dir(f"{self.name}/flags"))

        # ----- cycle 2: grid routing + join -----
        term_components = {
            str(term): graph.component_of(term).index for term in query.terms
        }
        terms_by_relation: Dict[str, List[Term]] = defaultdict(list)
        for term in query.terms:
            terms_by_relation[term.relation].append(term)

        join_job = JobConf(
            name=f"{self.name}-join",
            inputs=[
                InputSpec(
                    input_path(name),
                    _GridRouteMapper(
                        name,
                        terms_by_relation[name],
                        term_components,
                        grid,
                        frozenset(flags),
                    ),
                )
                for name in query.relations
            ],
            reducer=_GridJoinReducer(query, grid),
            output=f"{self.name}/output",
            num_reduce_tasks=max(1, len(grid.cells)),
            partitioner=RoundRobinKeyPartitioner(),
        )
        pipeline.run(join_job)

        tuples = list(file_system.read_dir(f"{self.name}/output"))
        return self._finish(
            query,
            pipeline,
            cost_model,
            tuples,
            consistent_reducers=len(grid.cells),
            total_reducers=grid.total_cells,
            shape={
                "grid_dimensions": grid.dimensions,
                "consistent_cells": len(grid.cells),
                "total_cells": grid.total_cells,
            },
        )

    def predict(self, query, profile, conf=None):
        from repro.core.predict import (
            analytic_grid,
            empty_prediction,
            exact_grid,
        )
        from repro.core.tuning import (
            CyclePrediction,
            PlanPrediction,
            PredictConfig,
            crossing_fraction,
            split_factor,
        )

        conf = conf or PredictConfig()
        self._check_query(query)
        if conf.exact:
            return exact_grid(self, query, conf)
        try:
            graph = JoinGraph(query)
        except UnsatisfiableQueryError:
            return empty_prediction(
                self.name, conf, "join graph unsatisfiable; no jobs run"
            )
        grid_parts = self.grid_parts or conf.num_partitions
        if isinstance(grid_parts, int):
            per_dim = [grid_parts] * len(graph.components)
        else:
            per_dim = list(grid_parts)
        grid = analytic_grid(graph, per_dim)
        cells = max(1, len(grid.cells))
        multi = [c for c in graph.components if len(c.terms) > 1]
        cycles = []
        flag_load = 0.0
        if multi:
            reads = 0.0
            out = 0.0
            for comp in multi:
                o = per_dim[comp.index]
                for term in comp.terms:
                    n = profile.rows_per_relation.get(term.relation, 0)
                    reads += n
                    out += n * split_factor(profile, o)
            reduce_tasks = max(1, sum(per_dim[c.index] for c in multi))
            flag_load = out / reduce_tasks
            cycles.append(
                CyclePrediction(
                    name=f"{self.name}-flag",
                    records_read=reads,
                    map_output_records=out,
                    shuffled_records=out,
                    reduce_tasks=reduce_tasks,
                    max_reducer_load=flag_load,
                )
            )
        reads = 0.0
        out = 0.0
        terms_by_relation: Dict[str, List[Term]] = defaultdict(list)
        for term in query.terms:
            terms_by_relation[term.relation].append(term)
        for name in query.relations:
            n = profile.rows_per_relation.get(name, 0)
            reads += n
            # Fraction of the consistent cells one row reaches: on each
            # of its term dimensions the coordinate is pinned (1/o), or —
            # for replicated rows of multi-term components — widened to
            # the upper tail range(q, o), (o+1)/(2o) on average.
            fraction = 1.0
            for term in terms_by_relation[name]:
                comp = graph.component_of(term)
                o = per_dim[comp.index]
                if len(comp.terms) > 1:
                    crossing = crossing_fraction(profile, o)
                    fraction *= (1.0 - crossing) / o + crossing * (
                        o + 1
                    ) / (2.0 * o)
                else:
                    fraction *= 1.0 / o
            out += n * len(grid.cells) * fraction
        join_load = out / cells
        cycles.append(
            CyclePrediction(
                name=f"{self.name}-join",
                records_read=reads,
                map_output_records=out,
                shuffled_records=out,
                reduce_tasks=cells,
                max_reducer_load=join_load,
            )
        )
        return PlanPrediction(
            algorithm=self.name,
            cost_model=conf.cost_model,
            cycles=tuple(cycles),
            max_reducer_load=max(flag_load, join_load),
            consistent_reducers=len(grid.cells),
            total_reducers=grid.total_cells,
        )


class AllSeqMatrix(GenMatrix):
    """All-Seq-Matrix (Section 8.1): the grid engine restricted to
    single-attribute hybrid queries (its original formulation)."""

    name = "all_seq_matrix"

    def _check_query(self, query: IntervalJoinQuery) -> None:
        if not query.is_single_attribute:
            raise PlanningError(
                "All-Seq-Matrix handles single-attribute queries; use "
                "Gen-Matrix for multi-attribute ones"
            )


class AllMatrix(GenMatrix):
    """All-Matrix (Section 7.1): the grid engine on pure sequence queries
    — one dimension per relation, a single MapReduce cycle."""

    name = "all_matrix"
    _required_class = QueryClass.SEQUENCE
