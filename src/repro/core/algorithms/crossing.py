"""Finding consistent-and-crossing interval sets (the heart of RCCIS).

Round one of RCCIS must decide, for every interval ``u`` starting inside a
partition ``p``, whether some interval-set containing ``u`` is *consistent*
(condition C1, Section 5.2), *crosses* ``p`` (condition C2, Section 5.3),
and can actually combine with a **later** partial tuple — only then does
replicating ``u`` rightward ever pay off.

The last clause deserves explanation.  Definition 5.3 applies crossing
obligations per boundary edge, so a set whose relation-set covers *all*
query relations has no obligations and "crosses" vacuously; likewise a set
whose absent relations are all enforced to start no later than the present
ones can only ever extend *leftward*.  The paper handles the first case by
remark ("note that an output tuple is not a crossing-set") and leaves the
second implicit; both are captured exactly by one structural condition we
call the **late escape**:

    some absent relation A has no enforced less-than-order path
    ``A <= ... <= X`` to any present relation X.

If every absent relation is order-dominated by the present set, every
completion's member starts are bounded by the present members' starts, so
the completed tuple's right-most member starts inside ``p`` and the tuple
is computed at ``p`` itself, where splitting already colocates everything
— no replication required.  Conversely (see DESIGN.md) any output tuple
whose right-most member starts after ``p`` induces, at ``p``, a presence
pattern with a late escape, so completeness is preserved.  This is what
makes RCCIS's replication counts tiny (the paper's Table 1).

Solving
-------
Membership is decided per *presence pattern*: for each subset of relations
taken as present (the candidate set's relation-set), the boundary edges to
absent relations become unary constraints (the B1/B2 crossing rules) and
the internal edges binary Allen constraints.  Patterns without a late
escape are skipped.  For each surviving pattern the CSP restricted to the
present relations is solved exactly: acyclic constraint graphs by two-pass
directional arc consistency (complete on trees), cyclic ones by
backtracking.  Support tests are vectorised with numpy and shared across
patterns.  The number of patterns is ``2^m - 1`` with ``m`` the number of
query relations — trivially small for real queries (the paper's maximum
is five).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.intervals.allen import AllenPredicate
from repro.intervals.interval import Interval
from repro.intervals.partitioning import Partitioning
from repro.intervals.sweep import join_pairs

__all__ = ["CrossingSetFinder", "has_late_escape"]

#: Above this many cells the dense vectorised predicate product is
#: replaced by an output-sensitive fill through the sweep kernels.
_DENSE_CELL_LIMIT = 16384

#: conditions keyed by relation name, as produced by
#: :meth:`repro.core.query.IntervalJoinQuery.conditions_as_triples`.
Condition = Tuple[str, AllenPredicate, str]


def _predicate_matrix(
    predicate: AllenPredicate,
    s1: np.ndarray,
    e1: np.ndarray,
    s2: np.ndarray,
    e2: np.ndarray,
) -> np.ndarray:
    """Boolean matrix ``M[i, j] = predicate(left_i, right_j)``.

    Vectorised mirror of the truth functions in
    :mod:`repro.intervals.allen` (kept in lockstep by a property test).
    """
    a_s = s1[:, None]
    a_e = e1[:, None]
    b_s = s2[None, :]
    b_e = e2[None, :]
    name = predicate.name
    if name == "before":
        return a_e < b_s
    if name == "after":
        return b_e < a_s
    if name == "meets":
        return (a_e == b_s) & (a_s < b_s) & (b_s < b_e)
    if name == "met_by":
        return (b_e == a_s) & (b_s < a_s) & (a_s < a_e)
    if name == "overlaps":
        return (a_s < b_s) & (b_s < a_e) & (a_e < b_e)
    if name == "overlapped_by":
        return (b_s < a_s) & (a_s < b_e) & (b_e < a_e)
    if name == "starts":
        return (a_s == b_s) & (a_e < b_e)
    if name == "started_by":
        return (b_s == a_s) & (b_e < a_e)
    if name == "during":
        return (b_s < a_s) & (a_e < b_e)
    if name == "contains":
        return (a_s < b_s) & (b_e < a_e)
    if name == "finishes":
        return (a_e == b_e) & (b_s < a_s)
    if name == "finished_by":
        return (b_e == a_e) & (a_s < b_s)
    if name == "equals":
        return (a_s == b_s) & (a_e == b_e)
    raise AssertionError(f"unhandled predicate {name}")  # pragma: no cover


def _support_matrix(
    predicate: AllenPredicate,
    s1: np.ndarray,
    e1: np.ndarray,
    s2: np.ndarray,
    e2: np.ndarray,
) -> np.ndarray:
    """``M[i, j] = predicate(left_i, right_j)``, computed densely for
    small sides and through the per-predicate sweep kernels
    (:func:`repro.intervals.sweep.join_pairs`) for large ones — the
    kernels enumerate only the true cells, so sparse support matrices
    cost ``O(n log n + k)`` instead of the full cross product."""
    if s1.size * s2.size <= _DENSE_CELL_LIMIT:
        return _predicate_matrix(predicate, s1, e1, s2, e2)
    left = [
        (Interval(float(s), float(e)), i)
        for i, (s, e) in enumerate(zip(s1, e1))
    ]
    right = [
        (Interval(float(s), float(e)), j)
        for j, (s, e) in enumerate(zip(s2, e2))
    ]
    matrix = np.zeros((s1.size, s2.size), dtype=bool)
    for (_, i), (_, j) in join_pairs(left, right, predicate):
        matrix[i, j] = True
    return matrix


def order_reachability(
    relations: Sequence[str], conditions: Sequence[Condition]
) -> Dict[str, Set[str]]:
    """``reach[A]`` = relations enforced (transitively) to start at or
    after ``A`` — i.e. all X with an order path ``A <= ... <= X``.
    ``A`` itself is not included."""
    successors: Dict[str, Set[str]] = {name: set() for name in relations}
    for left, predicate, right in conditions:
        if predicate.enforces_left_first():
            successors[left].add(right)
        if predicate.enforces_right_first():
            successors[right].add(left)
    reach: Dict[str, Set[str]] = {}
    for name in relations:
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for nxt in successors[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        reach[name] = seen
    return reach


def has_late_escape(
    present: FrozenSet[str],
    relations: Sequence[str],
    reach: Mapping[str, Set[str]],
) -> bool:
    """Whether some absent relation can contribute an interval starting
    after the partition (no order path into the present set)."""
    for name in relations:
        if name in present:
            continue
        if not (reach[name] & present):
            return True
    return False


class CrossingSetFinder:
    """Solves the replication decision for one partition of one query.

    Parameters
    ----------
    relations:
        The component's relation names (CSP variables).
    conditions:
        The component-internal conditions (colocation predicates in the
        paper's setting; the finder is predicate-agnostic).
    partitioning, partition_index:
        The partition whose crossing sets are sought.
    """

    #: Guard against pathological queries: 2^m patterns.
    MAX_RELATIONS = 16

    def __init__(
        self,
        relations: Sequence[str],
        conditions: Sequence[Condition],
        partitioning: Partitioning,
        partition_index: int,
    ) -> None:
        if len(relations) > self.MAX_RELATIONS:
            raise ValueError(
                f"crossing-set search over {len(relations)} relations "
                "would enumerate too many presence patterns"
            )
        self.relations = list(relations)
        relation_set = set(relations)
        self.conditions = [
            (left, pred, right)
            for left, pred, right in conditions
            if left in relation_set and right in relation_set
        ]
        self.partitioning = partitioning
        self.partition_index = partition_index
        self._adjacency: Dict[str, List[int]] = defaultdict(list)
        for index, (left, _, right) in enumerate(self.conditions):
            self._adjacency[left].append(index)
            self._adjacency[right].append(index)
        self._reach = order_reachability(self.relations, self.conditions)

    # ------------------------------------------------------------------
    def replicable(
        self, intervals_by_relation: Mapping[str, Sequence[Interval]]
    ) -> Dict[str, np.ndarray]:
        """For each relation, a boolean mask over its intervals: True when
        the interval belongs to some consistent crossing set with a late
        escape.

        ``intervals_by_relation`` must hold the intervals *intersecting*
        the partition (the reducer's split input); the caller restricts
        the returned mask to intervals *starting* in the partition before
        flagging.
        """
        starts: Dict[str, np.ndarray] = {}
        ends: Dict[str, np.ndarray] = {}
        out: Dict[str, np.ndarray] = {}
        for name in self.relations:
            ivs = list(intervals_by_relation.get(name, ()))
            starts[name] = np.array([iv.start for iv in ivs], dtype=float)
            ends[name] = np.array([iv.end for iv in ivs], dtype=float)
            out[name] = np.zeros(len(ivs), dtype=bool)

        crossing_left, crossing_right = self._crossing_masks(starts, ends)
        support = {
            index: _support_matrix(
                cond[1], starts[cond[0]], ends[cond[0]],
                starts[cond[2]], ends[cond[2]],
            )
            for index, cond in enumerate(self.conditions)
        }

        for r in range(1, len(self.relations) + 1):
            for present_tuple in itertools.combinations(self.relations, r):
                present = frozenset(present_tuple)
                if not has_late_escape(present, self.relations, self._reach):
                    continue
                if any(len(out[name]) == 0 for name in present):
                    continue
                feasible = self._solve_pattern(
                    present, out, crossing_left, crossing_right, support
                )
                if feasible is None:
                    continue
                for name, mask in feasible.items():
                    out[name] |= mask
        return out

    # ------------------------------------------------------------------
    def _crossing_masks(
        self, starts: Dict[str, np.ndarray], ends: Dict[str, np.ndarray]
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        part = self.partitioning.partition_interval(self.partition_index)
        last = self.partition_index == len(self.partitioning) - 1
        first = self.partition_index == 0
        crossing_left: Dict[str, np.ndarray] = {}
        crossing_right: Dict[str, np.ndarray] = {}
        for name in self.relations:
            left = starts[name] < part.start
            # The end point lies in a following partition exactly when it
            # reaches the right boundary (partitions are half-open).
            right = ends[name] >= part.end
            if first:
                left = np.zeros_like(left)
            if last:
                right = np.zeros_like(right)
            crossing_left[name] = left
            crossing_right[name] = right
        return crossing_left, crossing_right

    def _unary_mask(
        self,
        name: str,
        present: FrozenSet[str],
        domains: Mapping[str, np.ndarray],
        crossing_left: Mapping[str, np.ndarray],
        crossing_right: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """The B1/B2 crossing obligations toward absent partners, as a
        mask over ``name``'s intervals."""
        mask = np.ones(len(domains[name]), dtype=bool)
        for index in self._adjacency[name]:
            left, predicate, right = self.conditions[index]
            other = right if left == name else left
            if other in present or other == name:
                continue
            i_am_left = left == name
            if predicate.enforces_left_first():
                mask &= (
                    crossing_right[name] if i_am_left else crossing_left[name]
                )
            if predicate.enforces_right_first():
                mask &= (
                    crossing_left[name] if i_am_left else crossing_right[name]
                )
        return mask

    # ------------------------------------------------------------------
    def _solve_pattern(
        self,
        present: FrozenSet[str],
        domains: Mapping[str, np.ndarray],
        crossing_left: Mapping[str, np.ndarray],
        crossing_right: Mapping[str, np.ndarray],
        support: Mapping[int, np.ndarray],
    ) -> Optional[Dict[str, np.ndarray]]:
        """Feasible-value masks for one presence pattern, or None when the
        pattern admits no satisfying assignment."""
        unary = {
            name: self._unary_mask(
                name, present, domains, crossing_left, crossing_right
            )
            for name in present
        }
        if any(not unary[name].any() for name in present):
            return None

        internal = [
            index
            for index, (left, _, right) in enumerate(self.conditions)
            if left in present and right in present
        ]
        components = self._present_components(present, internal)
        feasible: Dict[str, np.ndarray] = {}
        for component_names, component_edges in components:
            solved = self._solve_component(
                component_names, component_edges, unary, support
            )
            if solved is None:
                return None
            feasible.update(solved)
        return feasible

    def _present_components(
        self, present: FrozenSet[str], internal: List[int]
    ) -> List[Tuple[List[str], List[int]]]:
        """Connected components of the pattern's internal constraint
        graph (cross-component members are mutually unconstrained)."""
        parent = {name: name for name in present}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for index in internal:
            left, _, right = self.conditions[index]
            ra, rb = find(left), find(right)
            if ra != rb:
                parent[ra] = rb

        groups: Dict[str, List[str]] = defaultdict(list)
        for name in sorted(present):
            groups[find(name)].append(name)
        out = []
        for members in groups.values():
            member_set = set(members)
            edges = [
                index
                for index in internal
                if self.conditions[index][0] in member_set
            ]
            out.append((members, edges))
        return out

    def _solve_component(
        self,
        names: List[str],
        edges: List[int],
        unary: Mapping[str, np.ndarray],
        support: Mapping[int, np.ndarray],
    ) -> Optional[Dict[str, np.ndarray]]:
        if self._edges_form_tree(names, edges):
            return self._solve_tree(names, edges, unary, support)
        return self._solve_backtracking(names, edges, unary, support)

    @staticmethod
    def _edges_form_tree(names: List[str], edges: List[int]) -> bool:
        # A connected graph is a tree iff |E| = |V| - 1 (multi-edges
        # between the same pair count as cycles, conservatively).
        return len(edges) == len(names) - 1

    # ------------------------------------------------------------------
    # Tree solver: two-pass directional arc consistency (complete on
    # trees: every surviving value extends to a full solution).
    # ------------------------------------------------------------------
    def _solve_tree(
        self,
        names: List[str],
        edges: List[int],
        unary: Mapping[str, np.ndarray],
        support: Mapping[int, np.ndarray],
    ) -> Optional[Dict[str, np.ndarray]]:
        adjacency: Dict[str, List[int]] = defaultdict(list)
        for index in edges:
            left, _, right = self.conditions[index]
            adjacency[left].append(index)
            adjacency[right].append(index)

        # BFS rooting.
        root = names[0]
        order: List[str] = [root]
        parent_edge: Dict[str, int] = {}
        visited = {root}
        cursor = 0
        while cursor < len(order):
            current = order[cursor]
            cursor += 1
            for index in adjacency[current]:
                left, _, right = self.conditions[index]
                neighbour = right if left == current else left
                if neighbour not in visited:
                    visited.add(neighbour)
                    parent_edge[neighbour] = index
                    order.append(neighbour)

        def message(target: str, source_mask: np.ndarray, index: int) -> np.ndarray:
            """Values of ``target`` supported across edge ``index`` by some
            allowed value of the other endpoint."""
            left, _, right = self.conditions[index]
            matrix = support[index]
            if target == left:
                if source_mask.any():
                    return matrix[:, source_mask].any(axis=1)
                return np.zeros(matrix.shape[0], dtype=bool)
            if source_mask.any():
                return matrix[source_mask, :].any(axis=0)
            return np.zeros(matrix.shape[1], dtype=bool)

        # Upward pass.
        up: Dict[str, np.ndarray] = {}
        children: Dict[str, List[str]] = defaultdict(list)
        for child, index in parent_edge.items():
            left, _, right = self.conditions[index]
            parent = right if left == child else left
            children[parent].append(child)
        for name in reversed(order):
            mask = np.array(unary[name], copy=True)
            for child in children[name]:
                mask &= message(name, up[child], parent_edge[child])
            up[name] = mask
        if not up[root].any():
            return None

        # Downward pass.
        down: Dict[str, np.ndarray] = {root: np.ones_like(up[root])}
        for name in order:
            if name == root:
                continue
            index = parent_edge[name]
            left, _, right = self.conditions[index]
            parent = right if left == name else left
            parent_mask = unary[parent] & down[parent]
            for sibling in children[parent]:
                if sibling != name:
                    parent_mask &= message(
                        parent, up[sibling], parent_edge[sibling]
                    )
            down[name] = message(name, parent_mask, index)

        return {name: up[name] & down[name] for name in names}

    # ------------------------------------------------------------------
    # Cyclic fallback: per-value backtracking satisfiability.
    # ------------------------------------------------------------------
    def _solve_backtracking(
        self,
        names: List[str],
        edges: List[int],
        unary: Mapping[str, np.ndarray],
        support: Mapping[int, np.ndarray],
    ) -> Optional[Dict[str, np.ndarray]]:
        adjacency: Dict[str, List[int]] = defaultdict(list)
        for index in edges:
            left, _, right = self.conditions[index]
            adjacency[left].append(index)
            adjacency[right].append(index)

        candidates = {
            name: list(np.nonzero(unary[name])[0]) for name in names
        }

        def consistent(name: str, value: int, assignment: Dict[str, int]) -> bool:
            for index in adjacency[name]:
                left, _, right = self.conditions[index]
                other = right if left == name else left
                if other not in assignment:
                    continue
                matrix = support[index]
                if left == name:
                    if not matrix[value, assignment[other]]:
                        return False
                else:
                    if not matrix[assignment[other], value]:
                        return False
            return True

        def satisfiable(pinned: str, value: int) -> bool:
            assignment = {pinned: value}
            rest = [n for n in names if n != pinned]

            def extend(k: int) -> bool:
                if k == len(rest):
                    return True
                name = rest[k]
                for choice in candidates[name]:
                    if consistent(name, choice, assignment):
                        assignment[name] = choice
                        if extend(k + 1):
                            return True
                        del assignment[name]
                return False

            return extend(0)

        out: Dict[str, np.ndarray] = {}
        any_solution = False
        for name in names:
            mask = np.zeros(len(unary[name]), dtype=bool)
            for value in candidates[name]:
                if satisfiable(name, int(value)):
                    mask[value] = True
                    any_solution = True
            out[name] = mask
        if not any_solution:
            return None
        return out
