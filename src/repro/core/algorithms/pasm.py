"""Pruned-All-Seq-Matrix — PASM (Section 8.2).

All-Seq-Matrix plus a pruning cycle: an interval that does not appear in
the output of its component's colocation sub-query cannot appear in any
output tuple of the full query, so it need not be shipped to the grid at
all.  Three MapReduce cycles:

1. the RCCIS flagging cycle (shared with All-Seq-Matrix);
2. a *marking* cycle that computes each multi-relation component's
   colocation join and records which rows participate;
3. the grid routing + join cycle, restricted to the marked rows.

When pruning removes little, the extra cycle makes PASM slightly slower
than All-Seq-Matrix — the trade-off Table 3 quantifies.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

from repro.errors import PlanningError, UnsatisfiableQueryError
from repro.core.algorithms.base import JoinAlgorithm, input_path
from repro.core.algorithms.gen_matrix import (
    FlagKey,
    GridSpec,
    _ComponentFlaggingReducer,
    _ComponentSplitMapper,
    _GridJoinReducer,
    _GridRouteMapper,
)
from repro.core.graph import JoinGraph
from repro.core.local import LocalJoiner
from repro.core.query import IntervalJoinQuery, Term
from repro.core.results import ExecutionMetrics, JoinResult
from repro.core.schema import Relation, Row
from repro.intervals.partitioning import Partitioning
from repro.obs.recorder import TraceRecorder
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.shuffle import RoundRobinKeyPartitioner
from repro.mapreduce.task import MapContext, Mapper, ReduceContext, Reducer

__all__ = ["PASM"]


class _ComponentRouteMapper(Mapper):
    """Marking-cycle map: RCCIS cycle-2 routing (replicate flagged /
    project unflagged) within one component's 1-dim partitioning, keyed
    by (component, partition)."""

    def __init__(
        self,
        term: Term,
        component: int,
        partitioning: Partitioning,
        flags: FrozenSet[FlagKey],
    ) -> None:
        self.term = term
        self.component = component
        self.partitioning = partitioning
        self.flags = flags

    def map(self, record: Row, context: MapContext) -> None:
        interval = record.interval(self.term.attribute)
        key = (self.term.relation, record.rid, self.term.attribute)
        if key in self.flags:
            targets = list(self.partitioning.replicate(interval))
        else:
            targets = [self.partitioning.project(interval)]
        for index in targets:
            context.emit(
                (self.component, index), (self.term.relation, record)
            )


class _MarkingReducer(Reducer):
    """Marking-cycle reduce: join one component's colocation sub-query at
    one partition; emit the participating ``(relation, rid)`` pairs."""

    def __init__(
        self,
        subqueries: Mapping[int, IntervalJoinQuery],
        attributes: Mapping[str, str],
        partitioning: Partitioning,
    ) -> None:
        self.subqueries = dict(subqueries)
        self.attributes = dict(attributes)
        self.partitioning = partitioning

    def reduce(
        self,
        key: Hashable,
        values: List[Tuple[str, Row]],
        context: ReduceContext,
    ) -> None:
        component_index, partition = key  # type: ignore[misc]
        subquery = self.subqueries[component_index]
        rows_by_relation: Dict[str, List[Row]] = defaultdict(list)
        for relation, row in values:
            rows_by_relation[relation].append(row)
        def is_local(name: str, row: Row) -> bool:
            return (
                self.partitioning.locate(
                    row.interval(self.attributes[name]).start
                )
                == partition
            )

        local_rows: Dict[str, List[Row]] = {}
        old_rows: Dict[str, List[Row]] = {}
        for name, rows in rows_by_relation.items():
            local_rows[name] = [r for r in rows if is_local(name, r)]
            old_rows[name] = [r for r in rows if not is_local(name, r)]

        def count(n: int) -> None:
            context.counters.increment("work", "comparisons", n)

        # Exactly-once decomposition by the last local member, as in the
        # RCCIS JoinReducer.
        names = list(subquery.relations)
        seen: Set[Tuple[str, int]] = set()
        for k, anchor in enumerate(names):
            if not local_rows.get(anchor):
                continue
            candidates: Dict[str, List[Row]] = {}
            for j, name in enumerate(names):
                if j < k:
                    candidates[name] = rows_by_relation.get(name, [])
                elif j == k:
                    candidates[name] = local_rows[anchor]
                else:
                    candidates[name] = old_rows.get(name, [])
            joiner = LocalJoiner(subquery, count, start_with=anchor)
            for tuple_rows in joiner.join(candidates):
                for name, row in zip(subquery.relations, tuple_rows):
                    mark = (name, row.rid)
                    if mark not in seen:
                        seen.add(mark)
                        context.emit(mark)


class _PrunedGridRouteMapper(_GridRouteMapper):
    """Grid routing that drops rows pruned by the marking cycle."""

    def __init__(self, *args, keep: Optional[FrozenSet[int]], **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: surviving rids for this relation; None = relation not pruned.
        self.keep = keep

    def map(self, record: Row, context: MapContext) -> None:
        if self.keep is not None and record.rid not in self.keep:
            context.counters.increment("join", "pruned_rows")
            return
        super().map(record, context)


class PASM(JoinAlgorithm):
    """Pruned-All-Seq-Matrix (three cycles)."""

    name = "pasm"

    def __init__(self, grid_parts: Optional[int] = None) -> None:
        self.grid_parts = grid_parts

    def run(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        *,
        num_partitions: int = 16,
        fs: Optional[FileSystem] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        partitioning: Optional[Partitioning] = None,
        partition_strategy: str = "uniform",
        observer: Optional[TraceRecorder] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> JoinResult:
        if not query.is_single_attribute:
            raise PlanningError(
                "PASM handles single-attribute queries; use Gen-Matrix "
                "with pruning disabled for multi-attribute ones"
            )
        try:
            graph = JoinGraph(query)
        except UnsatisfiableQueryError:
            return JoinResult(query, [], ExecutionMetrics(algorithm=self.name))
        grid_parts = self.grid_parts or num_partitions
        file_system, pipeline, parts = self._setup(
            query, data, grid_parts, fs, executor,
            partitioning, partition_strategy,
            observer=observer, cost_model=cost_model, workers=workers,
            faults=faults, max_attempts=max_attempts, speculative=speculative,
            data_plane=data_plane,
        )
        grid = GridSpec(graph, parts)
        multi_components = [
            comp for comp in graph.components if len(comp.terms) > 1
        ]
        attributes = {
            name: query.attributes_of(name)[0] for name in query.relations
        }

        # ----- cycle 1: flagging -----
        flags: Set[FlagKey] = set()
        if multi_components:
            flag_job = JobConf(
                name="pasm-flag",
                inputs=[
                    InputSpec(
                        input_path(term.relation),
                        _ComponentSplitMapper(term, comp.index, parts),
                    )
                    for comp in multi_components
                    for term in sorted(comp.terms)
                ],
                reducer=_ComponentFlaggingReducer(
                    multi_components,
                    {comp.index: parts for comp in multi_components},
                ),
                output="pasm/flags",
                num_reduce_tasks=max(1, len(parts) * len(multi_components)),
                partitioner=RoundRobinKeyPartitioner(),
            )
            pipeline.run(flag_job)
            flags = set(file_system.read_dir("pasm/flags"))

        # ----- cycle 2: marking (component colocation joins) -----
        keep: Dict[str, Set[int]] = {}
        if multi_components:
            subqueries = {
                comp.index: IntervalJoinQuery(list(comp.conditions))
                for comp in multi_components
            }
            mark_job = JobConf(
                name="pasm-mark",
                inputs=[
                    InputSpec(
                        input_path(term.relation),
                        _ComponentRouteMapper(
                            term, comp.index, parts, frozenset(flags)
                        ),
                    )
                    for comp in multi_components
                    for term in sorted(comp.terms)
                ],
                reducer=_MarkingReducer(subqueries, attributes, parts),
                output="pasm/marks",
                num_reduce_tasks=max(1, len(parts) * len(multi_components)),
                partitioner=RoundRobinKeyPartitioner(),
            )
            pipeline.run(mark_job)
            for relation, rid in file_system.read_dir("pasm/marks"):
                keep.setdefault(relation, set()).add(rid)
            # Relations in multi-relation components but absent from the
            # marks are fully pruned (empty keep set, not "unpruned").
            for comp in multi_components:
                for term in comp.terms:
                    keep.setdefault(term.relation, set())

        # ----- cycle 3: pruned grid join -----
        term_components = {
            str(term): graph.component_of(term).index for term in query.terms
        }
        terms_by_relation: Dict[str, List[Term]] = defaultdict(list)
        for term in query.terms:
            terms_by_relation[term.relation].append(term)
        join_job = JobConf(
            name="pasm-join",
            inputs=[
                InputSpec(
                    input_path(name),
                    _PrunedGridRouteMapper(
                        name,
                        terms_by_relation[name],
                        term_components,
                        grid,
                        frozenset(flags),
                        keep=(
                            frozenset(keep[name]) if name in keep else None
                        ),
                    ),
                )
                for name in query.relations
            ],
            reducer=_GridJoinReducer(query, grid),
            output="pasm/output",
            num_reduce_tasks=max(1, len(grid.cells)),
            partitioner=RoundRobinKeyPartitioner(),
        )
        pipeline.run(join_job)

        tuples = list(file_system.read_dir("pasm/output"))
        result = self._finish(
            query,
            pipeline,
            cost_model,
            tuples,
            consistent_reducers=len(grid.cells),
            total_reducers=grid.total_cells,
            shape={
                "grid_dimensions": grid.dimensions,
                "consistent_cells": len(grid.cells),
                "total_cells": grid.total_cells,
                "cycles": 3,
            },
        )
        return result

    def predict(self, query, profile, conf=None):
        from repro.core.predict import (
            analytic_grid,
            empty_prediction,
            exact_pasm,
        )
        from repro.core.tuning import (
            CyclePrediction,
            PlanPrediction,
            PredictConfig,
            crossing_fraction,
            replicate_fanout,
            split_factor,
        )

        conf = conf or PredictConfig()
        if not query.is_single_attribute:
            raise PlanningError("PASM handles single-attribute queries")
        if conf.exact:
            return exact_pasm(self, query, conf)
        try:
            graph = JoinGraph(query)
        except UnsatisfiableQueryError:
            return empty_prediction(
                self.name, conf, "join graph unsatisfiable; no jobs run"
            )
        o = self.grid_parts or conf.num_partitions
        grid = analytic_grid(graph, [o] * len(graph.components))
        cells = max(1, len(grid.cells))
        multi = [c for c in graph.components if len(c.terms) > 1]
        cycles = []
        flag_mark_load = 0.0
        if multi:
            crossing = crossing_fraction(profile, o)
            multi_reads = 0.0
            for comp in multi:
                for term in comp.terms:
                    multi_reads += profile.rows_per_relation.get(
                        term.relation, 0
                    )
            out_flag = multi_reads * split_factor(profile, o)
            out_mark = multi_reads * (
                (1.0 - crossing) + crossing * replicate_fanout(o)
            )
            reduce_tasks = max(1, o * len(multi))
            cycles.append(
                CyclePrediction(
                    name="pasm-flag",
                    records_read=multi_reads,
                    map_output_records=out_flag,
                    shuffled_records=out_flag,
                    reduce_tasks=reduce_tasks,
                    max_reducer_load=out_flag / reduce_tasks,
                )
            )
            cycles.append(
                CyclePrediction(
                    name="pasm-mark",
                    records_read=multi_reads,
                    map_output_records=out_mark,
                    shuffled_records=out_mark,
                    reduce_tasks=reduce_tasks,
                    max_reducer_load=out_mark / reduce_tasks,
                )
            )
            # Flag + mark cycles share the (component, partition) key
            # space, so their loads collide and sum.
            flag_mark_load = (out_flag + out_mark) / reduce_tasks
        reads = 0.0
        out = 0.0
        terms_by_relation: Dict[str, List[Term]] = defaultdict(list)
        for term in query.terms:
            terms_by_relation[term.relation].append(term)
        for name in query.relations:
            n = profile.rows_per_relation.get(name, 0)
            reads += n
            fraction = 1.0
            for term in terms_by_relation[name]:
                comp = graph.component_of(term)
                if len(comp.terms) > 1:
                    crossing = crossing_fraction(profile, o)
                    fraction *= (1.0 - crossing) / o + crossing * (
                        o + 1
                    ) / (2.0 * o)
                else:
                    fraction *= 1.0 / o
            out += n * len(grid.cells) * fraction
        join_load = out / cells
        cycles.append(
            CyclePrediction(
                name="pasm-join",
                records_read=reads,
                map_output_records=out,
                shuffled_records=out,
                reduce_tasks=cells,
                max_reducer_load=join_load,
            )
        )
        return PlanPrediction(
            algorithm=self.name,
            cost_model=conf.cost_model,
            cycles=tuple(cycles),
            max_reducer_load=max(flag_mark_load, join_load),
            consistent_reducers=len(grid.cells),
            total_reducers=grid.total_cells,
            notes=(
                "marking-cycle pruning not modelled: the join cycle is "
                "an upper bound (assumes every row survives)",
            ),
        )
