"""All-Replicate — the naive single-cycle baseline (Section 6).

Projects a relation provably maximal under the query's less-than-orders
(every output tuple's right-most interval comes from it) and replicates
every other relation; when no relation is provably maximal all relations
are replicated.  Reducer ``p`` joins what it receives and emits the tuples
whose right-most member starts in ``p``, which makes the output
exactly-once even when everything is replicated.

Works for any single-attribute query (colocation, sequence or hybrid) —
at a communication cost the paper's efficient algorithms exist to avoid.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import PlanningError
from repro.core.algorithms.base import JoinAlgorithm, input_path
from repro.core.algorithms.rccis import JoinReducer
from repro.core.query import IntervalJoinQuery
from repro.core.results import JoinResult
from repro.core.schema import Relation, Row
from repro.intervals.partitioning import Partitioning
from repro.obs.recorder import TraceRecorder
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.shuffle import RoundRobinKeyPartitioner
from repro.mapreduce.task import MapContext, Mapper

__all__ = ["AllReplicate", "maximal_relations"]


def maximal_relations(query: IntervalJoinQuery) -> List[str]:
    """Relations provably right-most under the enforced less-than orders.

    ``R`` qualifies when every other relation is transitively enforced to
    start no later than ``R`` — then in every output tuple an ``R`` row is
    (one of) the right-most member(s), so projecting ``R`` is safe.
    """
    # successor[a] = relations enforced to start at-or-after a.
    reachable: Dict[str, Set[str]] = {
        name: {name} for name in query.relations
    }
    edges: List[Tuple[str, str]] = []
    for cond in query.conditions:
        if cond.predicate.enforces_left_first():
            edges.append((cond.left.relation, cond.right.relation))
        if cond.predicate.enforces_right_first():
            edges.append((cond.right.relation, cond.left.relation))
    changed = True
    while changed:
        changed = False
        for a, b in edges:
            update = reachable[a] | reachable[b]
            if update != reachable[a]:
                reachable[a] = update
                changed = True
    # R is maximal when R is reachable (<=-wise) from every relation.
    out = [
        name
        for name in query.relations
        if all(name in reachable[other] for other in query.relations)
    ]
    return out


class _ReplicateMapper(Mapper):
    """Replicates one relation's rows to the start partition onward."""

    def __init__(
        self, relation: str, attribute: str, partitioning: Partitioning
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        self.partitioning = partitioning

    def map(self, record: Row, context: MapContext) -> None:
        targets = list(
            self.partitioning.replicate(record.interval(self.attribute))
        )
        context.counters.increment("join", "replicated_intervals")
        context.counters.increment("join", "replicated_pairs", len(targets))
        for index in targets:
            context.emit(index, (self.relation, record))


class _ProjectMapper(Mapper):
    """Projects one relation's rows onto their start partition."""

    def __init__(
        self, relation: str, attribute: str, partitioning: Partitioning
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        self.partitioning = partitioning

    def map(self, record: Row, context: MapContext) -> None:
        index = self.partitioning.project(record.interval(self.attribute))
        context.emit(index, (self.relation, record))


class AllReplicate(JoinAlgorithm):
    """The replicate-everything single-cycle baseline."""

    name = "all_replicate"

    def run(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        *,
        num_partitions: int = 16,
        fs: Optional[FileSystem] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        partitioning: Optional[Partitioning] = None,
        partition_strategy: str = "uniform",
        observer: Optional[TraceRecorder] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> JoinResult:
        if not query.is_single_attribute:
            raise PlanningError(
                "All-Replicate handles single-attribute queries; use "
                "Gen-Matrix for multi-attribute ones"
            )
        file_system, pipeline, parts = self._setup(
            query, data, num_partitions, fs, executor,
            partitioning, partition_strategy,
            observer=observer, cost_model=cost_model, workers=workers,
            faults=faults, max_attempts=max_attempts, speculative=speculative,
            data_plane=data_plane,
        )
        attributes = {
            name: query.attributes_of(name)[0] for name in query.relations
        }
        maximal = maximal_relations(query)
        projected = maximal[0] if maximal else None

        inputs = []
        for name in query.relations:
            if name == projected:
                mapper: Mapper = _ProjectMapper(name, attributes[name], parts)
            else:
                mapper = _ReplicateMapper(name, attributes[name], parts)
            inputs.append(InputSpec(input_path(name), mapper))

        job = JobConf(
            name="all-replicate",
            inputs=inputs,
            reducer=JoinReducer(query, attributes, parts),
            output="allrep/output",
            num_reduce_tasks=num_partitions,
            partitioner=RoundRobinKeyPartitioner(),
        )
        pipeline.run(job)

        tuples = list(file_system.read_dir("allrep/output"))
        return self._finish(
            query, pipeline, cost_model, tuples,
            shape={
                "partition_intervals": len(parts),
                "replicated_relations": len(query.relations)
                - (1 if projected is not None else 0),
                "cycles": 1,
            },
        )

    def predict(self, query, profile, conf=None):
        from repro.core.predict import exact_all_replicate
        from repro.core.tuning import (
            CyclePrediction,
            PlanPrediction,
            PredictConfig,
            replicate_fanout,
        )

        conf = conf or PredictConfig()
        if conf.exact:
            return exact_all_replicate(self, query, conf)
        parts = conf.num_partitions
        maximal = maximal_relations(query)
        projected = maximal[0] if maximal else None
        reads = 0.0
        out = 0.0
        for name in query.relations:
            n = profile.rows_per_relation.get(name, 0)
            reads += n
            out += n * (1.0 if name == projected else replicate_fanout(parts))
        load = out / parts
        cycle = CyclePrediction(
            name="all-replicate",
            records_read=reads,
            map_output_records=out,
            shuffled_records=out,
            reduce_tasks=parts,
            max_reducer_load=load,
        )
        return PlanPrediction(
            algorithm=self.name,
            cost_model=conf.cost_model,
            cycles=(cycle,),
            max_reducer_load=load,
            consistent_reducers=parts,
            total_reducers=parts,
        )
