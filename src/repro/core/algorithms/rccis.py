"""RCCIS — Replicate Consistent And Crossing Interval Sets (Section 6.1).

The paper's algorithm for multi-way colocation joins over a single
interval attribute.  Two MapReduce cycles:

1. **Flagging.**  Every relation is *split*, so reducer ``p`` receives all
   intervals intersecting partition-interval ``p``.  The reducer finds the
   intervals that belong to some consistent interval-set crossing ``p``
   (conditions C1 + C2, solved by
   :class:`~repro.core.algorithms.crossing.CrossingSetFinder`) and writes
   each interval *starting* in ``p`` back to disk exactly once, flagged
   for replication when it participates in such a set.
2. **Join.**  Flagged intervals are *replicated* (start partition and all
   following), the rest are *projected*.  Reducer ``p`` joins the rows it
   receives and emits exactly the tuples whose right-most member starts in
   ``p`` — the reducer the paper assigns each output tuple to.

Intra-component sequence conditions are not supported here (RCCIS is the
colocation-query algorithm); the planner routes other query classes to
All-Matrix / All-Seq-Matrix / Gen-Matrix.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.columnar.batch import ColumnValues, reduce_columns
from repro.core.algorithms.base import JoinAlgorithm, input_path
from repro.core.local import LocalJoiner
from repro.core.query import IntervalJoinQuery, QueryClass
from repro.core.results import JoinResult
from repro.core.schema import Relation, Row
from repro.core.algorithms.crossing import CrossingSetFinder
from repro.intervals.partitioning import Partitioning
from repro.obs.recorder import TraceRecorder
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import InputSpec, JobConf
from repro.mapreduce.shuffle import RoundRobinKeyPartitioner
from repro.mapreduce.task import MapContext, Mapper, ReduceContext, Reducer

__all__ = ["RCCIS", "SplitMapper", "FlaggingReducer", "RouteMapper", "JoinReducer"]


class SplitMapper(Mapper):
    """Cycle 1 map: split one relation's rows over the partitioning."""

    def __init__(
        self, relation: str, attribute: str, partitioning: Partitioning
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        self.partitioning = partitioning

    def map(self, record: Row, context: MapContext) -> None:
        interval = record.interval(self.attribute)
        for index in self.partitioning.split(interval):
            context.emit(index, (self.relation, record))


class FlaggingReducer(Reducer):
    """Cycle 1 reduce: decide replication flags for rows starting here."""

    def __init__(
        self,
        query: IntervalJoinQuery,
        relations: Sequence[str],
        attributes: Mapping[str, str],
        partitioning: Partitioning,
    ) -> None:
        self.query = query
        self.relations = list(relations)
        self.attributes = dict(attributes)
        self.partitioning = partitioning
        self.conditions = query.conditions_as_triples()

    def reduce(
        self, key: Hashable, values: List[Tuple[str, Row]], context: ReduceContext
    ) -> None:
        partition = int(key)
        rows_by_relation: Dict[str, List[Row]] = defaultdict(list)
        for relation, row in values:
            rows_by_relation[relation].append(row)
        intervals = {
            relation: [
                row.interval(self.attributes[relation]) for row in rows
            ]
            for relation, rows in rows_by_relation.items()
        }
        finder = CrossingSetFinder(
            self.relations,
            [c for c in self.conditions],
            self.partitioning,
            partition,
        )
        masks = finder.replicable(intervals)
        for relation, rows in rows_by_relation.items():
            mask = masks.get(relation)
            for index, row in enumerate(rows):
                interval = intervals[relation][index]
                if self.partitioning.project(interval) != partition:
                    continue  # flagged (or not) by its own start partition
                flagged = bool(mask[index]) if mask is not None else False
                if flagged:
                    context.counters.increment("join", "replicated_intervals")
                context.emit((relation, row, flagged))


class RouteMapper(Mapper):
    """Cycle 2 map: replicate flagged rows, project the rest."""

    columnar_key_kind = "int"

    def __init__(self, attributes: Mapping[str, str], partitioning: Partitioning):
        self.attributes = dict(attributes)
        self.partitioning = partitioning

    def map(
        self, record: Tuple[str, Row, bool], context: MapContext
    ) -> None:
        relation, row, flagged = record
        interval = row.interval(self.attributes[relation])
        if flagged:
            targets = list(self.partitioning.replicate(interval))
            context.counters.increment(
                "join", "replicated_pairs", len(targets)
            )
            for index in targets:
                context.emit(index, (relation, row))
        else:
            context.emit(self.partitioning.project(interval), (relation, row))

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        return True

    def encode_intervals(self, records):
        import numpy as np

        starts = np.empty(len(records), dtype=np.float64)
        ends = np.empty(len(records), dtype=np.float64)
        for i, (relation, row, _flagged) in enumerate(records):
            interval = row.interval(self.attributes[relation])
            starts[i] = interval.start
            ends[i] = interval.end
        return starts, ends

    def map_columns(self, starts, ends, records):
        import numpy as np

        from repro.columnar.batch import MapBlock, ranged_targets

        n = len(records)
        flags = np.fromiter(
            (bool(record[2]) for record in records), dtype=bool, count=n
        )
        tags: List[str] = []
        index_of: Dict[str, int] = {}
        tag_of_record = np.empty(n, dtype=np.int16)
        for i, (relation, _row, _flagged) in enumerate(records):
            code = index_of.get(relation)
            if code is None:
                code = index_of[relation] = len(tags)
                tags.append(relation)
            tag_of_record[i] = code
        lo = self.partitioning.locate_array(starts)
        hi = np.where(
            flags, np.int64(len(self.partitioning) - 1), lo
        ).astype(np.int64)
        key_codes, row_idx = ranged_targets(lo, hi)
        counters: Dict[Tuple[str, str], int] = {}
        replicated = int((hi[flags] - lo[flags] + 1).sum()) if n else 0
        if replicated:
            counters[("join", "replicated_pairs")] = replicated
        return MapBlock(
            key_codes, row_idx, tag_of_record[row_idx], tags, counters
        )

    def value_of(self, record: Tuple[str, Row, bool]):
        return (record[0], record[1])


class JoinReducer(Reducer):
    """Cycle 2 reduce: join received rows; emit tuples owned by this
    partition (right-most member starts here).

    Every row a cycle-2 reducer receives starts in this partition or an
    earlier one (projection pins, replication goes rightward), so the
    reducer owns a tuple iff at least one member is *local* (starts
    here).  Enumeration is decomposed by the highest-indexed local
    member: run ``k`` anchors relation ``k`` on its local rows, allows
    any rows for relations before ``k``, and only *non-local* rows for
    relations after ``k``.  Each owned tuple is produced by exactly one
    run (the one anchored at its last local member) and combinations of
    purely replicated rows — owned by earlier partitions — are never
    enumerated, so the reducer's work stays proportional to its own
    output.
    """

    def __init__(
        self,
        query: IntervalJoinQuery,
        attributes: Mapping[str, str],
        partitioning: Partitioning,
    ) -> None:
        self.query = query
        self.attributes = dict(attributes)
        self.partitioning = partitioning

    def reduce(
        self, key: Hashable, values: List[Tuple[str, Row]], context: ReduceContext
    ) -> None:
        if isinstance(values, ColumnValues):
            reduce_columns(self, key, values, context)
            return
        self._reduce_pairs(key, values, context.emit, context.counters)

    def _reduce_pairs(self, key, values, emit, counters) -> None:
        """The join body, shared by both data planes: ``values`` is any
        iterable of ``(relation, row)`` pairs where ``row`` answers
        ``interval(attribute)`` (real rows, or columnar proxies)."""
        partition = int(key)
        rows_by_relation: Dict[str, List[Row]] = defaultdict(list)
        for relation, row in values:
            rows_by_relation[relation].append(row)

        def is_local(name: str, row: Row) -> bool:
            return (
                self.partitioning.locate(
                    row.interval(self.attributes[name]).start
                )
                == partition
            )

        local_rows: Dict[str, List[Row]] = {}
        old_rows: Dict[str, List[Row]] = {}
        for name, rows in rows_by_relation.items():
            local_rows[name] = [r for r in rows if is_local(name, r)]
            old_rows[name] = [r for r in rows if not is_local(name, r)]

        def count(n: int) -> None:
            counters.increment("work", "comparisons", n)

        names = list(self.query.relations)
        for k, anchor in enumerate(names):
            if not local_rows.get(anchor):
                continue
            candidates: Dict[str, List[Row]] = {}
            for j, name in enumerate(names):
                if j < k:
                    candidates[name] = rows_by_relation.get(name, [])
                elif j == k:
                    candidates[name] = local_rows[anchor]
                else:
                    candidates[name] = old_rows.get(name, [])
            # Built per call: this reducer instance is shared across
            # concurrently-running tasks under the threads executor, so
            # a cached joiner's count callback would attribute one
            # task's comparisons to another's counters.
            joiner = LocalJoiner(self.query, count, start_with=anchor)
            for tuple_rows in joiner.join(candidates):
                emit(tuple_rows)

    # -- columnar protocol (see repro.mapreduce.task) -------------------
    def columnar_ready(self) -> bool:
        # Columnar proxies answer ``interval()`` with the routing
        # interval regardless of attribute name, which is only sound
        # when every relation joins on a single attribute.
        return self.query.is_single_attribute

    def columnar_outputs(self, key, values: ColumnValues, counters):
        outputs: List[Tuple] = []
        self._reduce_pairs(
            key, values.tagged_proxies(), outputs.append, counters
        )
        for tuple_rows in outputs:
            yield tuple(proxy.gid for proxy in tuple_rows)

    def materialize_output(self, out, store):
        return tuple(store.value(gid)[1] for gid in out)


class RCCIS(JoinAlgorithm):
    """The paper's two-cycle colocation join algorithm."""

    name = "rccis"
    columnar_capable = True

    def run(
        self,
        query: IntervalJoinQuery,
        data: Mapping[str, Relation],
        *,
        num_partitions: int = 16,
        fs: Optional[FileSystem] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        partitioning: Optional[Partitioning] = None,
        partition_strategy: str = "uniform",
        observer: Optional[TraceRecorder] = None,
        faults=None,
        max_attempts: Optional[int] = None,
        speculative: Optional[bool] = None,
        data_plane: Optional[str] = None,
    ) -> JoinResult:
        if query.query_class is not QueryClass.COLOCATION:
            raise PlanningError(
                "RCCIS handles colocation queries; got "
                f"{query.query_class.name} — use the planner"
            )
        file_system, pipeline, parts = self._setup(
            query, data, num_partitions, fs, executor,
            partitioning, partition_strategy,
            observer=observer, cost_model=cost_model, workers=workers,
            faults=faults, max_attempts=max_attempts, speculative=speculative,
            data_plane=data_plane,
        )
        attributes = {
            name: query.attributes_of(name)[0] for name in query.relations
        }

        flag_job = JobConf(
            name="rccis-flag",
            inputs=[
                InputSpec(
                    input_path(name),
                    SplitMapper(name, attributes[name], parts),
                )
                for name in query.relations
            ],
            reducer=FlaggingReducer(query, query.relations, attributes, parts),
            output="rccis/flags",
            num_reduce_tasks=num_partitions,
            partitioner=RoundRobinKeyPartitioner(),
        )
        pipeline.run(flag_job)

        join_job = JobConf(
            name="rccis-join",
            inputs=[InputSpec("rccis/flags", RouteMapper(attributes, parts))],
            reducer=JoinReducer(query, attributes, parts),
            output="rccis/output",
            num_reduce_tasks=num_partitions,
            partitioner=RoundRobinKeyPartitioner(),
        )
        pipeline.run(join_job)

        tuples = list(file_system.read_dir("rccis/output"))
        return self._finish(
            query, pipeline, cost_model, tuples,
            shape={"partition_intervals": len(parts), "cycles": 2},
        )

    def predict(self, query, profile, conf=None):
        from repro.core.predict import exact_rccis
        from repro.core.tuning import (
            CyclePrediction,
            PlanPrediction,
            PredictConfig,
            crossing_fraction,
            replicate_fanout,
            split_factor,
        )

        conf = conf or PredictConfig()
        if conf.exact:
            return exact_rccis(self, query, conf)
        parts = conf.num_partitions
        n = profile.total_rows
        out_flag = n * split_factor(profile, parts)
        crossing = crossing_fraction(profile, parts)
        # Flag records: each row re-emerges exactly once (at the partition
        # its interval starts in), flagged or not.
        out_join = n * (
            (1.0 - crossing) + crossing * replicate_fanout(parts)
        )
        cycles = (
            CyclePrediction(
                name="rccis-flag",
                records_read=float(n),
                map_output_records=out_flag,
                shuffled_records=out_flag,
                reduce_tasks=parts,
                max_reducer_load=out_flag / parts,
            ),
            CyclePrediction(
                name="rccis-join",
                records_read=float(n),
                map_output_records=out_join,
                shuffled_records=out_join,
                reduce_tasks=parts,
                max_reducer_load=out_join / parts,
            ),
        )
        # Both cycles key by partition index, so loads collide and sum.
        return PlanPrediction(
            algorithm=self.name,
            cost_model=conf.cost_model,
            cycles=cycles,
            max_reducer_load=(out_flag + out_join) / parts,
            consistent_reducers=parts,
            total_reducers=parts,
        )
