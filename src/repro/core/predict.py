"""Exact-tier plan prediction: dry-run mappers, never join reducers.

``JoinAlgorithm.predict`` has two tiers.  The *analytic* tier (the
default, implemented per algorithm next to its ``run``) evaluates the
closed-form Section-6 formulas from a :class:`~repro.core.tuning.DataProfile`
alone.  The *exact* tier here reproduces the run's communication counters
bit-for-bit by driving the algorithm's **real** mapper classes (and the
flag/mark decision reducers that feed later cycles) over the actual data
through real :class:`~repro.mapreduce.task.MapContext` objects — while
never executing a join reducer, so predicting stays far cheaper than
running and cannot be mistaken for a second execution.  Composite
intermediates (cascade partials, FCTS component results) come from the
reference-join oracle / direct condition evaluation instead.

Per-key reducer loads are accumulated across cycles exactly the way
``ExecutionMetrics.from_pipeline`` does (keys collide across jobs and are
summed), and composite algorithms namespace sub-run loads with the same
``(algorithm, key)`` keys ``ExecutionMetrics.combine`` uses — so the
exact tier's ``max_reducer_load`` matches the observed value, which the
property tests in ``tests/core/test_predict.py`` pin.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Any,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import PlanningError, UnsatisfiableQueryError
from repro.core.query import IntervalJoinQuery, JoinCondition
from repro.core.schema import Relation, Row
from repro.core.tuning import (
    CyclePrediction,
    DataProfile,
    PlanPrediction,
    PredictConfig,
    crossing_fraction,
    replicate_fanout,
    split_factor,
)
from repro.intervals.allen import MapOperator
from repro.intervals.partitioning import Partitioning
from repro.mapreduce.counters import Counters
from repro.mapreduce.task import MapContext, Mapper, ReduceContext, Reducer

__all__ = [
    "dry_map",
    "dry_reduce",
    "group_pairs",
    "operator_fanout",
    "analytic_grid",
    "empty_prediction",
    "exact_two_way",
    "exact_all_replicate",
    "exact_rccis",
    "exact_grid",
    "exact_pasm",
    "exact_cascade",
    "exact_fcts",
    "exact_fstc",
]


# ----------------------------------------------------------------------
# Dry-run primitives
# ----------------------------------------------------------------------


def dry_map(
    mapper: Mapper, records: Sequence[Any], path: str = "dry"
) -> List[Tuple[Hashable, Any]]:
    """Run one real mapper over records, returning its emitted pairs."""
    context = MapContext(Counters(), path)
    mapper.setup(context)
    for record in records:
        mapper.map(record, context)
    mapper.cleanup(context)
    return context.drain()


def group_pairs(
    pairs: Sequence[Tuple[Hashable, Any]],
) -> Dict[Hashable, List[Any]]:
    """Group emitted pairs by key, the way the shuffle would."""
    grouped: Dict[Hashable, List[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    return dict(grouped)


def dry_reduce(
    reducer: Reducer, groups: Mapping[Hashable, List[Any]]
) -> List[Any]:
    """Run one real (decision) reducer over grouped pairs."""
    context = ReduceContext(Counters(), task_index=0)
    reducer.setup(context)
    for key in groups:
        reducer.reduce(key, groups[key], context)
    reducer.cleanup(context)
    return context.drain()


def operator_fanout(
    operator: MapOperator, profile: DataProfile, parts: int
) -> float:
    """Expected emitted pairs per row for one Section-3 map operator."""
    if operator is MapOperator.PROJECT:
        return 1.0
    if operator is MapOperator.SPLIT:
        return split_factor(profile, parts)
    return replicate_fanout(parts)


def analytic_grid(graph, per_dim_parts: Sequence[int]):
    """A :class:`GridSpec` over synthetic uniform partitionings.

    Cell consistency only compares boundary *ranks*, which are identical
    for any uniform partitionings over a shared range — so the synthetic
    ``[0, 1)`` grid has exactly the cells the run's data-range grid will
    have (uniform strategy), without touching the data.
    """
    from repro.core.algorithms.gen_matrix import GridSpec

    return GridSpec(
        graph,
        [Partitioning.uniform(0.0, 1.0, o) for o in per_dim_parts],
    )


def empty_prediction(
    algorithm: str, conf: PredictConfig, note: str
) -> PlanPrediction:
    """The prediction for a provably-empty query: no jobs at all."""
    return PlanPrediction(
        algorithm=algorithm,
        cost_model=conf.cost_model,
        cycles=(),
        max_reducer_load=0.0,
        consistent_reducers=0,
        total_reducers=0,
        tier="analytic",
        notes=(note,),
    )


# ----------------------------------------------------------------------
# Exact-tier bookkeeping
# ----------------------------------------------------------------------


class _ExactRun:
    """Cycles plus the cross-cycle per-key load map of one (sub-)run."""

    def __init__(self) -> None:
        self.cycles: List[CyclePrediction] = []
        self.loads: Dict[Hashable, int] = {}
        self.consistent: Optional[int] = None
        self.total: Optional[int] = None

    def add_cycle(
        self,
        name: str,
        records_read: int,
        pairs: Sequence[Tuple[Hashable, Any]],
        reduce_tasks: int,
    ) -> None:
        per_key: Dict[Hashable, int] = defaultdict(int)
        for key, _ in pairs:
            per_key[key] += 1
        for key, load in per_key.items():
            self.loads[key] = self.loads.get(key, 0) + load
        self.cycles.append(
            CyclePrediction(
                name=name,
                records_read=float(records_read),
                map_output_records=float(len(pairs)),
                shuffled_records=float(len(pairs)),
                reduce_tasks=reduce_tasks,
                max_reducer_load=float(max(per_key.values(), default=0)),
            )
        )

    def absorb(self, sub: "_ExactRun", namespace: str) -> None:
        """Merge a sub-run the way ``ExecutionMetrics.combine`` does:
        its loads reappear under ``(algorithm, key)`` composite keys."""
        self.cycles.extend(sub.cycles)
        for key, load in sub.loads.items():
            composite = (namespace, key)
            self.loads[composite] = self.loads.get(composite, 0) + load

    def finish(
        self,
        algorithm: str,
        conf: PredictConfig,
        notes: Sequence[str] = (),
    ) -> PlanPrediction:
        return PlanPrediction(
            algorithm=algorithm,
            cost_model=conf.cost_model,
            cycles=tuple(self.cycles),
            max_reducer_load=float(max(self.loads.values(), default=0)),
            consistent_reducers=(
                self.consistent
                if self.consistent is not None
                else (self.cycles[-1].reduce_tasks if self.cycles else 0)
            ),
            total_reducers=(
                self.total
                if self.total is not None
                else (self.cycles[-1].reduce_tasks if self.cycles else 0)
            ),
            tier="exact",
            notes=tuple(notes),
        )


def _attributes(query: IntervalJoinQuery) -> Dict[str, str]:
    return {name: query.attributes_of(name)[0] for name in query.relations}


def _conditions_hold(
    members: Mapping[str, Row], conditions: Sequence[JoinCondition]
) -> bool:
    return all(
        cond.predicate.holds(
            members[cond.left.relation].interval(cond.left.attribute),
            members[cond.right.relation].interval(cond.right.attribute),
        )
        for cond in conditions
    )


def _extend_partials(
    partials: Sequence[Tuple[Tuple[str, Row], ...]],
    new_relation: str,
    rows: Sequence[Row],
    step_conditions: Sequence[JoinCondition],
) -> List[Tuple[Tuple[str, Row], ...]]:
    """The intermediate a cascade step materialises: every (partial, new
    row) combination satisfying all the step's conditions — exactly what
    ``_StepJoinReducer`` emits across all reducers."""
    out: List[Tuple[Tuple[str, Row], ...]] = []
    for partial in partials:
        members = dict(partial)
        for row in rows:
            members[new_relation] = row
            if _conditions_hold(members, step_conditions):
                out.append(partial + ((new_relation, row),))
        members.pop(new_relation, None)
    return out


# ----------------------------------------------------------------------
# Per-algorithm exact predictors
# ----------------------------------------------------------------------


def exact_two_way(
    algo, query: IntervalJoinQuery, conf: PredictConfig
) -> PlanPrediction:
    """Exact tier for Two-Way: dry-run both sides' operator mappers."""
    from repro.core.algorithms.base import build_partitioning
    from repro.core.algorithms.two_way import OperatorMapper

    data = conf.require_data()
    parts = build_partitioning(query, data, conf.num_partitions)
    condition = query.conditions[0]
    run = _ExactRun()
    pairs: List[Tuple[Hashable, Any]] = []
    reads = 0
    for term, operator in (
        (condition.left, condition.predicate.left_operator),
        (condition.right, condition.predicate.right_operator),
    ):
        rows = data[term.relation].rows
        reads += len(rows)
        pairs.extend(
            dry_map(
                OperatorMapper(term.relation, term.attribute, parts, operator),
                rows,
            )
        )
    run.add_cycle("two-way", reads, pairs, conf.num_partitions)
    return run.finish(algo.name, conf)


def exact_all_replicate(
    algo, query: IntervalJoinQuery, conf: PredictConfig
) -> PlanPrediction:
    """Exact tier for All-Replicate: project the maximal relation,
    replicate the rest."""
    from repro.core.algorithms.all_replicate import (
        _ProjectMapper,
        _ReplicateMapper,
        maximal_relations,
    )
    from repro.core.algorithms.base import build_partitioning

    data = conf.require_data()
    parts = build_partitioning(query, data, conf.num_partitions)
    attributes = _attributes(query)
    maximal = maximal_relations(query)
    projected = maximal[0] if maximal else None
    run = _ExactRun()
    pairs: List[Tuple[Hashable, Any]] = []
    reads = 0
    for name in query.relations:
        rows = data[name].rows
        reads += len(rows)
        mapper: Mapper = (
            _ProjectMapper(name, attributes[name], parts)
            if name == projected
            else _ReplicateMapper(name, attributes[name], parts)
        )
        pairs.extend(dry_map(mapper, rows))
    run.add_cycle("all-replicate", reads, pairs, conf.num_partitions)
    return run.finish(algo.name, conf)


def _run_rccis(
    query: IntervalJoinQuery,
    data: Mapping[str, Relation],
    conf: PredictConfig,
) -> _ExactRun:
    from repro.core.algorithms.base import build_partitioning
    from repro.core.algorithms.rccis import (
        FlaggingReducer,
        RouteMapper,
        SplitMapper,
    )

    parts = build_partitioning(query, data, conf.num_partitions)
    attributes = _attributes(query)
    run = _ExactRun()

    flag_pairs: List[Tuple[Hashable, Any]] = []
    reads = 0
    for name in query.relations:
        rows = data[name].rows
        reads += len(rows)
        flag_pairs.extend(
            dry_map(SplitMapper(name, attributes[name], parts), rows)
        )
    run.add_cycle("rccis-flag", reads, flag_pairs, conf.num_partitions)

    flag_records = dry_reduce(
        FlaggingReducer(query, query.relations, attributes, parts),
        group_pairs(flag_pairs),
    )
    join_pairs = dry_map(RouteMapper(attributes, parts), flag_records)
    run.add_cycle(
        "rccis-join", len(flag_records), join_pairs, conf.num_partitions
    )
    return run


def exact_rccis(
    algo, query: IntervalJoinQuery, conf: PredictConfig
) -> PlanPrediction:
    """Exact tier for RCCIS: flag cycle plus the routed join cycle."""
    data = conf.require_data()
    return _run_rccis(query, data, conf).finish(algo.name, conf)


def _run_grid(
    algo, query: IntervalJoinQuery, conf: PredictConfig
) -> Optional[_ExactRun]:
    """Exact dry-run of the grid engine (Gen/All-Seq/All-Matrix).
    Returns ``None`` when the join graph itself is unsatisfiable (the
    run would produce no jobs)."""
    from repro.core.algorithms.base import build_partitioning
    from repro.core.algorithms.gen_matrix import (
        GridSpec,
        _ComponentFlaggingReducer,
        _ComponentSplitMapper,
        _GridRouteMapper,
    )
    from repro.core.graph import JoinGraph

    data = conf.require_data()
    try:
        graph = JoinGraph(query)
    except UnsatisfiableQueryError:
        return None
    grid_parts = algo.grid_parts or conf.num_partitions
    if isinstance(grid_parts, int):
        per_dim = [grid_parts] * len(graph.components)
    else:
        per_dim = list(grid_parts)
    parts0 = build_partitioning(query, data, per_dim[0])
    if len(set(per_dim)) == 1:
        partitionings: List[Partitioning] = [parts0] * len(graph.components)
    else:
        partitionings = [
            build_partitioning(query, data, o) for o in per_dim
        ]
    grid = GridSpec(graph, partitionings)
    run = _ExactRun()
    run.consistent = len(grid.cells)
    run.total = grid.total_cells

    multi = [c for c in graph.components if len(c.terms) > 1]
    flags: frozenset = frozenset()
    if multi:
        flag_pairs: List[Tuple[Hashable, Any]] = []
        reads = 0
        for comp in multi:
            for term in sorted(comp.terms):
                rows = data[term.relation].rows
                reads += len(rows)
                flag_pairs.extend(
                    dry_map(
                        _ComponentSplitMapper(
                            term, comp.index, grid.partitioning_of(comp.index)
                        ),
                        rows,
                    )
                )
        reduce_tasks = max(
            1, sum(len(grid.partitioning_of(c.index)) for c in multi)
        )
        run.add_cycle(f"{algo.name}-flag", reads, flag_pairs, reduce_tasks)
        flags = frozenset(
            dry_reduce(
                _ComponentFlaggingReducer(
                    multi,
                    {c.index: grid.partitioning_of(c.index) for c in multi},
                ),
                group_pairs(flag_pairs),
            )
        )

    term_components = {
        str(term): graph.component_of(term).index for term in query.terms
    }
    terms_by_relation: Dict[str, List] = defaultdict(list)
    for term in query.terms:
        terms_by_relation[term.relation].append(term)
    join_pairs: List[Tuple[Hashable, Any]] = []
    reads = 0
    for name in query.relations:
        rows = data[name].rows
        reads += len(rows)
        join_pairs.extend(
            dry_map(
                _GridRouteMapper(
                    name, terms_by_relation[name], term_components,
                    grid, flags,
                ),
                rows,
            )
        )
    run.add_cycle(
        f"{algo.name}-join", reads, join_pairs, max(1, len(grid.cells))
    )
    return run


def exact_grid(
    algo, query: IntervalJoinQuery, conf: PredictConfig
) -> PlanPrediction:
    """Exact tier for the grid engine (Gen/All-Seq/All-Matrix)."""
    run = _run_grid(algo, query, conf)
    if run is None:
        return empty_prediction(
            algo.name, conf, "join graph unsatisfiable; no jobs run"
        )
    return run.finish(algo.name, conf)


def exact_pasm(
    algo, query: IntervalJoinQuery, conf: PredictConfig
) -> PlanPrediction:
    """Exact tier for PASM: flag, mark (real marking reducer, so the
    pruned join cycle is exact, not an upper bound) and join cycles."""
    from repro.core.algorithms.base import build_partitioning
    from repro.core.algorithms.gen_matrix import (
        GridSpec,
        _ComponentFlaggingReducer,
        _ComponentSplitMapper,
    )
    from repro.core.algorithms.pasm import (
        _ComponentRouteMapper,
        _MarkingReducer,
        _PrunedGridRouteMapper,
    )
    from repro.core.graph import JoinGraph

    data = conf.require_data()
    try:
        graph = JoinGraph(query)
    except UnsatisfiableQueryError:
        return empty_prediction(
            algo.name, conf, "join graph unsatisfiable; no jobs run"
        )
    grid_parts = algo.grid_parts or conf.num_partitions
    parts = build_partitioning(query, data, grid_parts)
    grid = GridSpec(graph, parts)
    attributes = _attributes(query)
    multi = [c for c in graph.components if len(c.terms) > 1]
    run = _ExactRun()
    run.consistent = len(grid.cells)
    run.total = grid.total_cells

    flags: frozenset = frozenset()
    keep: Dict[str, set] = {}
    if multi:
        flag_pairs: List[Tuple[Hashable, Any]] = []
        reads = 0
        for comp in multi:
            for term in sorted(comp.terms):
                rows = data[term.relation].rows
                reads += len(rows)
                flag_pairs.extend(
                    dry_map(
                        _ComponentSplitMapper(term, comp.index, parts), rows
                    )
                )
        reduce_tasks = max(1, len(parts) * len(multi))
        run.add_cycle("pasm-flag", reads, flag_pairs, reduce_tasks)
        flags = frozenset(
            dry_reduce(
                _ComponentFlaggingReducer(
                    multi, {c.index: parts for c in multi}
                ),
                group_pairs(flag_pairs),
            )
        )

        mark_pairs: List[Tuple[Hashable, Any]] = []
        reads = 0
        for comp in multi:
            for term in sorted(comp.terms):
                rows = data[term.relation].rows
                reads += len(rows)
                mark_pairs.extend(
                    dry_map(
                        _ComponentRouteMapper(term, comp.index, parts, flags),
                        rows,
                    )
                )
        run.add_cycle("pasm-mark", reads, mark_pairs, reduce_tasks)
        subqueries = {
            c.index: IntervalJoinQuery(list(c.conditions)) for c in multi
        }
        marks = dry_reduce(
            _MarkingReducer(subqueries, attributes, parts),
            group_pairs(mark_pairs),
        )
        for relation, rid in marks:
            keep.setdefault(relation, set()).add(rid)
        for comp in multi:
            for term in comp.terms:
                keep.setdefault(term.relation, set())

    term_components = {
        str(term): graph.component_of(term).index for term in query.terms
    }
    terms_by_relation: Dict[str, List] = defaultdict(list)
    for term in query.terms:
        terms_by_relation[term.relation].append(term)
    join_pairs: List[Tuple[Hashable, Any]] = []
    reads = 0
    for name in query.relations:
        rows = data[name].rows
        reads += len(rows)
        join_pairs.extend(
            dry_map(
                _PrunedGridRouteMapper(
                    name, terms_by_relation[name], term_components,
                    grid, flags,
                    keep=(frozenset(keep[name]) if name in keep else None),
                ),
                rows,
            )
        )
    run.add_cycle("pasm-join", reads, join_pairs, max(1, len(grid.cells)))
    return run.finish(algo.name, conf)


def exact_cascade(
    algo, query: IntervalJoinQuery, conf: PredictConfig
) -> PlanPrediction:
    """Exact tier for the 2-way cascade: dry-run each step's mappers,
    materialising the true intermediate between steps."""
    import math

    from repro.core.algorithms.base import build_partitioning
    from repro.core.algorithms.cascade import (
        _GridPartialMapper,
        _GridRowMapper,
        _NEW_SIDE,
        _PartialSideMapper,
        _RowSideMapper,
        _binding_order,
        _routing_condition,
        _step_conditions,
    )

    data = conf.require_data()
    parts = build_partitioning(query, data, conf.num_partitions)
    order = _binding_order(query)
    grid_o = algo.grid_parts or max(
        2, math.ceil(math.sqrt(2 * conf.num_partitions))
    )
    grid_partitioning = (
        parts
        if len(parts) == grid_o
        else Partitioning.uniform(parts.t_min, parts.t_max, grid_o)
    )
    run = _ExactRun()
    partials: List[Tuple[Tuple[str, Row], ...]] = [
        ((order[0], row),) for row in data[order[0]].rows
    ]
    for step, new in enumerate(order[1:], start=1):
        bound = order[:step]
        step_conditions = _step_conditions(query, bound, new)
        routing = _routing_condition(step_conditions)
        if routing.left.relation == new:
            member = routing.right.relation
            member_attr = routing.right.attribute
            new_attr = routing.left.attribute
            bound_is_left = False
        else:
            member = routing.left.relation
            member_attr = routing.left.attribute
            new_attr = routing.right.attribute
            bound_is_left = True
        new_rows = data[new].rows
        reads = len(partials) + len(new_rows)
        if routing.is_colocation:
            bound_op = (
                routing.predicate.left_operator
                if bound_is_left
                else routing.predicate.right_operator
            )
            new_op = (
                routing.predicate.right_operator
                if bound_is_left
                else routing.predicate.left_operator
            )
            pairs = dry_map(
                _PartialSideMapper(member, member_attr, parts, bound_op),
                partials,
            )
            pairs.extend(
                dry_map(
                    _RowSideMapper(new, new_attr, parts, new_op, _NEW_SIDE),
                    new_rows,
                )
            )
            run.add_cycle(
                f"cascade-{new}", reads, pairs, conf.num_partitions
            )
        else:
            bound_first = (
                routing.predicate.enforces_left_first()
                if bound_is_left
                else routing.predicate.enforces_right_first()
            )
            cells = [
                (i, j)
                for i in range(grid_o)
                for j in range(grid_o)
                if (i <= j if bound_first else j <= i)
            ]
            pairs = dry_map(
                _GridPartialMapper(
                    member, member_attr, grid_partitioning, 0, cells
                ),
                partials,
            )
            pairs.extend(
                dry_map(
                    _GridRowMapper(
                        new, new_attr, grid_partitioning, 1, cells, _NEW_SIDE
                    ),
                    new_rows,
                )
            )
            run.add_cycle(
                f"cascade-{new}", reads, pairs, max(1, len(cells))
            )
        partials = _extend_partials(partials, new, new_rows, step_conditions)
    run.consistent = conf.num_partitions
    run.total = conf.num_partitions
    return run.finish(algo.name, conf)


def exact_fcts(
    algo, query: IntervalJoinQuery, conf: PredictConfig
) -> PlanPrediction:
    """Exact tier for FCTS: RCCIS sub-runs per colocation component,
    then the cross-component matrix cycle over their true outputs."""
    from dataclasses import replace

    from repro.core.algorithms.base import build_partitioning
    from repro.core.algorithms.gen_matrix import GridSpec
    from repro.core.algorithms.hybrid import (
        _ComponentPartialMapper,
        _component_subquery,
        _cross_component_conditions,
    )
    from repro.core.graph import JoinGraph
    from repro.core.reference import enumerate_reference_tuples

    data = conf.require_data()
    try:
        graph = JoinGraph(query)
    except UnsatisfiableQueryError:
        return empty_prediction(
            algo.name, conf, "join graph unsatisfiable; no jobs run"
        )
    attributes = _attributes(query)
    intra_seq = [
        cond
        for cond in _cross_component_conditions(query, graph)
        if graph.component_of(cond.left).index
        == graph.component_of(cond.right).index
    ]
    run = _ExactRun()
    component_partials: Dict[int, List[Tuple[Tuple[str, Row], ...]]] = {}
    for component in graph.components:
        if len(component.terms) == 1:
            term = next(iter(component.terms))
            component_partials[component.index] = [
                ((term.relation, row),) for row in data[term.relation].rows
            ]
            continue
        subquery = _component_subquery(component)
        subdata = {name: data[name] for name in subquery.relations}
        sub_run = _run_rccis(subquery, subdata, replace(conf, data=subdata))
        run.absorb(sub_run, "rccis")
        seq_filters = [
            cond
            for cond in intra_seq
            if {cond.left.relation, cond.right.relation}
            <= set(subquery.relations)
        ]
        records = []
        for tuple_rows in enumerate_reference_tuples(subquery, subdata):
            members = dict(zip(subquery.relations, tuple_rows))
            if _conditions_hold(members, seq_filters):
                records.append(
                    tuple(
                        (name, members[name]) for name in subquery.relations
                    )
                )
        component_partials[component.index] = records

    grid_o = algo.grid_parts or conf.num_partitions
    parts = build_partitioning(query, data, grid_o)
    grid = GridSpec(graph, parts)
    matrix_run = _ExactRun()
    pairs: List[Tuple[Hashable, Any]] = []
    reads = 0
    for component in graph.components:
        records = component_partials[component.index]
        reads += len(records)
        pairs.extend(
            dry_map(
                _ComponentPartialMapper(component, grid, attributes), records
            )
        )
    matrix_run.add_cycle(
        "fcts-matrix", reads, pairs, max(1, len(grid.cells))
    )
    run.absorb(matrix_run, algo.name)
    run.consistent = len(grid.cells)
    run.total = grid.total_cells
    return run.finish(algo.name, conf)


def exact_fstc(
    algo, query: IntervalJoinQuery, conf: PredictConfig
) -> PlanPrediction:
    """Exact tier for FSTC: the sequence sub-query through the matrix
    engine, then cascade steps attaching the colocation relations."""
    from dataclasses import replace

    from repro.core.algorithms.base import build_partitioning
    from repro.core.algorithms.cascade import (
        _NEW_SIDE,
        _PartialSideMapper,
        _RowSideMapper,
    )
    from repro.core.algorithms.gen_matrix import AllMatrix
    from repro.core.reference import enumerate_reference_tuples

    data = conf.require_data()
    sequence_conditions = [c for c in query.conditions if c.is_sequence]
    try:
        seq_query = IntervalJoinQuery(sequence_conditions)
    except Exception as exc:
        raise PlanningError(
            "FSTC requires the sequence conditions to form a connected "
            f"sub-query: {exc}"
        ) from exc
    attributes = _attributes(query)
    seq_data = {name: data[name] for name in seq_query.relations}
    grid_o = algo.grid_parts or conf.num_partitions
    run = _ExactRun()
    seq_run = _run_grid(
        AllMatrix(),
        seq_query,
        replace(conf, num_partitions=grid_o, data=seq_data),
    )
    if seq_run is None:  # pragma: no cover - hybrid seq subquery is sat
        return empty_prediction(
            algo.name, conf, "sequence sub-query unsatisfiable; no jobs run"
        )
    run.absorb(seq_run, "all_matrix")
    partials = [
        tuple((name, row) for name, row in zip(seq_query.relations, t))
        for t in enumerate_reference_tuples(seq_query, seq_data)
    ]

    parts = build_partitioning(query, data, conf.num_partitions)
    cascade_run = _ExactRun()
    bound: List[str] = list(seq_query.relations)
    remaining = [n for n in query.relations if n not in bound]
    while remaining:
        nxt: Optional[str] = None
        routing: Optional[JoinCondition] = None
        for candidate in remaining:
            for cond in query.conditions:
                names = {cond.left.relation, cond.right.relation}
                if (
                    candidate in names
                    and (names - {candidate}) <= set(bound)
                    and cond.is_colocation
                ):
                    nxt, routing = candidate, cond
                    break
            if nxt:
                break
        if nxt is None or routing is None:
            raise PlanningError(
                "FSTC could not attach remaining relations "
                f"{remaining} through colocation conditions"
            )
        step_conditions = [
            cond
            for cond in query.conditions
            if nxt in (cond.left.relation, cond.right.relation)
            and ({cond.left.relation, cond.right.relation} - {nxt})
            <= set(bound)
        ]
        member = (
            routing.right.relation
            if routing.left.relation == nxt
            else routing.left.relation
        )
        bound_is_left = routing.left.relation == member
        bound_op = (
            routing.predicate.left_operator
            if bound_is_left
            else routing.predicate.right_operator
        )
        new_op = (
            routing.predicate.right_operator
            if bound_is_left
            else routing.predicate.left_operator
        )
        new_rows = data[nxt].rows
        reads = len(partials) + len(new_rows)
        pairs = dry_map(
            _PartialSideMapper(member, attributes[member], parts, bound_op),
            partials,
        )
        pairs.extend(
            dry_map(
                _RowSideMapper(
                    nxt, attributes[nxt], parts, new_op, _NEW_SIDE
                ),
                new_rows,
            )
        )
        cascade_run.add_cycle(
            f"fstc-{nxt}", reads, pairs, conf.num_partitions
        )
        partials = _extend_partials(partials, nxt, new_rows, step_conditions)
        bound.append(nxt)
        remaining.remove(nxt)
    run.absorb(cascade_run, algo.name)
    return run.finish(algo.name, conf)
