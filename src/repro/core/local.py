"""Reducer-local multi-way join evaluation.

Every reducer in every algorithm ultimately has to enumerate the join
tuples among the (relation-tagged) rows it received.  The paper leaves
this local step unspecified; we implement an index-accelerated backtracking
join:

* relations are bound in an order that keeps each new relation connected
  to the already-bound ones (smaller intermediate candidate sets);
* the candidate rows for the next relation are generated through the most
  selective available access path — an :class:`IntervalTree` probe for
  colocation conditions, a sorted-endpoint bisect for sequence conditions,
  a full scan only when the next relation is connected by nothing (which
  the binding order avoids whenever the join graph is connected);
* every predicate evaluation is counted through a caller-supplied counter
  so the cost model can charge reducers for the work they actually did.

An optional ``accept`` callback filters complete tuples before they are
yielded — algorithms use it for their "this reducer owns the tuple" rules
that make grid output exactly-once.
"""

from __future__ import annotations

import bisect
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.query import IntervalJoinQuery, JoinCondition
from repro.core.schema import Row
from repro.intervals.interval import Interval
from repro.intervals.sweep import join_pairs
from repro.intervals.tree import IntervalTree

__all__ = ["LocalJoiner"]


class _RelationIndex:
    """Access paths over one relation's rows for one attribute."""

    def __init__(self, rows: Sequence[Row], attribute: str) -> None:
        self.rows = list(rows)
        self.attribute = attribute
        items = [(row.interval(attribute), row) for row in self.rows]
        self.tree: IntervalTree[Row] = IntervalTree(items)
        self.by_start: List[Tuple[float, Row]] = sorted(
            ((iv.start, row) for iv, row in items), key=lambda t: t[0]
        )
        self.by_end: List[Tuple[float, Row]] = sorted(
            ((iv.end, row) for iv, row in items), key=lambda t: t[0]
        )
        self._starts = [s for s, _ in self.by_start]
        self._ends = [e for e, _ in self.by_end]

    def intersecting(self, query: Interval) -> Iterator[Row]:
        for _, row in self.tree.overlapping(query):
            yield row

    def starting_after(self, t: float) -> Iterator[Row]:
        """Rows whose interval starts strictly after ``t``."""
        index = bisect.bisect_right(self._starts, t)
        for _, row in self.by_start[index:]:
            yield row

    def ending_before(self, t: float) -> Iterator[Row]:
        """Rows whose interval ends strictly before ``t``."""
        index = bisect.bisect_left(self._ends, t)
        for _, row in self.by_end[:index]:
            yield row

    def scan(self) -> Iterator[Row]:
        yield from self.rows


class LocalJoiner:
    """Joins relation-tagged row sets under a query's conditions.

    Parameters
    ----------
    query:
        The join query (conditions + relation order for output tuples).
    count_comparisons:
        Callback invoked with the number of predicate evaluations
        performed; wire it to a MapReduce counter.
    """

    def __init__(
        self,
        query: IntervalJoinQuery,
        count_comparisons: Optional[Callable[[int], None]] = None,
        start_with: Optional[str] = None,
    ) -> None:
        self.query = query
        self._count = count_comparisons or (lambda n: None)
        self._binding_order = self._plan_order(start_with)

    # ------------------------------------------------------------------
    def _plan_order(self, start_with: Optional[str] = None) -> List[str]:
        """A connected binding order.

        ``start_with`` selects the first bound relation — reducers use it
        to drive enumeration from a small anchor candidate set (e.g. the
        rows starting in the reducer's own partition), which keeps local
        join work proportional to the tuples the reducer actually owns.
        """
        remaining = list(self.query.relations)
        if start_with is not None:
            if start_with not in remaining:
                raise ValueError(f"unknown start relation {start_with!r}")
            remaining.remove(start_with)
            order = [start_with]
            return self._extend_order(order, remaining)
        order = [remaining.pop(0)]
        return self._extend_order(order, remaining)

    def _extend_order(self, order: List[str], remaining: List[str]) -> List[str]:
        while remaining:
            bound = set(order)
            for candidate in remaining:
                connected = any(
                    {c.left.relation, c.right.relation} <= bound | {candidate}
                    and candidate in (c.left.relation, c.right.relation)
                    for c in self.query.conditions
                )
                if connected:
                    remaining.remove(candidate)
                    order.append(candidate)
                    break
            else:  # disconnected (checked at query build; defensive)
                order.append(remaining.pop(0))
        return order

    # ------------------------------------------------------------------
    def join(
        self,
        rows_by_relation: Mapping[str, Sequence[Row]],
        accept: Optional[Callable[[Mapping[str, Row]], bool]] = None,
    ) -> Iterator[Tuple[Row, ...]]:
        """Enumerate satisfying tuples (in ``query.relations`` order).

        ``accept`` filters complete bindings; rejected bindings are not
        yielded (used for reducer-ownership rules).
        """
        if any(
            not rows_by_relation.get(name) for name in self.query.relations
        ):
            return

        if len(self.query.relations) == 2 and all(
            c.left.relation != c.right.relation
            for c in self.query.conditions
        ):
            yield from self._join_two_way(rows_by_relation, accept)
            return

        indexes: Dict[str, _RelationIndex] = {}
        for name in self.query.relations:
            attrs = self.query.attributes_of(name)
            # Index on the first query attribute; further attributes are
            # verified by predicate evaluation.
            indexes[name] = _RelationIndex(rows_by_relation[name], attrs[0])

        order = self._binding_order
        # Conditions checkable once relation order[k] is bound.
        step_conditions: List[List[JoinCondition]] = []
        for k, name in enumerate(order):
            bound = set(order[: k + 1])
            step_conditions.append(
                [
                    c
                    for c in self.query.conditions
                    if c.left.relation in bound
                    and c.right.relation in bound
                    and name in (c.left.relation, c.right.relation)
                ]
            )

        binding: Dict[str, Row] = {}

        def check(cond: JoinCondition) -> bool:
            self._count(1)
            return cond.predicate.holds(
                binding[cond.left.relation].interval(cond.left.attribute),
                binding[cond.right.relation].interval(cond.right.attribute),
            )

        def candidates(k: int) -> Iterator[Row]:
            """Pick the most selective access path for relation order[k]."""
            name = order[k]
            index = indexes[name]
            best: Optional[Iterator[Row]] = None
            for cond in step_conditions[k]:
                if cond.left.relation == name:
                    other_term, my_term, i_am_left = cond.right, cond.left, True
                else:
                    other_term, my_term, i_am_left = cond.left, cond.right, False
                if other_term.relation == name:
                    continue
                if my_term.attribute != index.attribute:
                    continue
                other_iv = binding[other_term.relation].interval(
                    other_term.attribute
                )
                pred = cond.predicate
                if pred.is_colocation:
                    return index.intersecting(other_iv)
                # Sequence predicate: before/after.
                earlier_is_me = (
                    pred.enforces_left_first() if i_am_left
                    else pred.enforces_right_first()
                )
                if earlier_is_me:
                    best = index.ending_before(other_iv.start)
                else:
                    best = index.starting_after(other_iv.end)
            return best if best is not None else index.scan()

        def extend(k: int) -> Iterator[Tuple[Row, ...]]:
            if k == len(order):
                if accept is None or accept(binding):
                    yield tuple(
                        binding[name] for name in self.query.relations
                    )
                return
            name = order[k]
            for row in candidates(k):
                binding[name] = row
                if all(check(cond) for cond in step_conditions[k]):
                    yield from extend(k + 1)
            binding.pop(name, None)

        yield from extend(0)

    # ------------------------------------------------------------------
    def _join_two_way(
        self,
        rows_by_relation: Mapping[str, Sequence[Row]],
        accept: Optional[Callable[[Mapping[str, Row]], bool]],
    ) -> Iterator[Tuple[Row, ...]]:
        """2-relation fast path.

        The first condition is enumerated in batch through the
        per-predicate sweep kernels
        (:func:`repro.intervals.sweep.join_pairs`) instead of row-at-a-
        time index probes; the remaining conditions are verified per
        produced pair.  Comparisons are charged per pair examined, like
        the backtracking path charges per candidate."""
        primary, *rest = self.query.conditions
        left_rel = primary.left.relation
        right_rel = primary.right.relation
        left_items = [
            (row.interval(primary.left.attribute), row)
            for row in rows_by_relation[left_rel]
        ]
        right_items = [
            (row.interval(primary.right.attribute), row)
            for row in rows_by_relation[right_rel]
        ]
        names = self.query.relations
        for (_, lrow), (_, rrow) in join_pairs(
            left_items, right_items, primary.predicate
        ):
            self._count(1)
            binding = {left_rel: lrow, right_rel: rrow}
            ok = True
            for cond in rest:
                self._count(1)
                if not cond.predicate.holds(
                    binding[cond.left.relation].interval(cond.left.attribute),
                    binding[cond.right.relation].interval(cond.right.attribute),
                ):
                    ok = False
                    break
            if ok and (accept is None or accept(binding)):
                yield tuple(binding[name] for name in names)
