"""Join results and execution metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.query import IntervalJoinQuery
from repro.core.schema import Row
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.pipeline import PipelineResult

__all__ = ["ExecutionMetrics", "JoinResult"]


@dataclass
class ExecutionMetrics:
    """Everything an algorithm run measured.

    The fields mirror the columns of the paper's evaluation tables:
    intermediate pair counts ("# Pairs"), replicated interval counts
    ("# Intervals Replicated"), per-reducer loads (the Figure 4 story) and
    a modelled wall-clock time ("Time").
    """

    algorithm: str
    num_cycles: int = 0
    map_output_records: int = 0
    shuffled_records: int = 0
    replicated_intervals: int = 0
    replicated_pairs: int = 0
    #: rows dropped by PASM's marking cycle before grid routing.
    pruned_rows: int = 0
    comparisons: int = 0
    records_read: int = 0
    output_records: int = 0
    #: records received per logical reducer (grid cell / partition).
    reducer_loads: Dict[Hashable, int] = field(default_factory=dict)
    #: modelled seconds under the cost model used at run time.
    simulated_seconds: float = 0.0
    #: number of consistent reducers used by grid algorithms (None
    #: otherwise).
    consistent_reducers: Optional[int] = None
    #: total grid cells for grid algorithms (None otherwise).
    total_reducers: Optional[int] = None
    #: task attempts that failed (injected or genuine) and were retried
    #: or gave up; 0 on fault-free runs.
    tasks_failed: int = 0
    #: failed attempts that were re-run within the retry budget.
    tasks_retried: int = 0
    #: speculative backup attempts whose output was discarded.
    speculative_wasted: int = 0
    #: algorithm-specific shape metadata (grid dimensions, cascade
    #: stages, partition counts) — what the dashboard's utilisation
    #: table is built from.
    shape: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_pipeline(
        cls,
        algorithm: str,
        pipeline: PipelineResult,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> "ExecutionMetrics":
        """Fold a pipeline's job results into one metric record."""
        counters = pipeline.counters
        loads: Dict[Hashable, int] = {}
        for job in pipeline.jobs:
            for key, value in job.logical_reducer_loads.items():
                loads[key] = loads.get(key, 0) + value
        return cls(
            algorithm=algorithm,
            num_cycles=pipeline.num_cycles,
            map_output_records=pipeline.total_map_output_records,
            shuffled_records=pipeline.total_shuffled_records,
            replicated_intervals=counters.value("join", "replicated_intervals"),
            replicated_pairs=counters.value("join", "replicated_pairs"),
            pruned_rows=counters.value("join", "pruned_rows"),
            comparisons=counters.value("work", "comparisons"),
            records_read=counters.value("framework", "map_input_records"),
            output_records=pipeline.jobs[-1].output_records if pipeline.jobs else 0,
            reducer_loads=loads,
            simulated_seconds=cost_model.pipeline_time(pipeline),
            tasks_failed=counters.value("faults", "tasks_failed"),
            tasks_retried=counters.value("faults", "tasks_retried"),
            speculative_wasted=counters.value("faults", "speculative_wasted"),
        )

    @classmethod
    def combine(
        cls, algorithm: str, parts: Sequence["ExecutionMetrics"]
    ) -> "ExecutionMetrics":
        """Sum metrics of sub-executions (used by composite algorithms
        such as FCTS that orchestrate other algorithms' pipelines)."""
        merged = cls(algorithm=algorithm)
        for part in parts:
            merged.num_cycles += part.num_cycles
            merged.map_output_records += part.map_output_records
            merged.shuffled_records += part.shuffled_records
            merged.replicated_intervals += part.replicated_intervals
            merged.replicated_pairs += part.replicated_pairs
            merged.pruned_rows += part.pruned_rows
            merged.comparisons += part.comparisons
            merged.records_read += part.records_read
            merged.simulated_seconds += part.simulated_seconds
            merged.tasks_failed += part.tasks_failed
            merged.tasks_retried += part.tasks_retried
            merged.speculative_wasted += part.speculative_wasted
            for key, value in part.reducer_loads.items():
                composite_key = (part.algorithm, key)
                merged.reducer_loads[composite_key] = (
                    merged.reducer_loads.get(composite_key, 0) + value
                )
        if parts:
            merged.output_records = parts[-1].output_records
        return merged

    @property
    def replication_factor(self) -> float:
        """Intermediate pairs emitted per input record read — the
        paper's communication-cost headline (Section 6)."""
        if not self.records_read:
            return 0.0
        return self.map_output_records / self.records_read

    @property
    def grid_utilisation(self) -> Optional[float]:
        """Consistent reducers as a fraction of the total grid (grid
        algorithms only; ``None`` elsewhere)."""
        if self.consistent_reducers is None or not self.total_reducers:
            return None
        return self.consistent_reducers / self.total_reducers

    @property
    def max_reducer_load(self) -> int:
        return max(self.reducer_loads.values(), default=0)

    @property
    def mean_reducer_load(self) -> float:
        if not self.reducer_loads:
            return 0.0
        return sum(self.reducer_loads.values()) / len(self.reducer_loads)

    def observed_quantities(self) -> Dict[str, float]:
        """The run-measured values of exactly the quantities
        :meth:`repro.core.tuning.PlanPrediction.quantities` predicts —
        the observed side of every plan reconciliation."""
        return {
            "records_read": float(self.records_read),
            "map_output_records": float(self.map_output_records),
            "shuffled_records": float(self.shuffled_records),
            "replication_factor": float(self.replication_factor),
            "max_reducer_load": float(self.max_reducer_load),
            "num_cycles": float(self.num_cycles),
            "modelled_seconds": float(self.simulated_seconds),
        }


class JoinResult:
    """The output of one join execution.

    Attributes
    ----------
    query:
        The executed query.
    tuples:
        Output tuples, each a tuple of :class:`Row` in ``query.relations``
        order.
    metrics:
        The run's :class:`ExecutionMetrics`.
    """

    def __init__(
        self,
        query: IntervalJoinQuery,
        tuples: Sequence[Tuple[Row, ...]],
        metrics: ExecutionMetrics,
    ) -> None:
        self.query = query
        self.tuples: List[Tuple[Row, ...]] = list(tuples)
        self.metrics = metrics

    def __len__(self) -> int:
        return len(self.tuples)

    def tuple_ids(self) -> List[Tuple[int, ...]]:
        """Sorted rid tuples (query relation order) — the canonical form
        used to compare two results for equality."""
        return sorted(tuple(row.rid for row in t) for t in self.tuples)

    def same_output(self, other: "JoinResult") -> bool:
        """Whether two results produced exactly the same tuple set."""
        return self.tuple_ids() == other.tuple_ids()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JoinResult({self.metrics.algorithm}, {len(self.tuples)} tuples, "
            f"{self.metrics.num_cycles} cycles, "
            f"{self.metrics.shuffled_records} shuffled)"
        )
