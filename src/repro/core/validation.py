"""Join-output validation.

The reference join certifies correctness at test scale, but benchmarks
run sizes where an O(n^m) oracle is infeasible.  This module provides the
checks that remain cheap at any scale:

* every output tuple satisfies every query condition (soundness);
* no tuple appears twice (the exactly-once ownership rule held);
* tuple arity and relation membership are structurally correct;
* optionally, a *sampled completeness* probe: for a random sample of
  output tuples of one run, a second algorithm's output must contain
  them (used pairwise by the benchmark harness, where full set equality
  is also cheap since both outputs are in memory).

`validate_result` raises :class:`ValidationError` with a precise
description of the first violation, so a failing benchmark pinpoints the
offending tuple.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from repro.errors import ReproError
from repro.core.results import JoinResult
from repro.core.schema import Relation

__all__ = ["ValidationError", "validate_result", "assert_equivalent"]


class ValidationError(ReproError):
    """Raised when a join result violates a checked invariant."""


def validate_result(
    result: JoinResult,
    data: Optional[Mapping[str, Relation]] = None,
) -> None:
    """Check soundness, uniqueness, and structure of a join result.

    Parameters
    ----------
    result:
        The result to check; its ``query`` drives the predicate checks.
    data:
        When given, each tuple's rows are verified to be actual rows of
        their relations (guards against corrupted shuffles).
    """
    query = result.query
    arity = len(query.relations)
    seen = set()
    rows_by_relation = (
        {name: {row.rid: row for row in data[name].rows} for name in query.relations}
        if data is not None
        else None
    )
    for position, tuple_rows in enumerate(result.tuples):
        if len(tuple_rows) != arity:
            raise ValidationError(
                f"tuple #{position} has arity {len(tuple_rows)}, "
                f"expected {arity}"
            )
        ids = tuple(row.rid for row in tuple_rows)
        if ids in seen:
            raise ValidationError(
                f"tuple {ids} emitted more than once "
                "(exactly-once ownership violated)"
            )
        seen.add(ids)
        binding = dict(zip(query.relations, tuple_rows))
        if rows_by_relation is not None:
            for name, row in binding.items():
                original = rows_by_relation[name].get(row.rid)
                if original is None or original != row:
                    raise ValidationError(
                        f"tuple {ids}: row {row.rid} is not a row of "
                        f"relation {name!r}"
                    )
        for cond in query.conditions:
            left = binding[cond.left.relation].interval(cond.left.attribute)
            right = binding[cond.right.relation].interval(
                cond.right.attribute
            )
            if not cond.predicate.holds(left, right):
                raise ValidationError(
                    f"tuple {ids} violates {cond}: "
                    f"{left} {cond.predicate.name} {right} is false"
                )


def assert_equivalent(
    first: JoinResult,
    second: JoinResult,
    sample: Optional[int] = None,
    seed: int = 0,
) -> None:
    """Check two results agree (full set equality, or a sampled probe).

    ``sample=None`` compares the full rid-tuple sets.  A positive
    ``sample`` checks that many random tuples of each side exist in the
    other — an O(sample) probe for gigantic outputs.
    """
    if sample is None:
        if first.tuple_ids() != second.tuple_ids():
            only_first = set(map(tuple, first.tuple_ids())) - set(
                map(tuple, second.tuple_ids())
            )
            only_second = set(map(tuple, second.tuple_ids())) - set(
                map(tuple, first.tuple_ids())
            )
            raise ValidationError(
                f"{first.metrics.algorithm} vs {second.metrics.algorithm}: "
                f"{len(only_first)} tuples only in the first "
                f"(e.g. {sorted(only_first)[:3]}), {len(only_second)} only "
                f"in the second (e.g. {sorted(only_second)[:3]})"
            )
        return
    rng = random.Random(seed)
    first_ids = set(map(tuple, first.tuple_ids()))
    second_ids = set(map(tuple, second.tuple_ids()))
    for name, source, target in (
        (first.metrics.algorithm, first_ids, second_ids),
        (second.metrics.algorithm, second_ids, first_ids),
    ):
        pool = list(source)
        if not pool:
            continue
        for ids in rng.sample(pool, min(sample, len(pool))):
            if ids not in target:
                raise ValidationError(
                    f"tuple {ids} produced by {name} is missing from the "
                    "other result"
                )
