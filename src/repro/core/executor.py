"""The high-level entry point: :func:`execute`.

Most users need only this::

    from repro import Interval, Relation, IntervalJoinQuery, execute

    r1 = Relation.of_intervals("R1", [Interval(0, 5), Interval(8, 12)])
    r2 = Relation.of_intervals("R2", [Interval(3, 9)])
    query = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])
    result = execute(query, {"R1": r1, "R2": r2})

``execute`` plans (choosing the paper's algorithm for the query class,
unless one is named explicitly), runs, and returns a
:class:`~repro.core.results.JoinResult`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.errors import PlanningError
from repro.core.algorithms.base import JoinAlgorithm
from repro.core.planner import ALGORITHMS, plan
from repro.core.query import IntervalJoinQuery
from repro.core.results import ExecutionMetrics, JoinResult
from repro.core.schema import Relation
from repro.intervals.partitioning import Partitioning
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL
from repro.mapreduce.fs import FileSystem
from repro.obs.recorder import TraceRecorder

__all__ = ["execute"]


def execute(
    query: IntervalJoinQuery,
    data: Mapping[str, Relation],
    algorithm: Optional[Union[str, JoinAlgorithm]] = None,
    *,
    num_partitions: int = 16,
    fs: Optional[FileSystem] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    partitioning: Optional[Partitioning] = None,
    partition_strategy: str = "uniform",
    prune: bool = False,
    observer: Optional[TraceRecorder] = None,
    faults=None,
    max_attempts: Optional[int] = None,
    speculative: Optional[bool] = None,
    data_plane: Optional[str] = None,
) -> JoinResult:
    """Plan and run an interval join query.

    Parameters
    ----------
    query, data:
        The query and a mapping from relation name to :class:`Relation`.
    algorithm:
        Optional override: an algorithm name from
        :data:`~repro.core.planner.ALGORITHMS` or an instance.  When
        omitted the planner picks the paper's algorithm for the query
        class (and proves trivially empty queries without running jobs).
    executor, workers:
        Execution backend (``"serial"``, ``"threads"`` or
        ``"processes"``) and its worker count; ``None`` defers to the
        ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` environment variables and
        then the serial default.  Outputs and counters are bit-identical
        across backends.
    prune:
        For hybrid queries, prefer PASM over All-Seq-Matrix.
    observer:
        Optional :class:`~repro.obs.TraceRecorder`.  When given, the run
        is recorded as a span hierarchy (query -> algorithm -> job ->
        phase -> task) with counter deltas and cost-model charges;
        results are identical with or without it.
    faults, max_attempts, speculative:
        Fault-injection plan (seed / spec string / plan object), per-task
        retry budget, and speculative re-execution switch; ``None``
        defers to ``REPRO_FAULTS`` / ``REPRO_MAX_ATTEMPTS`` /
        ``REPRO_SPECULATIVE``.  Any plan within the retry budget leaves
        tuples and counters (modulo the ``faults`` group) bit-identical
        to a fault-free run.
    data_plane:
        ``"records"`` or ``"columnar"``; ``None`` defers to
        ``REPRO_DATA_PLANE``.  The columnar plane runs protocol-aware
        jobs on struct-of-arrays batches with bit-identical results;
        unsupported jobs fall back to the records plane per job.

    Other keyword arguments are forwarded to the algorithm; see
    :meth:`~repro.core.algorithms.base.JoinAlgorithm.run`.
    """
    query.validate_against(data)
    if algorithm is None:
        chosen = plan(query, prune=prune)
        if chosen.provably_empty:
            metrics = ExecutionMetrics(algorithm="planner-empty")
            if observer is not None:
                with observer.span(
                    f"query:{query}",
                    kind="query",
                    query_class=query.query_class.name,
                    planner_empty=True,
                    empty_proof=chosen.empty_proof,
                ):
                    pass
            return JoinResult(query, [], metrics)
        runner = chosen.algorithm
        assert runner is not None
    elif isinstance(algorithm, str):
        try:
            runner = ALGORITHMS[algorithm]()
        except KeyError:
            raise PlanningError(
                f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
            ) from None
    else:
        runner = algorithm

    def _run() -> JoinResult:
        return runner.run(
            query,
            data,
            num_partitions=num_partitions,
            fs=fs,
            executor=executor,
            workers=workers,
            cost_model=cost_model,
            partitioning=partitioning,
            partition_strategy=partition_strategy,
            observer=observer,
            faults=faults,
            max_attempts=max_attempts,
            speculative=speculative,
            data_plane=data_plane,
        )

    if observer is None:
        return _run()

    # Pre-run plan prediction (analytic: the profile and the config are
    # its only inputs, so it is executor- and fault-invariant) plus the
    # post-run reconciliation — both recorded as spans and run-group
    # gauges.  Strictly observational: the run itself is untouched.
    from repro.core.tuning import PredictConfig, profile_data
    from repro.errors import ReproError
    from repro.obs.explain import PlanReconciliation

    prediction = None
    prediction_error: Optional[str] = None
    try:
        prediction = runner.predict(
            query,
            profile_data(query, data),
            PredictConfig(
                num_partitions=num_partitions, cost_model=cost_model
            ),
        )
    except ReproError as exc:
        prediction_error = str(exc)

    # Seed the live telemetry hub (when one is attached) with the
    # analytic plan so progress/ETA can weight phases by predicted
    # volume instead of assuming uniform cycles.
    live = getattr(observer, "live", None)
    if live is not None and prediction is not None:
        live.set_plan(
            runner.name,
            [c.as_dict() for c in prediction.cycles],
            prediction.modelled_seconds,
        )

    with observer.span(
        f"query:{query}", kind="query", query_class=query.query_class.name
    ):
        plan_attributes = {"algorithm": runner.name}
        if prediction is not None:
            plan_attributes.update(
                tier=prediction.tier,
                quantities=prediction.quantities(),
                prediction=prediction.as_dict(),
            )
        else:
            plan_attributes["prediction_error"] = prediction_error
        with observer.span(
            f"plan:{runner.name}", kind="plan", **plan_attributes
        ):
            pass
        with observer.span(
            f"algorithm:{runner.name}", kind="algorithm", algorithm=runner.name
        ) as algo_span:
            result = _run()
            algo_span.annotate(
                tuples=len(result),
                cycles=result.metrics.num_cycles,
                shuffled_records=result.metrics.shuffled_records,
                modelled_seconds=result.metrics.simulated_seconds,
                observed_quantities=result.metrics.observed_quantities(),
            )
        if prediction is not None:
            reconciliation = PlanReconciliation.from_metrics(
                prediction, result.metrics
            )
            with observer.span(
                f"reconciliation:{runner.name}",
                kind="reconciliation",
                algorithm=reconciliation.algorithm,
                tier=reconciliation.tier,
                rows=[row.as_dict() for row in reconciliation.rows],
                max_relative_error=reconciliation.max_relative_error,
            ):
                pass
            reconciliation.publish(observer.metrics)
        return result
