"""Reference (oracle) join.

A deliberately simple backtracking evaluation of a multi-way interval join
used as ground truth by the test suite and by the PASM pruning stage's
correctness checks.  The code favours being *obviously correct* over being
fast: bind relations one at a time in query order; at each step scan all
rows of the next relation and keep those satisfying every condition whose
other relation is already bound.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.core.query import IntervalJoinQuery, JoinCondition
from repro.core.results import ExecutionMetrics, JoinResult
from repro.core.schema import Relation, Row

__all__ = ["reference_join", "enumerate_reference_tuples"]


def enumerate_reference_tuples(
    query: IntervalJoinQuery, data: Mapping[str, Relation]
) -> Iterator[Tuple[Row, ...]]:
    """Yield every satisfying tuple, in no particular order."""
    query.validate_against(data)
    order: Sequence[str] = query.relations

    # Conditions applicable when binding the k-th relation: both of the
    # condition's relations are within order[:k+1] and one of them is
    # order[k].
    step_conditions: List[List[JoinCondition]] = []
    for k, name in enumerate(order):
        bound = set(order[: k + 1])
        step_conditions.append(
            [
                cond
                for cond in query.conditions
                if cond.left.relation in bound
                and cond.right.relation in bound
                and name in (cond.left.relation, cond.right.relation)
            ]
        )

    binding: Dict[str, Row] = {}

    def satisfied(cond: JoinCondition) -> bool:
        left_row = binding[cond.left.relation]
        right_row = binding[cond.right.relation]
        return cond.predicate.holds(
            left_row.interval(cond.left.attribute),
            right_row.interval(cond.right.attribute),
        )

    def extend(k: int) -> Iterator[Tuple[Row, ...]]:
        if k == len(order):
            yield tuple(binding[name] for name in order)
            return
        name = order[k]
        for row in data[name].rows:
            binding[name] = row
            if all(satisfied(cond) for cond in step_conditions[k]):
                yield from extend(k + 1)
        binding.pop(name, None)

    yield from extend(0)


def reference_join(
    query: IntervalJoinQuery, data: Mapping[str, Relation]
) -> JoinResult:
    """Evaluate the query by backtracking; the ground-truth result."""
    tuples = list(enumerate_reference_tuples(query, data))
    metrics = ExecutionMetrics(algorithm="reference", output_records=len(tuples))
    return JoinResult(query, tuples, metrics)
