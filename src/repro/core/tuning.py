"""Cost-based tuning of partition counts and grid granularity.

The paper fixes 16 reducers and hand-picks grid granularities, noting
(Section 7.2) that the cost-model-driven tuning of Zhang et al. could be
integrated "by taking the distribution of interval lengths into account".
This module does exactly that for this library's algorithms: from cheap
data statistics it predicts, per candidate partition count, the
communication and straggler terms of the configured
:class:`~repro.mapreduce.cost.CostModel`, and recommends the candidate
with the lowest predicted time.

The predictions intentionally reuse the same formulas the ablation
benchmarks measure (A1a/A1b), so `recommend_*` can be validated against
actual runs — see ``tests/core/test_tuning.py``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.core.graph import JoinGraph
from repro.core.query import IntervalJoinQuery, JoinCondition, QueryClass
from repro.core.schema import Relation
from repro.mapreduce.cost import CostModel, DEFAULT_COST_MODEL

__all__ = [
    "ShareRecommendation",
    "recommend_shares",
    "DataProfile",
    "Candidate",
    "TuningReport",
    "profile_data",
    "recommend_partitions",
    "recommend_grid",
    "PredictConfig",
    "CyclePrediction",
    "PlanPrediction",
    "split_factor",
    "crossing_fraction",
    "replicate_fanout",
    "condition_selectivity",
    "cycle_seconds",
]


@dataclass(frozen=True)
class DataProfile:
    """Cheap sufficient statistics of the join input."""

    total_rows: int
    rows_per_relation: Dict[str, int]
    mean_length: float
    time_span: float

    @property
    def boundary_density(self) -> float:
        """Expected fraction of intervals crossing a unit-width boundary,
        per unit of partition width (mean length / span)."""
        if self.time_span <= 0:
            return 0.0
        return self.mean_length / self.time_span


def profile_data(
    query: IntervalJoinQuery, data: Mapping[str, Relation]
) -> DataProfile:
    """Collect the statistics the predictors need (single pass)."""
    rows_per_relation: Dict[str, int] = {}
    total_length = 0.0
    count = 0
    lo: Optional[float] = None
    hi: Optional[float] = None
    for term in query.terms:
        relation = data[term.relation]
        rows_per_relation.setdefault(term.relation, len(relation))
        for row in relation.rows:
            interval = row.interval(term.attribute)
            total_length += interval.length
            count += 1
            lo = interval.start if lo is None else min(lo, interval.start)
            hi = interval.end if hi is None else max(hi, interval.end)
    span = (hi - lo) if (lo is not None and hi is not None) else 1.0
    return DataProfile(
        total_rows=sum(rows_per_relation.values()),
        rows_per_relation=rows_per_relation,
        mean_length=(total_length / count) if count else 0.0,
        time_span=max(span, 1e-9),
    )


@dataclass(frozen=True)
class Candidate:
    """One evaluated configuration."""

    partitions: int
    predicted_seconds: float
    predicted_shuffled: float
    predicted_max_load: float


@dataclass(frozen=True)
class TuningReport:
    """The recommendation plus every candidate considered."""

    best: Candidate
    candidates: Tuple[Candidate, ...]
    algorithm: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TuningReport({self.algorithm}: use {self.best.partitions} "
            f"partitions, ~{self.best.predicted_seconds:.1f}s predicted)"
        )


def _predict_rccis(
    profile: DataProfile, partitions: int, cost: CostModel
) -> Candidate:
    """Analytic RCCIS cost: two cycles; cycle 1 splits everything, cycle
    2 projects the non-flagged and replicates boundary-crossers to half
    the following partitions on average."""
    n = profile.total_rows
    width = profile.time_span / partitions
    split_factor = 1.0 + (
        profile.mean_length / width if width > 0 else 0.0
    )
    crossing_fraction = min(1.0, profile.mean_length / width) if width else 1.0
    cycle1 = n * split_factor
    replicated_pairs = n * crossing_fraction * (partitions / 2.0)
    cycle2 = n + replicated_pairs
    shuffled = cycle1 + cycle2
    # Loads are near-uniform for uniform data; the straggler holds its
    # partition's share of each cycle.
    max_load = max(cycle1, cycle2) / partitions
    seconds = (
        2 * cost.per_cycle_overhead
        + (2 * n / cost.parallelism) * cost.read_cost
        + max(
            shuffled / cost.parallelism * cost.shuffle_cost,
            max_load * cost.shuffle_cost,
        )
        * 2  # two reduce phases of similar magnitude
    )
    return Candidate(partitions, seconds, shuffled, max_load)


def recommend_partitions(
    query: IntervalJoinQuery,
    data: Mapping[str, Relation],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    candidates: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
) -> TuningReport:
    """Recommend a 1-dimensional partition count for RCCIS.

    Only meaningful for colocation queries (the planner's RCCIS class).
    """
    if query.query_class is not QueryClass.COLOCATION:
        raise PlanningError(
            "recommend_partitions tunes RCCIS; use recommend_grid for "
            f"{query.query_class.name} queries"
        )
    profile = profile_data(query, data)
    evaluated = tuple(
        _predict_rccis(profile, parts, cost_model) for parts in candidates
    )
    best = min(evaluated, key=lambda c: c.predicted_seconds)
    return TuningReport(best=best, candidates=evaluated, algorithm="rccis")


def _count_consistent_cells(
    graph: JoinGraph, o: int
) -> Tuple[int, List[float]]:
    """Consistent-cell count plus, per dimension, the mean number of
    consistent cells pinned at each coordinate (the routing fan-out)."""
    dims = len(graph.components)
    orders = graph.component_orders
    total = 0
    fanout_sums = [0.0] * dims
    for cell in itertools.product(range(o), repeat=dims):
        if all(cell[j] <= cell[k] for j, k in orders):
            total += 1
            for dim in range(dims):
                fanout_sums[dim] += 1
    if total == 0:
        return 0, [0.0] * dims
    # Rows pinned on dimension d reach (consistent cells with that
    # coordinate); averaged over coordinates that is total / o.
    return total, [total / o] * dims


@dataclass(frozen=True)
class ShareRecommendation:
    """Per-dimension granularities (Afrati-style shares)."""

    shares: Tuple[int, ...]
    predicted_shuffled: float
    predicted_max_cell_load: float
    total_cells: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShareRecommendation(shares={self.shares}, "
            f"cells={self.total_cells}, "
            f"~{self.predicted_shuffled:.0f} pairs, "
            f"~{self.predicted_max_cell_load:.0f}/cell)"
        )


def recommend_shares(
    query: IntervalJoinQuery,
    data: Mapping[str, Relation],
    cell_budget: int = 64,
    max_share: int = 16,
) -> ShareRecommendation:
    """Afrati-style share allocation: per-dimension granularities.

    Afrati & Ullman size each dimension of a multi-way join's reducer
    grid in proportion to how much data routes through it, minimising
    communication subject to a reducer budget — the integration the paper
    names as future work (Section 9.2).  Rows routed on dimension ``d``
    fan out to roughly ``cells / o_d`` consistent cells, so total
    communication is ``sum_d n_d * cells / o_d`` and the per-cell
    (straggler) load is ``sum_d n_d / o_d`` — heavy dimensions deserve
    large shares.  Minimising communication alone would always collapse
    to one cell, so the objective is the cost-model's reduce-phase form:
    ``max(communication / parallelism, straggler)``.  The discrete
    optimum is found by exhaustive search over granularity vectors within
    the cell budget (dimension counts are small — the paper's maximum is
    four).

    Returns shares usable directly as ``GenMatrix(grid_parts=shares)``.
    """
    graph = JoinGraph(query)
    dims = len(graph.components)
    if dims < 2:
        raise PlanningError("share allocation needs >= 2 grid dimensions")
    profile = profile_data(query, data)
    rows_per_dim = [
        sum(
            profile.rows_per_relation.get(term.relation, 0)
            for term in comp.terms
        )
        for comp in graph.components
    ]

    orders = graph.component_orders

    def consistent_cells(shares: Sequence[int]) -> int:
        count = 0
        for cell in itertools.product(*(range(o) for o in shares)):
            # Uniform per-dimension partitionings over one shared time
            # range: coordinate i of granularity o covers fraction
            # [i/o, (i+1)/o); an order (j, k) is possible unless dim j's
            # slice starts at or after dim k's slice ends.
            ok = True
            for j, k in orders:
                min_j = 0.0 if cell[j] == 0 else cell[j] / shares[j]
                max_k = (
                    1.0
                    if cell[k] == shares[k] - 1
                    else (cell[k] + 1) / shares[k]
                )
                if min_j >= max_k:
                    ok = False
                    break
            if ok:
                count += 1
        return count

    multi_dims = {
        comp.index for comp in graph.components if len(comp.terms) > 1
    }
    parallelism = DEFAULT_COST_MODEL.parallelism
    best: Optional[ShareRecommendation] = None
    best_key: Optional[Tuple[float, int]] = None
    for shares in itertools.product(range(1, max_share + 1), repeat=dims):
        total = math.prod(shares)
        if total > cell_budget:
            continue
        cells = consistent_cells(shares)
        if cells == 0:
            continue
        shuffled = 0.0
        flag_shuffled = 0.0
        for dim, (rows, o) in enumerate(zip(rows_per_dim, shares)):
            width = profile.time_span / o
            crossing = min(1.0, profile.mean_length / width) if width else 1.0
            if dim in multi_dims:
                # Flag cycle splits the dimension's rows; flagged rows
                # then fan out to roughly half the consistent cells.
                flag_shuffled += rows * (1.0 + crossing)
                fanout = (1 - crossing) * cells / o + crossing * cells / 2.0
            else:
                fanout = cells / o
            shuffled += rows * fanout
        straggler = shuffled / cells
        phase = max(
            (shuffled + flag_shuffled) / parallelism, straggler
        )
        key = (phase, cells)
        if best_key is None or key < best_key:
            best_key = key
            best = ShareRecommendation(
                shares=tuple(shares),
                predicted_shuffled=shuffled + flag_shuffled,
                predicted_max_cell_load=straggler,
                total_cells=cells,
            )
    assert best is not None  # shares=(1,...,1) always qualifies
    return best


def recommend_grid(
    query: IntervalJoinQuery,
    data: Mapping[str, Relation],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    candidates: Sequence[int] = (2, 3, 4, 5, 6, 8, 10, 12),
) -> TuningReport:
    """Recommend a per-dimension granularity ``o`` for the grid engine
    (All-Matrix / All-Seq-Matrix / Gen-Matrix)."""
    graph = JoinGraph(query)
    dims = len(graph.components)
    if dims < 2:
        raise PlanningError(
            "grid tuning needs >= 2 components; colocation queries use "
            "recommend_partitions"
        )
    profile = profile_data(query, data)
    # Rows routed per dimension: the rows of the relations whose terms
    # live in that component.
    rows_per_dim = [
        sum(
            profile.rows_per_relation.get(term.relation, 0)
            for term in comp.terms
        )
        for comp in graph.components
    ]
    evaluated = []
    for o in candidates:
        cells, fanouts = _count_consistent_cells(graph, o)
        if cells == 0:
            continue
        # Per-row fan-out on dimension d = consistent cells with that
        # coordinate pinned = cells / o on average.
        shuffled = sum(
            rows * fanout for rows, fanout in zip(rows_per_dim, fanouts)
        )
        max_load = shuffled / cells
        seconds = (
            cost_model.per_cycle_overhead
            + (profile.total_rows / cost_model.parallelism)
            * cost_model.read_cost
            + max(
                shuffled / cost_model.parallelism * cost_model.shuffle_cost,
                max_load * cost_model.shuffle_cost,
            )
        )
        evaluated.append(Candidate(o, seconds, shuffled, max_load))
    best = min(evaluated, key=lambda c: c.predicted_seconds)
    return TuningReport(
        best=best, candidates=tuple(evaluated), algorithm="grid"
    )


# ----------------------------------------------------------------------
# Plan prediction: the EXPLAIN-facing contract shared by all algorithms.
#
# ``JoinAlgorithm.predict`` (see ``repro.core.algorithms.base``) returns a
# :class:`PlanPrediction` — per-cycle communication volumes plus grid
# shape — computed either *analytically* from a :class:`DataProfile`
# alone (the closed-form Section-6 style formulas below) or *exactly* by
# dry-running the algorithm's real mappers and decision reducers over the
# data (``repro.core.predict``).  The reconciliation layer
# (``repro.obs.explain``) joins these numbers against the observed
# ``ExecutionMetrics``/``MetricsRegistry`` values after the run.


def split_factor(profile: DataProfile, parts: int) -> float:
    """Expected SPLIT fan-out per row: 1 + mean length / partition width."""
    width = profile.time_span / parts if parts else 0.0
    return 1.0 + (profile.mean_length / width if width > 0 else 0.0)


def crossing_fraction(profile: DataProfile, parts: int) -> float:
    """Expected fraction of rows crossing their right partition boundary."""
    width = profile.time_span / parts if parts else 0.0
    return min(1.0, profile.mean_length / width) if width > 0 else 1.0


def replicate_fanout(parts: int) -> float:
    """Expected REPLICATE fan-out: a uniform start lands in partition
    ``i`` and copies to partitions ``i..parts-1`` — ``(parts + 1) / 2``
    on average."""
    return (parts + 1) / 2.0


def condition_selectivity(
    condition: JoinCondition, profile: DataProfile
) -> float:
    """Coarse selectivity estimate for one Allen predicate.

    Sequence predicates (``before``/``after``) hold for half of the
    random pairs; colocation predicates require a shared point, which two
    uniform intervals of mean length ``L`` over span ``T`` do with
    probability about ``2 L / T``.  Deliberately rough — EXPLAIN reports
    the resulting error, and ``check_model_error.py`` pins it.
    """
    if condition.predicate.is_sequence:
        return 0.5
    if profile.time_span <= 0:
        return 1.0
    return min(1.0, 2.0 * profile.mean_length / profile.time_span)


def cycle_seconds(
    cost: CostModel, reads: float, shuffled: float, max_load: float
) -> float:
    """Modelled seconds for one MR cycle, cost-model reduce-phase form.

    Deliberately omits the comparison/output/queueing terms that the
    observed :meth:`CostModel.job_time` includes — the residual is the
    cost-model error that the reconciliation layer tracks.
    """
    return (
        cost.per_cycle_overhead
        + (reads / cost.parallelism) * cost.read_cost
        + max(
            shuffled / cost.parallelism * cost.shuffle_cost,
            max_load * cost.shuffle_cost,
        )
    )


@dataclass(frozen=True)
class PredictConfig:
    """Inputs :meth:`JoinAlgorithm.predict` needs besides the profile."""

    num_partitions: int = 16
    cost_model: CostModel = DEFAULT_COST_MODEL
    #: ``True`` dry-runs the algorithm's real mappers + decision reducers
    #: over the actual data (requires ``data``); default is the
    #: closed-form analytic tier.
    exact: bool = False
    #: The actual relations, required by the exact tier.
    data: Optional[Mapping[str, Relation]] = None

    def require_data(self) -> Mapping[str, Relation]:
        if self.data is None:
            raise PlanningError(
                "exact prediction dry-runs the mappers and needs data="
            )
        return self.data


@dataclass(frozen=True)
class CyclePrediction:
    """Predicted communication volumes of one MapReduce cycle."""

    name: str
    records_read: float
    map_output_records: float
    shuffled_records: float
    reduce_tasks: int
    max_reducer_load: float

    def seconds(self, cost: CostModel) -> float:
        return cycle_seconds(
            cost, self.records_read, self.shuffled_records,
            self.max_reducer_load,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "records_read": self.records_read,
            "map_output_records": self.map_output_records,
            "shuffled_records": self.shuffled_records,
            "reduce_tasks": self.reduce_tasks,
            "max_reducer_load": self.max_reducer_load,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CyclePrediction":
        return cls(
            name=str(payload["name"]),
            records_read=float(payload["records_read"]),
            map_output_records=float(payload["map_output_records"]),
            shuffled_records=float(payload["shuffled_records"]),
            reduce_tasks=int(payload["reduce_tasks"]),
            max_reducer_load=float(payload["max_reducer_load"]),
        )


@dataclass(frozen=True)
class PlanPrediction:
    """Predicted run-group quantities for a whole physical plan.

    ``max_reducer_load`` is a plan-level figure (not the max of the
    per-cycle figures): logical reducer keys collide across cycles and
    ``ExecutionMetrics.from_pipeline`` sums loads per key across jobs, so
    each algorithm's predictor accounts for key-space collisions itself.
    """

    algorithm: str
    cost_model: CostModel
    cycles: Tuple[CyclePrediction, ...]
    max_reducer_load: float
    consistent_reducers: int
    total_reducers: int
    tier: str = "analytic"
    notes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def num_cycles(self) -> int:
        return len(self.cycles)

    @property
    def records_read(self) -> float:
        return sum(c.records_read for c in self.cycles)

    @property
    def map_output_records(self) -> float:
        return sum(c.map_output_records for c in self.cycles)

    @property
    def shuffled_records(self) -> float:
        return sum(c.shuffled_records for c in self.cycles)

    @property
    def replication_factor(self) -> float:
        reads = self.records_read
        return self.map_output_records / reads if reads else 0.0

    @property
    def modelled_seconds(self) -> float:
        return sum(c.seconds(self.cost_model) for c in self.cycles)

    def quantities(self) -> Dict[str, float]:
        """The quantities reconciliation compares, keyed as metrics are."""
        return {
            "records_read": self.records_read,
            "map_output_records": self.map_output_records,
            "shuffled_records": self.shuffled_records,
            "replication_factor": self.replication_factor,
            "max_reducer_load": self.max_reducer_load,
            "num_cycles": float(self.num_cycles),
            "modelled_seconds": self.modelled_seconds,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "tier": self.tier,
            "consistent_reducers": self.consistent_reducers,
            "total_reducers": self.total_reducers,
            "max_reducer_load": self.max_reducer_load,
            "cycles": [c.as_dict() for c in self.cycles],
            "notes": list(self.notes),
            "cost_model": {
                "read_cost": self.cost_model.read_cost,
                "shuffle_cost": self.cost_model.shuffle_cost,
                "comparison_cost": self.cost_model.comparison_cost,
                "output_cost": self.cost_model.output_cost,
                "per_cycle_overhead": self.cost_model.per_cycle_overhead,
                "parallelism": self.cost_model.parallelism,
            },
            "quantities": self.quantities(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PlanPrediction":
        cost = CostModel(**payload["cost_model"])
        return cls(
            algorithm=str(payload["algorithm"]),
            cost_model=cost,
            cycles=tuple(
                CyclePrediction.from_dict(c) for c in payload["cycles"]
            ),
            max_reducer_load=float(payload["max_reducer_load"]),
            consistent_reducers=int(payload["consistent_reducers"]),
            total_reducers=int(payload["total_reducers"]),
            tier=str(payload.get("tier", "analytic")),
            notes=tuple(payload.get("notes", ())),
        )
