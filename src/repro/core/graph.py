"""Join graphs, colocation components, and component ordering.

Sections 8 and 9 of the paper view a query as a graph ``G`` whose vertices
are relations (hybrid queries) or ``(relation, attribute)`` pairs (general
queries) and whose edges are conditions, classified *colocation* or
*sequence*.  Dropping sequence edges yields ``G'`` whose connected
components each encapsulate a colocation sub-query; sequence edges then
induce a *less-than-order* between components.

This module computes those components, the component order (with
contradiction detection: opposite orders between the same pair, or a
directed order cycle, prove the query output empty), and exposes an Allen
path-consistency pre-check as a stronger emptiness prover.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError, UnsatisfiableQueryError
from repro.intervals.composition import ConstraintNetwork, path_consistency
from repro.core.query import IntervalJoinQuery, JoinCondition, Term

__all__ = ["Component", "JoinGraph", "component_order_matrix"]


@dataclass(frozen=True)
class Component:
    """One connected component of the colocation graph ``G'``.

    Attributes
    ----------
    index:
        The component's dimension index in the grid algorithms.
    terms:
        The ``(relation, attribute)`` vertices of the component.
    conditions:
        The colocation conditions internal to the component — the
        colocation sub-query :math:`Q_C` the component encapsulates.
    """

    index: int
    terms: FrozenSet[Term]
    conditions: Tuple[JoinCondition, ...]

    @property
    def relations(self) -> FrozenSet[str]:
        return frozenset(term.relation for term in self.terms)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(sorted(str(t) for t in self.terms))
        return f"C{self.index}({names})"


class JoinGraph:
    """The query's join graph and its derived structures."""

    def __init__(self, query: IntervalJoinQuery) -> None:
        self.query = query
        self.components: Tuple[Component, ...] = self._build_components()
        self._term_component: Dict[Term, int] = {
            term: comp.index for comp in self.components for term in comp.terms
        }
        # orders[(i, j)] = True  means component i must precede-or-tie j
        # (i's dimension index must be <= j's in every consistent reducer).
        self.component_orders: FrozenSet[Tuple[int, int]] = (
            self._component_orders()
        )
        self.sequence_conditions: Tuple[JoinCondition, ...] = tuple(
            c for c in query.conditions if c.is_sequence
        )

    # ------------------------------------------------------------------
    def _build_components(self) -> Tuple[Component, ...]:
        terms = list(self.query.terms)
        parent: Dict[Term, Term] = {term: term for term in terms}

        def find(t: Term) -> Term:
            while parent[t] is not t:
                parent[t] = parent[parent[t]]
                t = parent[t]
            return t

        def union(a: Term, b: Term) -> None:
            ra, rb = find(a), find(b)
            if ra is not rb:
                parent[ra] = rb

        for cond in self.query.conditions:
            if cond.is_colocation:
                union(cond.left, cond.right)

        groups: Dict[Term, List[Term]] = defaultdict(list)
        for term in terms:
            groups[find(term)].append(term)
        # Deterministic component numbering: by smallest member term.
        ordered_groups = sorted(
            groups.values(), key=lambda members: min(members)
        )
        components: List[Component] = []
        for index, members in enumerate(ordered_groups):
            member_set = frozenset(members)
            internal = tuple(
                cond
                for cond in self.query.conditions
                if cond.is_colocation
                and cond.left in member_set
                and cond.right in member_set
            )
            components.append(Component(index, member_set, internal))
        return tuple(components)

    # ------------------------------------------------------------------
    def component_of(self, term: Term) -> Component:
        """The component containing a ``(relation, attribute)`` vertex."""
        try:
            return self.components[self._term_component[term]]
        except KeyError:
            raise QueryError(f"term {term} not in query") from None

    def components_of_relation(self, relation: str) -> List[Component]:
        """All components a relation participates in (one per attribute
        for single-attribute queries; possibly several in general ones)."""
        return [
            comp for comp in self.components if relation in comp.relations
        ]

    # ------------------------------------------------------------------
    def _component_orders(self) -> FrozenSet[Tuple[int, int]]:
        """Orders between components induced by sequence conditions
        (Section 9's 'less-than order between connected components').

        Raises
        ------
        UnsatisfiableQueryError
            When two sequence conditions enforce opposite orders between
            the same component pair, or the orders form a directed cycle —
            in either case no tuple can satisfy the query.
        """
        orders: Set[Tuple[int, int]] = set()
        origin: Dict[Tuple[int, int], JoinCondition] = {}
        for cond in self.query.conditions:
            if not cond.is_sequence:
                continue
            ci = self._term_component[cond.left]
            cj = self._term_component[cond.right]
            if ci == cj:
                # A sequence edge inside one colocation component: the
                # colocation chain ties the two terms to a shared point
                # while the sequence predicate demands disjointness.  Not
                # automatically contradictory (the colocation path may pass
                # through other relations), so keep it as a plain
                # condition; it imposes no inter-component order.
                continue
            if cond.predicate.enforces_left_first():
                pair = (ci, cj)
            else:
                pair = (cj, ci)
            reverse = (pair[1], pair[0])
            if reverse in orders:
                raise UnsatisfiableQueryError(
                    "conditions enforce opposite orders between components "
                    f"{pair[0]} and {pair[1]} "
                    f"({origin[reverse]} vs {cond}); "
                    "the query output is empty"
                )
            orders.add(pair)
            origin.setdefault(pair, cond)
        self._check_acyclic(orders, origin)
        return frozenset(orders)

    def _check_acyclic(
        self,
        orders: Set[Tuple[int, int]],
        origin: Dict[Tuple[int, int], JoinCondition],
    ) -> None:
        """Sequence orders are strict (before/after), so a directed cycle
        proves emptiness."""
        successors: Dict[int, Set[int]] = defaultdict(set)
        for a, b in orders:
            successors[a].add(b)
        state: Dict[int, int] = {}  # 0 = visiting, 1 = done

        def visit(node: int, stack: Tuple[int, ...]) -> None:
            state[node] = 0
            for nxt in successors[node]:
                if state.get(nxt) == 0:
                    conditions = ", ".join(
                        str(cond) for cond in origin.values()
                    )
                    raise UnsatisfiableQueryError(
                        "sequence conditions order components in a cycle "
                        f"through {nxt} (predicate cycle: {conditions}); "
                        "the query output is empty"
                    )
                if nxt not in state:
                    visit(nxt, stack + (node,))
            state[node] = 1

        for node in list(successors):
            if node not in state:
                visit(node, ())

    # ------------------------------------------------------------------
    def constraint_network(self) -> ConstraintNetwork:
        """The query as an Allen constraint network over its terms."""
        names = [str(term) for term in self.query.terms]
        net = ConstraintNetwork(names)
        for cond in self.query.conditions:
            net.constrain(str(cond.left), str(cond.right), [cond.predicate])
        return net

    def prove_empty(self) -> bool:
        """Try to prove the query empty via Allen path consistency.

        Returns True when provably empty (sound); False means "unknown",
        never "non-empty".
        """
        return self.empty_proof() is not None

    def empty_proof(self) -> Optional[str]:
        """A human-readable emptiness proof, or ``None`` when unknown.

        Runs Allen path consistency over the query's constraint network;
        when some constraint empties, the proof names the term pair and
        the query conditions touching it (the unsatisfiable predicate
        cycle), so EXPLAIN can print *why* the planner answers without
        running a job.  ``None`` means "not provably empty", never
        "non-empty" — path consistency is sound but incomplete.
        """
        try:
            path_consistency(self.constraint_network())
        except UnsatisfiableQueryError as exc:
            proof = str(exc)
            pair = getattr(exc, "pair", None)
            if pair:
                involved = [
                    str(cond)
                    for cond in self.query.conditions
                    if str(cond.left) in pair or str(cond.right) in pair
                ]
                if involved:
                    proof += (
                        "; conflicting conditions: " + ", ".join(involved)
                    )
            return proof
        return None


def component_order_matrix(
    graph: JoinGraph,
) -> List[Tuple[int, int]]:
    """The component order pairs, sorted — convenience for grid builders."""
    return sorted(graph.component_orders)
