"""Algorithm selection.

The planner applies the paper's taxonomy: colocation queries run RCCIS,
sequence queries run All-Matrix, hybrid queries run All-Seq-Matrix (or
PASM when pruning is requested), and everything else runs Gen-Matrix.
Single-condition queries short-circuit to the 2-way join.  Before choosing
an algorithm the planner tries to *prove the query empty* with Allen path
consistency — provably empty queries are answered without running a
single MapReduce job.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.errors import UnsatisfiableQueryError
from repro.core.algorithms.all_replicate import AllReplicate
from repro.core.algorithms.base import JoinAlgorithm
from repro.core.algorithms.cascade import TwoWayCascade
from repro.core.algorithms.gen_matrix import AllMatrix, AllSeqMatrix, GenMatrix
from repro.core.algorithms.hybrid import FCTS, FSTC
from repro.core.algorithms.pasm import PASM
from repro.core.algorithms.rccis import RCCIS
from repro.core.algorithms.two_way import TwoWayJoin
from repro.core.graph import JoinGraph
from repro.core.query import IntervalJoinQuery, QueryClass

__all__ = ["ALGORITHMS", "choose_algorithm", "plan", "Plan"]

#: Registry of all algorithms by name (benchmarks and the executor use it).
ALGORITHMS: Dict[str, Type[JoinAlgorithm]] = {
    cls.name: cls
    for cls in (
        TwoWayJoin,
        TwoWayCascade,
        AllReplicate,
        RCCIS,
        AllMatrix,
        AllSeqMatrix,
        PASM,
        GenMatrix,
        FCTS,
        FSTC,
    )
}


class Plan:
    """A chosen algorithm plus the reasoning behind the choice."""

    def __init__(
        self,
        query: IntervalJoinQuery,
        algorithm: Optional[JoinAlgorithm],
        provably_empty: bool,
        reason: str,
    ) -> None:
        self.query = query
        self.algorithm = algorithm
        self.provably_empty = provably_empty
        self.reason = reason

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        name = self.algorithm.name if self.algorithm else "none"
        return f"Plan({name}: {self.reason})"


def choose_algorithm(
    query: IntervalJoinQuery, prune: bool = False
) -> JoinAlgorithm:
    """The paper's default algorithm for the query's class."""
    if len(query.conditions) == 1 and len(query.relations) == 2:
        return TwoWayJoin()
    klass = query.query_class
    if klass is QueryClass.COLOCATION:
        return RCCIS()
    if klass is QueryClass.SEQUENCE:
        return AllMatrix()
    if klass is QueryClass.HYBRID:
        return PASM() if prune else AllSeqMatrix()
    return GenMatrix()


def plan(query: IntervalJoinQuery, prune: bool = False) -> Plan:
    """Build an execution plan, proving emptiness when possible."""
    try:
        graph = JoinGraph(query)
        if graph.prove_empty():
            return Plan(
                query, None, True,
                "Allen path consistency proves the query empty",
            )
    except UnsatisfiableQueryError as exc:
        return Plan(query, None, True, str(exc))
    algorithm = choose_algorithm(query, prune=prune)
    return Plan(
        query,
        algorithm,
        False,
        f"{query.query_class.value} query -> {algorithm.name}",
    )
