"""Algorithm selection.

The planner applies the paper's taxonomy: colocation queries run RCCIS,
sequence queries run All-Matrix, hybrid queries run All-Seq-Matrix (or
PASM when pruning is requested), and everything else runs Gen-Matrix.
Single-condition queries short-circuit to the 2-way join.  Before choosing
an algorithm the planner tries to *prove the query empty* with Allen path
consistency — provably empty queries are answered without running a
single MapReduce job.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.errors import UnsatisfiableQueryError
from repro.core.algorithms.all_replicate import AllReplicate
from repro.core.algorithms.base import JoinAlgorithm
from repro.core.algorithms.cascade import TwoWayCascade
from repro.core.algorithms.gen_matrix import AllMatrix, AllSeqMatrix, GenMatrix
from repro.core.algorithms.hybrid import FCTS, FSTC
from repro.core.algorithms.pasm import PASM
from repro.core.algorithms.rccis import RCCIS
from repro.core.algorithms.two_way import TwoWayJoin
from repro.core.graph import JoinGraph
from repro.core.query import IntervalJoinQuery, QueryClass

__all__ = [
    "ALGORITHMS",
    "choose_algorithm",
    "plan",
    "plan_alternatives",
    "Plan",
]

#: Registry of all algorithms by name (benchmarks and the executor use it).
ALGORITHMS: Dict[str, Type[JoinAlgorithm]] = {
    cls.name: cls
    for cls in (
        TwoWayJoin,
        TwoWayCascade,
        AllReplicate,
        RCCIS,
        AllMatrix,
        AllSeqMatrix,
        PASM,
        GenMatrix,
        FCTS,
        FSTC,
    )
}


class Plan:
    """A chosen algorithm plus the reasoning behind the choice.

    ``empty_proof`` carries the Allen path-consistency proof text when
    the planner answered without running a job (which constraint pair
    emptied and the conditions touching it); ``alternatives`` records,
    per non-chosen registered algorithm, why the planner rejected it —
    both are what ``repro explain`` prints.
    """

    def __init__(
        self,
        query: IntervalJoinQuery,
        algorithm: Optional[JoinAlgorithm],
        provably_empty: bool,
        reason: str,
        empty_proof: Optional[str] = None,
        alternatives: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.query = query
        self.algorithm = algorithm
        self.provably_empty = provably_empty
        self.reason = reason
        self.empty_proof = empty_proof
        self.alternatives = tuple(alternatives)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        name = self.algorithm.name if self.algorithm else "none"
        return f"Plan({name}: {self.reason})"


def choose_algorithm(
    query: IntervalJoinQuery, prune: bool = False
) -> JoinAlgorithm:
    """The paper's default algorithm for the query's class."""
    if len(query.conditions) == 1 and len(query.relations) == 2:
        return TwoWayJoin()
    klass = query.query_class
    if klass is QueryClass.COLOCATION:
        return RCCIS()
    if klass is QueryClass.SEQUENCE:
        return AllMatrix()
    if klass is QueryClass.HYBRID:
        return PASM() if prune else AllSeqMatrix()
    return GenMatrix()


def plan_alternatives(
    query: IntervalJoinQuery, chosen: str, prune: bool = False
) -> Tuple[Tuple[str, str], ...]:
    """Why each registered algorithm other than ``chosen`` was not picked.

    Returns ``(algorithm_name, reason)`` pairs in registry order — the
    rejected-alternatives section of EXPLAIN.  Every reason is specific
    to this query's class, not a generic capability blurb.
    """
    klass = query.query_class
    single = len(query.conditions) == 1 and len(query.relations) == 2
    out: List[Tuple[str, str]] = []
    for name in ALGORITHMS:
        if name == chosen:
            continue
        if name == "two_way":
            reason = (
                "handles single-condition two-relation queries only; "
                f"this query has {len(query.conditions)} conditions over "
                f"{len(query.relations)} relations"
            )
        elif name == "two_way_cascade":
            reason = (
                "cascade of 2-way joins; an explicit override, never the "
                "planner default (intermediate results can blow up)"
            )
        elif name == "all_replicate":
            reason = (
                "replicates every row to every reducer; the paper's "
                "baseline, never chosen by the planner"
            )
        elif name == "rccis":
            if single:
                reason = "single-condition query short-circuits to two_way"
            else:
                reason = (
                    "handles colocation queries only; this query is "
                    f"{klass.value}"
                )
        elif name == "all_matrix":
            if single:
                reason = "single-condition query short-circuits to two_way"
            else:
                reason = (
                    "handles sequence queries only; this query is "
                    f"{klass.value}"
                )
        elif name == "all_seq_matrix":
            if klass is QueryClass.HYBRID and prune:
                reason = "superseded by pasm because pruning was requested"
            elif single:
                reason = "single-condition query short-circuits to two_way"
            else:
                reason = (
                    "hybrid-query default only; this query is "
                    f"{klass.value}"
                )
        elif name == "pasm":
            if klass is QueryClass.HYBRID and not prune:
                reason = (
                    "marking-cycle pruning not requested (pass prune=True "
                    "/ --prune to prefer it)"
                )
            elif single:
                reason = "single-condition query short-circuits to two_way"
            else:
                reason = (
                    "handles hybrid queries only; this query is "
                    f"{klass.value}"
                )
        elif name == "gen_matrix":
            if klass is QueryClass.GENERAL and single:
                reason = "single-condition query short-circuits to two_way"
            elif klass is QueryClass.GENERAL:
                reason = "general fallback (should have been chosen)"
            else:
                reason = (
                    f"general fallback; the {klass.value} class has a "
                    "more specific algorithm"
                )
        elif name in ("fcts", "fstc"):
            reason = (
                "hybrid decomposition available via an explicit "
                "algorithm override, not a planner default"
            )
        else:  # pragma: no cover - future algorithms
            reason = "not the planner's default for this query class"
        out.append((name, reason))
    return tuple(out)


def plan(query: IntervalJoinQuery, prune: bool = False) -> Plan:
    """Build an execution plan, proving emptiness when possible."""
    try:
        graph = JoinGraph(query)
        proof = graph.empty_proof()
        if proof is not None:
            return Plan(
                query, None, True,
                "Allen path consistency proves the query empty",
                empty_proof=proof,
            )
    except UnsatisfiableQueryError as exc:
        return Plan(query, None, True, str(exc), empty_proof=str(exc))
    algorithm = choose_algorithm(query, prune=prune)
    return Plan(
        query,
        algorithm,
        False,
        f"{query.query_class.value} query -> {algorithm.name}",
        alternatives=plan_alternatives(query, algorithm.name, prune=prune),
    )
