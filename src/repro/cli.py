"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    The paper's synthetic interval script as a CLI: writes a relation of
    random intervals (sizes, distributions, ranges all configurable).
``trace``
    Generate a synthetic packet trace profile and write its packet-train
    intervals.
``run``
    Execute an interval join query over relation files, print the metric
    summary, optionally write the output tuples — plus observability
    artifacts: ``--trace`` (Chrome trace-event or JSONL span log),
    ``--history`` (JobHistory JSON + totals), ``--report`` (skew /
    straggler / empty-task diagnosis), ``--metrics`` / ``--metrics-out``
    (metric summary, JSON or Prometheus text), ``--html`` (one
    self-contained dashboard page) and ``--explain`` (EXPLAIN the plan
    before running, reconcile predictions against observations after).
    Live monitoring: ``--live`` (per-task heartbeat telemetry with an
    observed-straggler watchdog), ``--progress`` (in-terminal
    progress/ETA ticker), ``--serve-status PORT`` (HTTP endpoint with
    ``/metrics``, ``/progress`` and a live dashboard at ``/``) and
    ``--task-timeout`` (fail-and-retry attempts that overrun a budget).
``top``
    Attach to a serving run's status endpoint and render a live
    terminal view of its progress, phases and stalled tasks.
``explain``
    Render the physical plan for a query without running it: planner
    rationale (chosen algorithm and why each alternative was rejected,
    or the Allen path-consistency emptiness proof), MapReduce cycles,
    reducer-grid shape, partitioner and per-predicate kernels, plus the
    cost model's analytic predictions (``--exact`` dry-runs the real
    mappers instead when relations are bound).
``profile``
    Execute a query under the data-plane profiler and print the
    CPU/memory/GC/serialization rundown; ``--flame`` writes a
    self-contained SVG flame graph, ``--collapsed`` the
    flamegraph.pl-format stack text, ``--html`` the dashboard with the
    Data plane panel.  ``repro run --profile`` profiles a normal run.
``report``
    Rebuild the HTML dashboard and the predicted-vs-observed plan
    reconciliation from a saved JSONL span trace (plus an optional
    ``--metrics`` JSON snapshot) after the run is gone.  Degrades
    gracefully on traces from older versions: unknown lines are
    warnings, missing plan/metrics spans just skip their sections.
``histogram``
    The exact Allen-relationship histogram between two relations.

Relations are JSON-lines files (``repro.io``); single-attribute
relations may also be plain ``start end`` text files (auto-detected by
extension ``.txt``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from repro import __version__
from repro.core.executor import execute
from repro.core.planner import ALGORITHMS
from repro.core.query import IntervalJoinQuery
from repro.core.schema import Relation
from repro.errors import ReproError
from repro.io import (
    encode_row,
    load_intervals_text,
    load_relation,
    save_relation,
)
from repro.stats import human_count, human_seconds
from repro.workloads import (
    TRACE_PROFILES,
    SyntheticConfig,
    generate_relation,
    trains_relation,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for every ``repro`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-way interval joins on MapReduce (EDBT 2014 "
        "reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate synthetic intervals")
    gen.add_argument("--n", type=int, required=True, help="number of intervals")
    gen.add_argument("--t-min", type=float, default=0.0)
    gen.add_argument("--t-max", type=float, default=100_000.0)
    gen.add_argument("--len-min", type=float, default=1.0)
    gen.add_argument("--len-max", type=float, default=100.0)
    gen.add_argument(
        "--start-dist", default="uniform",
        choices=["uniform", "normal", "exponential", "zipf"],
    )
    gen.add_argument(
        "--length-dist", default="uniform",
        choices=["uniform", "normal", "exponential", "zipf"],
    )
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--name", default="R")
    gen.add_argument("-o", "--output", required=True)

    trace = sub.add_parser("trace", help="generate packet-train intervals")
    trace.add_argument(
        "--profile", required=True, choices=sorted(TRACE_PROFILES)
    )
    trace.add_argument("--gap-threshold", type=float, default=0.5)
    trace.add_argument("--target", type=int, default=None,
                       help="replicate the trains up to this count")
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--name", default="T")
    trace.add_argument("-o", "--output", required=True)

    run = sub.add_parser("run", help="execute an interval join query")
    run.add_argument(
        "--relation", action="append", required=True, metavar="NAME=FILE",
        help="bind a relation name to a file (repeatable)",
    )
    run.add_argument(
        "--condition", action="append", required=True,
        metavar="'LEFT PRED RIGHT'",
        help="a join condition, e.g. 'R1 overlaps R2' (repeatable)",
    )
    run.add_argument(
        "--algorithm", default=None, choices=sorted(ALGORITHMS),
        help="override the planner's choice",
    )
    run.add_argument("--partitions", type=int, default=16)
    run.add_argument(
        "--executor", default=None,
        choices=["serial", "threads", "processes"],
        help="MapReduce executor (default: $REPRO_EXECUTOR, then serial)",
    )
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for the parallel executors "
        "(default: $REPRO_WORKERS, then the CPU count)",
    )
    run.add_argument(
        "--data-plane", default=None,
        choices=["records", "columnar"],
        help="intermediate-pair representation: tuple-at-a-time records "
        "or struct-of-arrays columns with zero-copy shared-memory "
        "transfer (default: $REPRO_DATA_PLANE, then records)",
    )
    run.add_argument(
        "--partition-strategy", default="uniform",
        choices=["uniform", "equi_depth"],
    )
    run.add_argument(
        "--faults", default=None, metavar="SEED[:OPTS]",
        help="run under deterministic fault injection, e.g. '42' or "
        "'42:crash=0.3,delay=0.2,corrupt=0.1' "
        "(default: $REPRO_FAULTS, then off)",
    )
    run.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="per-task retry budget "
        "(default: $REPRO_MAX_ATTEMPTS, then 3 with faults / 1 without)",
    )
    run.add_argument(
        "--speculative", action="store_true", default=None,
        help="speculatively re-execute plan-delayed straggler tasks "
        "(default: $REPRO_SPECULATIVE, then off)",
    )
    run.add_argument("--explain", action="store_true",
                     help="print the EXPLAIN plan (with cost-model "
                     "predictions) before running and the "
                     "predicted-vs-observed reconciliation after")
    run.add_argument("-o", "--output", default=None,
                     help="write output tuples as JSON lines")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="record the run's span trace to PATH")
    run.add_argument(
        "--trace-format", default="chrome", choices=["chrome", "jsonl"],
        help="trace artifact format: Chrome trace-event JSON "
        "(Perfetto / chrome://tracing) or JSONL span events",
    )
    run.add_argument("--history", default=None, metavar="PATH",
                     help="save a JobHistory JSON of the executed jobs "
                     "and print its totals")
    run.add_argument("--report", action="store_true",
                     help="print the skew/straggler/empty-task run report")
    run.add_argument("--metrics", action="store_true",
                     help="print the run's metric summary (counters, "
                     "gauges, histogram quantiles)")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the metric families as JSON "
                     "(*.prom writes Prometheus text exposition instead)")
    run.add_argument("--html", default=None, metavar="PATH",
                     help="write a self-contained HTML run dashboard")
    run.add_argument("--profile", action="store_true", default=None,
                     help="run under the data-plane profiler: sampled "
                     "CPU stacks, per-phase memory/GC watermarks, pickle/"
                     "repr-sort/staged-bytes accounting "
                     "(default: $REPRO_PROFILE, then off)")
    run.add_argument("--profile-full", action="store_true", default=None,
                     help="like --profile plus tracemalloc traced-byte "
                     "watermarks (exact but well over the 10%% overhead "
                     "budget)")
    run.add_argument("--flame", default=None, metavar="PATH",
                     help="write the profiled run's flame graph as a "
                     "self-contained SVG (implies --profile)")
    run.add_argument("--collapsed", default=None, metavar="PATH",
                     help="write the profiled run's collapsed-stack text "
                     "(flamegraph.pl format; implies --profile)")
    run.add_argument("--live", action="store_true", default=None,
                     help="collect per-task heartbeat telemetry: live "
                     "progress/ETA, repro_live_* metrics and an observed-"
                     "straggler watchdog that feeds --speculative "
                     "(default: $REPRO_LIVE, then off)")
    run.add_argument("--live-stall", type=float, default=None,
                     metavar="SECONDS",
                     help="watchdog threshold: flag a task whose last "
                     "heartbeat is older than this as stalled "
                     "(implies --live; default: $REPRO_LIVE_STALL, then 5)")
    run.add_argument("--progress", action="store_true",
                     help="render a live progress/ETA ticker on stderr "
                     "while the query runs (implies --live)")
    run.add_argument("--serve-status", type=int, default=None,
                     metavar="PORT",
                     help="serve live run status over HTTP on this port "
                     "(0 picks a free one): /metrics Prometheus text, "
                     "/progress JSON, / live dashboard (implies --live)")
    run.add_argument("--task-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="fail any task attempt that runs longer than "
                     "this; it retries under the normal backoff budget "
                     "(default: $REPRO_TASK_TIMEOUT, then unlimited)")

    top = sub.add_parser(
        "top",
        help="live terminal view of a run serving --serve-status",
    )
    top.add_argument(
        "url",
        help="status endpoint, e.g. http://127.0.0.1:8750 (the /progress "
        "route is implied)",
    )
    top.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                     help="refresh period (default: 1s)")
    top.add_argument("--count", type=int, default=None, metavar="N",
                     help="render N snapshots then exit (default: until "
                     "the endpoint goes away or Ctrl-C)")

    explain = sub.add_parser(
        "explain",
        help="render the physical plan and cost predictions for a query "
        "without running it",
    )
    explain.add_argument(
        "--relation", action="append", default=None, metavar="NAME=FILE",
        help="bind a relation name to a file (repeatable); omit to "
        "explain the plan shape without data-dependent predictions",
    )
    explain.add_argument(
        "--condition", action="append", required=True,
        metavar="'LEFT PRED RIGHT'",
        help="a join condition, e.g. 'R1 overlaps R2' (repeatable)",
    )
    explain.add_argument(
        "--algorithm", default=None, choices=sorted(ALGORITHMS),
        help="override the planner's choice",
    )
    explain.add_argument("--partitions", type=int, default=16)
    explain.add_argument(
        "--prune", action="store_true",
        help="for hybrid queries, prefer PASM over All-Seq-Matrix",
    )
    explain.add_argument(
        "--exact", action="store_true",
        help="dry-run the real mappers for exact predictions "
        "(requires --relation bindings)",
    )
    explain.add_argument(
        "--data-plane", default=None,
        choices=["records", "columnar"],
        help="data plane the run would use, surfaced in the plan "
        "(default: $REPRO_DATA_PLANE, then records)",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the plan as JSON instead of the printable rendering",
    )

    profile = sub.add_parser(
        "profile",
        help="execute a query under the data-plane profiler and report "
        "CPU/memory/GC/serialization costs",
    )
    profile.add_argument(
        "--relation", action="append", required=True, metavar="NAME=FILE",
        help="bind a relation name to a file (repeatable)",
    )
    profile.add_argument(
        "--condition", action="append", required=True,
        metavar="'LEFT PRED RIGHT'",
        help="a join condition, e.g. 'R1 overlaps R2' (repeatable)",
    )
    profile.add_argument(
        "--algorithm", default=None, choices=sorted(ALGORITHMS),
        help="override the planner's choice",
    )
    profile.add_argument("--partitions", type=int, default=16)
    profile.add_argument(
        "--executor", default=None,
        choices=["serial", "threads", "processes"],
        help="MapReduce executor (default: $REPRO_EXECUTOR, then serial)",
    )
    profile.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for the parallel executors",
    )
    profile.add_argument(
        "--data-plane", default=None,
        choices=["records", "columnar"],
        help="intermediate-pair representation "
        "(default: $REPRO_DATA_PLANE, then records)",
    )
    profile.add_argument(
        "--full", action="store_true",
        help="add tracemalloc traced-byte watermarks (exact but well "
        "over the 10%% overhead budget)",
    )
    profile.add_argument("--flame", default=None, metavar="PATH",
                         help="write the flame graph as self-contained SVG")
    profile.add_argument("--collapsed", default=None, metavar="PATH",
                         help="write collapsed-stack text "
                         "(flamegraph.pl format)")
    profile.add_argument("--html", default=None, metavar="PATH",
                         help="write the run dashboard (with the Data "
                         "plane panel and embedded flame graph)")
    profile.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write the metric families as JSON "
                         "(*.prom for Prometheus text)")

    report = sub.add_parser(
        "report",
        help="rebuild reports from a recorded JSONL span trace",
    )
    report.add_argument("trace", help="JSONL span trace (repro run "
                        "--trace T.jsonl --trace-format jsonl)")
    report.add_argument("--metrics", default=None, metavar="JSON",
                        help="metrics snapshot from --metrics-out, folded "
                        "into the dashboard tables")
    report.add_argument("--html", default=None, metavar="PATH",
                        help="write the self-contained HTML dashboard here")
    report.add_argument("--title", default=None,
                        help="dashboard title (default: the trace path)")
    report.add_argument("--profile", action="store_true",
                        help="print the data-plane profile summary from "
                        "the metrics snapshot (needs --metrics from a "
                        "profiled run)")

    hist = sub.add_parser(
        "histogram", help="Allen-relationship histogram of two relations"
    )
    hist.add_argument("left")
    hist.add_argument("right")

    return parser


def _load(path: str, name: str) -> Relation:
    if path.endswith(".txt"):
        return load_intervals_text(path, name)
    return load_relation(path, name)


def _parse_condition(text: str):
    parts = text.split()
    if len(parts) != 3:
        raise ReproError(
            f"condition {text!r} must be 'LEFT PREDICATE RIGHT'"
        )
    return tuple(parts)


def _cmd_generate(args: argparse.Namespace) -> int:
    relation = generate_relation(
        args.name,
        SyntheticConfig(
            n=args.n,
            start_dist=args.start_dist,
            length_dist=args.length_dist,
            t_range=(args.t_min, args.t_max),
            length_range=(args.len_min, args.len_max),
            seed=args.seed,
        ),
    )
    count = save_relation(relation, args.output)
    print(f"wrote {count} intervals to {args.output}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    relation = trains_relation(
        args.name,
        TRACE_PROFILES[args.profile],
        gap_threshold=args.gap_threshold,
        target=args.target,
        seed=args.seed,
    )
    count = save_relation(relation, args.output)
    print(
        f"wrote {count} packet trains (profile {args.profile}) to "
        f"{args.output}"
    )
    return 0


def _load_bindings(bindings) -> Dict[str, Relation]:
    data: Dict[str, Relation] = {}
    for binding in bindings or ():
        if "=" not in binding:
            raise ReproError(f"--relation {binding!r} must be NAME=FILE")
        name, path = binding.split("=", 1)
        data[name] = _load(path, name)
    return data


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import explain_query

    data = _load_bindings(args.relation)
    query = IntervalJoinQuery.parse(
        [_parse_condition(c) for c in args.condition]
    )
    explained = explain_query(
        query,
        data or None,
        algorithm=args.algorithm,
        num_partitions=args.partitions,
        prune=args.prune,
        exact=args.exact,
        data_plane=args.data_plane,
    )
    if args.json:
        print(json.dumps(explained.as_dict(), indent=2, sort_keys=True))
    else:
        print(explained.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    data = _load_bindings(args.relation)
    query = IntervalJoinQuery.parse(
        [_parse_condition(c) for c in args.condition]
    )
    if args.explain:
        from repro.obs import explain_query

        explained = explain_query(
            query,
            data,
            algorithm=args.algorithm,
            num_partitions=args.partitions,
            data_plane=args.data_plane,
        )
        print(explained.render())
        if explained.provably_empty:
            return 0
        print()
    # Validate executor/workers/data-plane up front so bad values fail
    # before any work.
    from repro.columnar.plane import resolve_data_plane
    from repro.mapreduce.runner import resolve_executor, resolve_workers

    executor = resolve_executor(args.executor)
    workers = resolve_workers(args.workers)
    data_plane = resolve_data_plane(args.data_plane)
    from repro.obs import resolve_profile

    if args.profile_full:
        profile_level = resolve_profile("full")
    elif args.profile or args.flame or args.collapsed:
        profile_level = resolve_profile(True)
    else:
        profile_level = resolve_profile(None)  # $REPRO_PROFILE decides
    from repro.obs import resolve_live

    if args.live_stall is not None:
        live_config = resolve_live(args.live_stall)
    elif args.live or args.progress or args.serve_status is not None:
        live_config = resolve_live(True)
    else:
        live_config = resolve_live(None)  # $REPRO_LIVE decides
    observer = None
    if (
        args.explain
        or args.trace
        or args.history
        or args.report
        or args.metrics
        or args.metrics_out
        or args.html
        or profile_level
        or live_config
    ):
        from repro.obs import TraceRecorder, open_sink

        sinks = [open_sink(args.trace, args.trace_format)] if args.trace else []
        observer = TraceRecorder(
            *sinks,
            profile=profile_level if profile_level else False,
            live=live_config if live_config is not None else False,
        )
    status_server = None
    progress = None
    if observer is not None and observer.live is not None:
        if args.serve_status is not None:
            from repro.obs import StatusServer

            status_server = StatusServer(
                observer, port=args.serve_status, title=f"repro run: {query}"
            ).start()
            print(
                f"status:     serving {status_server.url} "
                "(/metrics, /progress, / dashboard)",
                file=sys.stderr,
                flush=True,
            )
        if args.progress:
            from repro.obs import ProgressPrinter

            progress = ProgressPrinter(observer.live).start()
    # --task-timeout travels by environment so the nine algorithm run()
    # signatures stay untouched; resolve_faults() reads it per job.
    import os

    from repro.faults import TASK_TIMEOUT_ENV

    saved_timeout = os.environ.get(TASK_TIMEOUT_ENV)
    if args.task_timeout is not None:
        os.environ[TASK_TIMEOUT_ENV] = str(args.task_timeout)
    try:
        result = execute(
            query,
            data,
            algorithm=args.algorithm,
            num_partitions=args.partitions,
            partition_strategy=args.partition_strategy,
            executor=executor,
            workers=workers,
            observer=observer,
            faults=args.faults,
            max_attempts=args.max_attempts,
            speculative=args.speculative,
            data_plane=data_plane,
        )
    finally:
        if args.task_timeout is not None:
            if saved_timeout is None:
                os.environ.pop(TASK_TIMEOUT_ENV, None)
            else:
                os.environ[TASK_TIMEOUT_ENV] = saved_timeout
        if observer is not None:
            observer.close()
        if progress is not None:
            progress.close()
        if status_server is not None:
            status_server.close()
    m = result.metrics
    print(f"query:      {query}")
    print(f"class:      {query.query_class.name}")
    print(f"algorithm:  {m.algorithm}")
    print(f"executor:   {executor} ({workers} workers)")
    print(f"data plane: {data_plane}")
    print(f"tuples:     {len(result)}")
    print(f"cycles:     {m.num_cycles}")
    print(f"shuffled:   {human_count(m.shuffled_records)} pairs")
    print(f"replicated: {human_count(m.replicated_intervals)} intervals")
    print(f"modelled:   {human_seconds(m.simulated_seconds)}")
    if m.tasks_failed or m.tasks_retried or m.speculative_wasted:
        print(
            f"faults:     {m.tasks_failed} failed, {m.tasks_retried} "
            f"retried, {m.speculative_wasted} speculative wasted"
        )
    if args.explain:
        from repro.obs import reconciliation_from_spans

        for reconciliation in reconciliation_from_spans(observer.spans):
            print()
            print(reconciliation.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for tuple_rows in result.tuples:
                record = {
                    name: encode_row(row)
                    for name, row in zip(query.relations, tuple_rows)
                }
                handle.write(json.dumps(record))
                handle.write("\n")
        print(f"output:     {args.output}")
    if args.trace:
        print(f"trace:      {args.trace} ({args.trace_format})")
    if args.history:
        from repro.mapreduce.history import JobHistory

        history = JobHistory()
        for job_result in observer.job_results:
            history.record(job_result)
        history.save(args.history)
        totals = history.totals()
        print(f"history:    {args.history}")
        print(
            "totals:     "
            + ", ".join(f"{key}={value}" for key, value in totals.items())
        )
    if args.report:
        from repro.obs import RunReport

        print(RunReport.from_recorder(observer).render())
    if args.metrics:
        print(observer.metrics.summary())
    if observer is not None and observer.profiler is not None:
        print()
        print(observer.profiler.summary())
        _write_profile_artifacts(observer.profiler, args, str(query))
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            if args.metrics_out.endswith(".prom"):
                handle.write(observer.metrics.to_prometheus())
            else:
                handle.write(observer.metrics.to_json())
                handle.write("\n")
        print(f"metrics:    {args.metrics_out}")
    if args.html:
        from repro.obs import dashboard_from_recorder

        page = dashboard_from_recorder(observer, title=f"repro run: {query}")
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(page)
        print(f"dashboard:  {args.html}")
    return 0


def _write_profile_artifacts(profiler, args: argparse.Namespace, query: str) -> None:
    """Write --flame / --collapsed artifacts of a profiled run."""
    flame = getattr(args, "flame", None)
    collapsed = getattr(args, "collapsed", None)
    if flame:
        with open(flame, "w", encoding="utf-8") as handle:
            handle.write(profiler.flame_svg(title=f"repro: {query}"))
        print(f"flame:      {flame}")
    if collapsed:
        with open(collapsed, "w", encoding="utf-8") as handle:
            handle.write(profiler.collapsed_stacks())
            handle.write("\n")
        print(f"collapsed:  {collapsed}")


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.columnar.plane import resolve_data_plane
    from repro.mapreduce.runner import resolve_executor, resolve_workers
    from repro.obs import TraceRecorder, dashboard_from_recorder

    data = _load_bindings(args.relation)
    query = IntervalJoinQuery.parse(
        [_parse_condition(c) for c in args.condition]
    )
    executor = resolve_executor(args.executor)
    workers = resolve_workers(args.workers)
    data_plane = resolve_data_plane(args.data_plane)
    observer = TraceRecorder(profile="full" if args.full else True)
    result = execute(
        query,
        data,
        algorithm=args.algorithm,
        num_partitions=args.partitions,
        executor=executor,
        workers=workers,
        observer=observer,
        data_plane=data_plane,
    )
    observer.close()
    m = result.metrics
    print(f"query:      {query}")
    print(f"algorithm:  {m.algorithm}")
    print(f"executor:   {executor} ({workers} workers)")
    print(f"data plane: {data_plane}")
    print(f"tuples:     {len(result)}")
    print()
    print(observer.profiler.summary())
    _write_profile_artifacts(observer.profiler, args, str(query))
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            if args.metrics_out.endswith(".prom"):
                handle.write(observer.metrics.to_prometheus())
            else:
                handle.write(observer.metrics.to_json())
                handle.write("\n")
        print(f"metrics:    {args.metrics_out}")
    if args.html:
        page = dashboard_from_recorder(
            observer, title=f"repro profile: {query}"
        )
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(page)
        print(f"dashboard:  {args.html}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import (
        load_spans_jsonl_tolerant,
        reconciliation_from_spans,
        render_dashboard,
    )

    spans, warnings = load_spans_jsonl_tolerant(args.trace)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    metrics = None
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                metrics = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"warning: metrics snapshot {args.metrics!r} unusable "
                f"({exc}); rendering without it",
                file=sys.stderr,
            )
    title = args.title or f"repro trace: {args.trace}"
    jobs = [span for span in spans if span.kind == "job"]
    print(f"trace:      {args.trace}")
    print(f"spans:      {len(spans)} ({len(jobs)} jobs)")
    # Older traces (or partial ones) may predate plan/reconciliation or
    # metrics spans — report what exists instead of failing.
    try:
        reconciliations = reconciliation_from_spans(spans)
    except Exception as exc:
        print(
            f"warning: plan reconciliation failed ({exc}); skipping",
            file=sys.stderr,
        )
        reconciliations = []
    if reconciliations:
        for reconciliation in reconciliations:
            print()
            print(reconciliation.render())
    else:
        print("plan:       no plan spans in trace; reconciliation skipped")
    if getattr(args, "profile", False):
        from repro.obs import MetricsRegistry, data_plane_summary

        print()
        if metrics is None:
            print(
                "data-plane profile: no metrics snapshot (pass --metrics "
                "with the JSON written by a profiled run's --metrics-out)"
            )
        else:
            print(data_plane_summary(MetricsRegistry.from_dict(metrics)))
    if args.html:
        try:
            page = render_dashboard(spans, metrics, title=title)
        except Exception as exc:
            print(
                f"warning: dashboard rendering failed ({exc}); skipping",
                file=sys.stderr,
            )
        else:
            with open(args.html, "w", encoding="utf-8") as handle:
                handle.write(page)
            print(f"dashboard:  {args.html}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time
    from urllib.error import URLError

    from repro.obs import fetch_progress, render_top

    rendered = 0
    while True:
        try:
            snapshot = fetch_progress(args.url)
        except (URLError, OSError, ValueError) as exc:
            if rendered:
                # The run finished and took its endpoint with it.
                print("endpoint gone; run finished")
                return 0
            raise ReproError(
                f"cannot reach status endpoint {args.url!r}: {exc}"
            ) from exc
        print(render_top(snapshot))
        rendered += 1
        if args.count is not None and rendered >= args.count:
            return 0
        if snapshot.get("closed"):
            return 0
        try:
            time.sleep(max(args.interval, 0.05))
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def _cmd_histogram(args: argparse.Namespace) -> int:
    from repro.analysis import allen_histogram

    left = _load(args.left, "L")
    right = _load(args.right, "R")
    histogram = allen_histogram(
        left.intervals(left.attributes[0]),
        right.intervals(right.attributes[0]),
    )
    total = sum(histogram.values())
    for name in sorted(histogram, key=histogram.get, reverse=True):
        count = histogram[name]
        if count:
            print(f"{name:15s} {count:12d}  ({100.0 * count / total:5.2f}%)")
    print(f"{'total':15s} {total:12d}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "trace": _cmd_trace,
    "run": _cmd_run,
    "explain": _cmd_explain,
    "profile": _cmd_profile,
    "report": _cmd_report,
    "top": _cmd_top,
    "histogram": _cmd_histogram,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
