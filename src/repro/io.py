"""Relation serialisation: JSON-lines persistence and text parsing.

Gives the CLI (and LocalFileSystem-backed pipelines) a durable on-disk
format for relations:

* JSON-lines: one object per row, interval attributes encoded as
  ``{"start": s, "end": e}``, scalars as numbers;
* a permissive text format for single-attribute relations: one interval
  per line as ``start end`` (whitespace- or comma-separated), mirroring
  how the paper's Hadoop jobs read HDFS lines.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Iterator, List

from repro.errors import ReproError
from repro.core.schema import AttributeValue, Relation, Row
from repro.intervals.interval import Interval

__all__ = [
    "encode_row",
    "decode_row",
    "save_relation",
    "load_relation",
    "parse_interval_lines",
    "load_intervals_text",
]


def _encode_value(value: AttributeValue) -> Any:
    if isinstance(value, Interval):
        return {"start": value.start, "end": value.end}
    return value


def _decode_value(value: Any) -> AttributeValue:
    if isinstance(value, dict):
        try:
            return Interval(float(value["start"]), float(value["end"]))
        except KeyError:
            raise ReproError(
                f"malformed interval object {value!r}; expected "
                "{'start': ..., 'end': ...}"
            ) from None
    return value


def encode_row(row: Row) -> Dict[str, Any]:
    """A JSON-able representation of one row."""
    payload: Dict[str, Any] = {"rid": row.rid}
    payload["values"] = {
        name: _encode_value(value) for name, value in row.data
    }
    return payload


def decode_row(payload: Dict[str, Any]) -> Row:
    """The inverse of :func:`encode_row`."""
    try:
        rid = int(payload["rid"])
        values = payload["values"]
    except (KeyError, TypeError, ValueError):
        raise ReproError(f"malformed row payload {payload!r}") from None
    return Row.make(rid, {k: _decode_value(v) for k, v in values.items()})


def save_relation(relation: Relation, path: str) -> int:
    """Write a relation as JSON lines; returns the row count."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for row in relation.rows:
            handle.write(json.dumps(encode_row(row)))
            handle.write("\n")
    return len(relation)


def load_relation(path: str, name: str) -> Relation:
    """Read a JSON-lines relation written by :func:`save_relation`."""
    rows: List[Row] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_number}: invalid JSON ({exc})"
                ) from None
            rows.append(decode_row(payload))
    return Relation(name, rows)


def parse_interval_lines(lines: Iterable[str]) -> Iterator[Interval]:
    """Parse ``start end`` lines (whitespace or comma separated).

    Blank lines and ``#`` comments are skipped.
    """
    for line_number, line in enumerate(lines, start=1):
        text = line.split("#", 1)[0].strip()
        if not text:
            continue
        parts = text.replace(",", " ").split()
        if len(parts) != 2:
            raise ReproError(
                f"line {line_number}: expected 'start end', got {line!r}"
            )
        try:
            start, end = float(parts[0]), float(parts[1])
        except ValueError:
            raise ReproError(
                f"line {line_number}: non-numeric endpoints in {line!r}"
            ) from None
        yield Interval(start, end)


def load_intervals_text(path: str, name: str) -> Relation:
    """Read a single-attribute relation from a ``start end`` text file."""
    with open(path, "r", encoding="utf-8") as handle:
        return Relation.of_intervals(name, parse_interval_lines(handle))
