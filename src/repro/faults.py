"""Deterministic fault injection for the MapReduce simulator.

The paper's algorithms inherit Hadoop's task-level fault tolerance: a
failed map or reduce *attempt* is simply re-executed, and slow attempts
are speculatively duplicated.  That only works because tasks are
independently re-executable — re-running an attempt must not change the
job's output.  This module supplies the machinery to *test* that
property:

* :class:`FaultPlan` — a seeded, fully deterministic schedule of
  ``crash`` / ``delay`` / ``corrupt-output`` events.  Every draw comes
  from an explicit :class:`random.Random` keyed by a BLAKE2 hash of
  ``(seed, job, phase, task_index)`` — never the ``random`` module's
  global state — so the same seed produces the same event schedule on
  every run, every executor, and every platform, and two concurrent
  runs cannot perturb each other.
* :class:`ScriptedFaultPlan` — an explicit per-attempt event table for
  tests that need a fault in one precise place (a combiner, a
  ``cleanup()`` hook, a commit).
* :func:`resolve_faults` — merges explicit arguments with the
  ``REPRO_FAULTS`` / ``REPRO_MAX_ATTEMPTS`` / ``REPRO_SPECULATIVE``
  environment variables (how CI runs the whole suite under chaos) into
  one :class:`ResolvedFaults` bundle the runner consumes.

The contract, pinned by the fault-parity tests: any fault plan whose
per-task failure count stays below ``max_attempts`` yields output
tuples, part files and counters (modulo the ``faults`` counter group)
bit-identical to a fault-free run, under every executor.
"""

from __future__ import annotations

import hashlib
import os
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import FaultInjectedError, MapReduceError

__all__ = [
    "CRASH",
    "DELAY",
    "CORRUPT",
    "INJECTION_POINTS",
    "FAULTS_GROUP",
    "FAULTS_ENV",
    "MAX_ATTEMPTS_ENV",
    "SPECULATIVE_ENV",
    "TASK_TIMEOUT_ENV",
    "FaultEvent",
    "FaultPlan",
    "ScriptedFaultPlan",
    "AttemptInjector",
    "ResolvedFaults",
    "resolve_faults",
]

#: Event kinds.
CRASH = "crash"
DELAY = "delay"
CORRUPT = "corrupt-output"

#: Where a crash may fire during an attempt's lifecycle.
INJECTION_POINTS = ("setup", "combiner", "cleanup", "commit")

#: Counter group used for fault bookkeeping (``tasks_failed``,
#: ``tasks_retried``, ``speculative_wasted``).  Kept out of
#: ``framework`` so a chaos run's counters equal a fault-free run's
#: "modulo the faults group".
FAULTS_GROUP = "faults"

#: Environment variables consulted by :func:`resolve_faults` (how CI
#: forces a chaos configuration onto a whole test run).
FAULTS_ENV = "REPRO_FAULTS"
MAX_ATTEMPTS_ENV = "REPRO_MAX_ATTEMPTS"
SPECULATIVE_ENV = "REPRO_SPECULATIVE"
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: Attempts per task when a fault plan is active and nothing says
#: otherwise (Hadoop's ``mapreduce.map.maxattempts`` defaults to 4; the
#: simulator's plans default to at most 2 failures per task, so 3 always
#: suffices).
DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault in one task attempt.

    ``kind`` is :data:`CRASH`, :data:`DELAY` or :data:`CORRUPT`;
    ``point`` locates crashes in the attempt lifecycle (see
    :data:`INJECTION_POINTS`); ``seconds`` is the delay duration for
    :data:`DELAY` events (virtual under the serial executor, a capped
    real sleep under ``threads``/``processes``).
    """

    kind: str
    point: str = "setup"
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, DELAY, CORRUPT):
            raise MapReduceError(f"unknown fault kind {self.kind!r}")
        if self.kind == CRASH and self.point not in INJECTION_POINTS:
            raise MapReduceError(
                f"unknown injection point {self.point!r}; "
                f"expected one of {INJECTION_POINTS}"
            )


class FaultPlan:
    """A seeded, deterministic schedule of per-task fault events.

    For every task identity ``(job, phase, task_index)`` the plan draws
    — from an RNG seeded by ``blake2b(seed, identity)``, never the
    global ``random`` state — whether the task fails, how many attempts
    fail (1..``max_failures_per_task``), whether the failure is a
    ``crash`` (raised before any user code runs) or ``corrupt-output``
    (detected when the attempt commits, after the task body ran), and
    whether the first *successful* attempt is delayed (which is what
    speculative execution chases).

    Because the draw depends only on the seed and the task identity, the
    schedule is reproducible across runs, platforms and executors — the
    property the ``FaultPlan`` reproducibility tests pin.

    Parameters
    ----------
    seed:
        The explicit RNG seed.
    crash_rate / corrupt_rate:
        Probability that a task's failing attempts crash / corrupt.
        Their sum is the per-task failure probability.
    delay_rate:
        Probability that a task's winning attempt carries a delay event.
    delay_seconds:
        Duration of injected delays.
    max_failures_per_task:
        Upper bound on failing attempts per task; any ``max_attempts``
        strictly greater than this is guaranteed to stay within the
        retry budget.
    """

    def __init__(
        self,
        seed: int,
        *,
        crash_rate: float = 0.15,
        delay_rate: float = 0.10,
        corrupt_rate: float = 0.05,
        delay_seconds: float = 0.02,
        max_failures_per_task: int = 2,
    ) -> None:
        for name, rate in (
            ("crash_rate", crash_rate),
            ("delay_rate", delay_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise MapReduceError(f"{name} must be in [0, 1], got {rate!r}")
        if crash_rate + corrupt_rate > 1.0:
            raise MapReduceError("crash_rate + corrupt_rate must not exceed 1")
        if max_failures_per_task < 1:
            raise MapReduceError("max_failures_per_task must be >= 1")
        self.seed = int(seed)
        self.crash_rate = crash_rate
        self.delay_rate = delay_rate
        self.corrupt_rate = corrupt_rate
        self.delay_seconds = delay_seconds
        self.max_failures_per_task = max_failures_per_task

    # ------------------------------------------------------------------
    def _task_rng(self, job: str, phase: str, task_index: int) -> random.Random:
        digest = hashlib.blake2b(
            repr((self.seed, str(job), str(phase), int(task_index))).encode(),
            digest_size=8,
        ).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def events_for(
        self, job: str, phase: str, task_index: int, attempt: int
    ) -> Tuple[FaultEvent, ...]:
        """The fault events injected into one task attempt.

        Deterministic in ``(seed, job, phase, task_index, attempt)``;
        attempts beyond the task's drawn failure count get no failure
        event, which is why a sufficient retry budget always converges.
        """
        rng = self._task_rng(job, phase, task_index)
        failure_draw = rng.random()
        failures = 0
        corrupt = False
        if failure_draw < self.crash_rate + self.corrupt_rate:
            failures = rng.randint(1, self.max_failures_per_task)
            corrupt = failure_draw >= self.crash_rate
        delayed = rng.random() < self.delay_rate
        events = []
        if attempt < failures:
            if corrupt:
                events.append(FaultEvent(CORRUPT, "commit"))
            else:
                events.append(FaultEvent(CRASH, "setup"))
        if delayed and attempt == failures:
            events.append(FaultEvent(DELAY, "setup", self.delay_seconds))
        return tuple(events)

    def schedule(
        self, job: str, phase: str, task_index: int, max_attempts: int
    ) -> Tuple[Tuple[FaultEvent, ...], ...]:
        """The full per-attempt event schedule of one task (testing aid)."""
        return tuple(
            self.events_for(job, phase, task_index, attempt)
            for attempt in range(max_attempts)
        )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: Union[str, int]) -> "FaultPlan":
        """Build a plan from a ``$REPRO_FAULTS``-style spec string.

        Either a bare integer seed (``"42"``) or
        ``"42:crash=0.3,delay=0.2,corrupt=0.1,delay_seconds=0.05,max_failures=2"``.
        """
        if isinstance(spec, int):
            return cls(spec)
        text = str(spec).strip()
        seed_part, _, options = text.partition(":")
        try:
            seed = int(seed_part)
        except ValueError:
            raise MapReduceError(
                f"{FAULTS_ENV} seed must be an integer, got {seed_part!r}"
            ) from None
        kwargs: Dict[str, Any] = {}
        keys = {
            "crash": ("crash_rate", float),
            "delay": ("delay_rate", float),
            "corrupt": ("corrupt_rate", float),
            "delay_seconds": ("delay_seconds", float),
            "max_failures": ("max_failures_per_task", int),
        }
        if options:
            for item in options.split(","):
                key, _, value = item.partition("=")
                key = key.strip()
                if key not in keys:
                    raise MapReduceError(
                        f"unknown fault option {key!r}; known: {sorted(keys)}"
                    )
                name, cast = keys[key]
                try:
                    kwargs[name] = cast(value)
                except ValueError:
                    raise MapReduceError(
                        f"fault option {key!r} needs a {cast.__name__}, "
                        f"got {value!r}"
                    ) from None
        return cls(seed, **kwargs)

    def describe(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, crash={self.crash_rate}, "
            f"delay={self.delay_rate}, corrupt={self.corrupt_rate}, "
            f"max_failures={self.max_failures_per_task})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class ScriptedFaultPlan:
    """An explicit fault schedule keyed by task attempt.

    ``events`` maps ``(job, phase, task_index, attempt)`` to the fault
    events of that attempt.  Used by tests that need a crash in one
    precise lifecycle point — e.g. inside a combiner or a ``cleanup()``
    hook — rather than a statistically generated schedule.
    """

    def __init__(
        self,
        events: Mapping[
            Tuple[str, str, int, int], Sequence[FaultEvent]
        ],
    ) -> None:
        self._events = {
            key: tuple(value) for key, value in events.items()
        }

    def events_for(
        self, job: str, phase: str, task_index: int, attempt: int
    ) -> Tuple[FaultEvent, ...]:
        return self._events.get((job, phase, task_index, attempt), ())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScriptedFaultPlan({len(self._events)} scripted attempts)"


class AttemptInjector:
    """Carries one attempt's fault events into the task body.

    The runner checks the ``setup`` and ``commit`` points itself; the
    task core calls :meth:`check` at the ``combiner`` and ``cleanup``
    points so crashes scripted there surface *inside* user-code
    lifecycle hooks — and are retried like any other task failure, not
    silently swallowed.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events = tuple(events)

    def check(self, point: str) -> None:
        """Raise :class:`FaultInjectedError` if a crash targets ``point``."""
        for event in self.events:
            if event.kind == CRASH and event.point == point:
                raise FaultInjectedError(CRASH, point)

    def delay_seconds(self) -> float:
        return sum(e.seconds for e in self.events if e.kind == DELAY)

    def corrupts_output(self) -> bool:
        return any(e.kind == CORRUPT for e in self.events)


@dataclass(frozen=True)
class ResolvedFaults:
    """The effective fault configuration of one job run.

    ``plan`` is any object with an ``events_for(job, phase, task_index,
    attempt)`` method, or ``None``.  ``max_attempts`` is the retry
    budget per task; ``speculative`` enables backup attempts for tasks
    the plan delayed.  ``backoff_base``/``backoff_cap`` parameterise the
    exponential retry backoff (``base * 2**(attempt-1)``, capped): the
    full value is charged as *virtual* time on the retry's span, while
    real sleeping — only under the parallel executors — is additionally
    capped by ``sleep_cap`` so chaos runs stay fast.  ``task_timeout``
    (seconds, ``None`` for unlimited) fails any attempt that runs longer,
    feeding the same retry/backoff path as an injected crash.
    """

    plan: Optional[Any] = None
    max_attempts: int = 1
    speculative: bool = False
    backoff_base: float = 0.002
    backoff_cap: float = 0.1
    sleep_cap: float = 0.05
    task_timeout: Optional[float] = None

    @property
    def active(self) -> bool:
        """Whether the fault machinery participates in execution at all."""
        return (
            self.plan is not None
            or self.max_attempts > 1
            or self.speculative
            or self.task_timeout is not None
        )

    def events_for(
        self, job: str, phase: str, task_index: int, attempt: int
    ) -> Tuple[FaultEvent, ...]:
        if self.plan is None:
            return ()
        return tuple(self.plan.events_for(job, phase, task_index, attempt))

    def backoff_seconds(self, attempt: int) -> float:
        """Virtual backoff charged before retry ``attempt`` (>= 1)."""
        if attempt < 1:
            return 0.0
        return min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)


def _env_plan() -> Optional[FaultPlan]:
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    return FaultPlan.parse(spec)


def _env_max_attempts() -> Optional[int]:
    text = os.environ.get(MAX_ATTEMPTS_ENV, "").strip()
    if not text:
        return None
    try:
        value = int(text)
    except ValueError:
        raise MapReduceError(
            f"{MAX_ATTEMPTS_ENV} must be an integer, got {text!r}"
        ) from None
    return value


def _env_speculative() -> Optional[bool]:
    text = os.environ.get(SPECULATIVE_ENV, "").strip().lower()
    if not text:
        return None
    return text in ("1", "true", "yes", "on")


def _env_task_timeout() -> Optional[float]:
    text = os.environ.get(TASK_TIMEOUT_ENV, "").strip()
    if not text:
        return None
    try:
        value = float(text)
    except ValueError:
        raise MapReduceError(
            f"{TASK_TIMEOUT_ENV} must be a number of seconds, got {text!r}"
        ) from None
    return value


def resolve_faults(
    faults: Union[None, bool, int, str, Any] = None,
    max_attempts: Optional[int] = None,
    speculative: Optional[bool] = None,
    task_timeout: Optional[float] = None,
) -> ResolvedFaults:
    """The effective fault configuration: explicit arguments beat the
    environment, the environment beats the fault-free default.

    ``faults`` may be ``None`` (defer to ``$REPRO_FAULTS``), ``False``
    (force fault injection off, ignoring the environment), an integer
    seed, a spec string (see :meth:`FaultPlan.parse`), or any plan
    object exposing ``events_for``.  ``max_attempts`` defaults to
    ``$REPRO_MAX_ATTEMPTS``, then :data:`DEFAULT_MAX_ATTEMPTS` when a
    plan is active, else 1 (fail fast, the pre-fault-tolerance
    behaviour).  ``speculative`` defaults to ``$REPRO_SPECULATIVE``,
    then off.  ``task_timeout`` defaults to ``$REPRO_TASK_TIMEOUT``,
    then unlimited.
    """
    if faults is False:
        # Force the whole machinery off, environment included: without a
        # plan the retry budget can only change which code path runs, so
        # an env-supplied budget must not reactivate it.  An explicit
        # ``max_attempts`` argument still wins.
        plan: Optional[Any] = None
        if max_attempts is None:
            max_attempts = 1
    elif faults is None:
        plan = _env_plan()
    elif isinstance(faults, (int, str)):
        plan = FaultPlan.parse(faults)
    elif hasattr(faults, "events_for"):
        plan = faults
    else:
        raise MapReduceError(
            f"faults must be a seed, a spec string, a plan, False or None; "
            f"got {faults!r}"
        )
    if max_attempts is None:
        max_attempts = _env_max_attempts()
    if max_attempts is None:
        max_attempts = DEFAULT_MAX_ATTEMPTS if plan is not None else 1
    if isinstance(max_attempts, bool) or not isinstance(max_attempts, int) \
            or max_attempts < 1:
        raise MapReduceError(
            f"max_attempts must be a positive integer, got {max_attempts!r}"
        )
    if speculative is None:
        speculative = _env_speculative()
    if speculative is None:
        speculative = False
    if task_timeout is None and faults is not False:
        # ``faults=False`` forces the machinery off, environment
        # included — an env-supplied timeout must not reactivate it.
        task_timeout = _env_task_timeout()
    if task_timeout is not None and (
        isinstance(task_timeout, bool) or task_timeout <= 0
    ):
        raise MapReduceError(
            f"task_timeout must be a positive number of seconds, "
            f"got {task_timeout!r}"
        )
    return ResolvedFaults(
        plan=plan,
        max_attempts=max_attempts,
        speculative=bool(speculative),
        task_timeout=(
            float(task_timeout) if task_timeout is not None else None
        ),
    )
