"""Key codecs: intermediate keys as int64 codes.

The columnar shuffle sorts and groups by a single int64 column, so every
key type used by the paper's algorithms needs a bijective encoding:

* partition-interval indices (2-way joins, RCCIS, cascade colocation
  steps) are non-negative ints — the code *is* the key;
* 2-D grid cells ``(i, j)`` (matrix algorithms, cascade sequence steps)
  pack as ``(i << 32) | j``.

Decoding always produces **native Python** ints and tuples — numpy
scalars repr differently under numpy 2.x (``np.int64(3)`` vs ``3``),
which would silently change the shuffle's repr-order and break
cross-plane routing parity.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, Optional

import numpy as np

__all__ = ["KeyCodec", "IntKeyCodec", "CellKeyCodec", "KEY_CODECS"]

_MASK32 = 0xFFFFFFFF


class KeyCodec(abc.ABC):
    """Bijection between one key family and int64 codes."""

    #: the ``columnar_key_kind`` value mappers declare.
    kind: str = "abstract"

    @abc.abstractmethod
    def decode(self, code: int) -> Hashable:
        """The native Python key for one code."""

    def compact_codes(self, codes: np.ndarray) -> Optional[np.ndarray]:
        """A radix-sortable ``int16`` recoding of ``codes``, or ``None``.

        The shuffle's grouping argsort only needs an order-preserving
        injection of the code column, not the codes themselves — and
        numpy's stable sort is a radix sort for dtypes of 16 bits or
        less, several times faster than the comparison sort it falls
        back to on int64.  Key families whose live code range fits
        (partition indices are bounded by the partition count, grid
        cells by the grid side) return the monotone recoding;
        ``None`` means "sort the int64 codes as they are".

        Contract: when a recoding is returned it must be *strictly
        monotone* in the original codes, so the grouped order (and the
        group-boundary scan over the gathered original codes) is
        identical either way.
        """
        return None


class IntKeyCodec(KeyCodec):
    """Non-negative int keys (partition-interval indices): identity."""

    kind = "int"

    def decode(self, code: int) -> Hashable:
        return int(code)

    @staticmethod
    def encode_array(indices: np.ndarray) -> np.ndarray:
        return np.asarray(indices, dtype=np.int64)

    def compact_codes(self, codes: np.ndarray) -> Optional[np.ndarray]:
        # Partition indices: the code is the key, so the range check is
        # all that is needed — the identity downcast is monotone.
        if codes.size == 0:
            return None
        lo = int(codes.min())
        hi = int(codes.max())
        if -(2 ** 15) <= lo and hi < 2 ** 15:
            return codes.astype(np.int16)
        return None


class CellKeyCodec(KeyCodec):
    """2-D grid cells ``(i, j)`` with ``0 <= i, j < 2**32``."""

    kind = "cell"

    def decode(self, code: int) -> Hashable:
        code = int(code)
        return (code >> 32, code & _MASK32)

    @staticmethod
    def encode_cell(cell) -> int:
        i, j = cell
        return (int(i) << 32) | int(j)

    def compact_codes(self, codes: np.ndarray) -> Optional[np.ndarray]:
        # ``(i << 32) | j`` orders cells row-major; ``i * width + j``
        # with ``width > max(j)`` orders them the same way (if
        # ``i1 < i2`` then ``i1 * width + j1 < i2 * width`` because
        # ``j1 < width``), so the dense recoding is monotone whenever
        # the grid is small enough for it to fit 16 bits.
        if codes.size == 0:
            return None
        rows = codes >> np.int64(32)
        cols = codes & np.int64(_MASK32)
        width = int(cols.max()) + 1
        if int(rows.max()) * width + (width - 1) < 2 ** 15:
            return (rows * width + cols).astype(np.int16)
        return None


#: One shared codec instance per ``columnar_key_kind``.
KEY_CODECS: Dict[str, KeyCodec] = {
    IntKeyCodec.kind: IntKeyCodec(),
    CellKeyCodec.kind: CellKeyCodec(),
}
