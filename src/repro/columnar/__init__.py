"""The columnar data plane (``REPRO_DATA_PLANE=columnar``).

A struct-of-arrays batch representation that flows batch-at-a-time
through map -> shuffle -> reduce:

* mappers that implement the columnar protocol (see
  :mod:`repro.mapreduce.task`) emit ``(key_code, payload_id)`` pairs as
  numpy columns instead of Python tuples;
* the shuffle orders and groups them with one stable ``argsort`` over
  the int64 key codes (see
  :func:`repro.mapreduce.shuffle.columnar_shuffle`);
* reduce tasks receive :class:`ColumnValues` groups — column slices
  plus a reference to the job's :class:`PayloadStore` — and the
  ``processes`` executor ships the columns through
  ``multiprocessing.shared_memory`` instead of pickling record lists
  (:mod:`repro.columnar.shm`).

The plane is selected per run (:func:`resolve_data_plane`); a job whose
mappers or reducer do not implement the protocol silently falls back to
the legacy records plane, so every algorithm keeps working under either
setting and outputs stay bit-identical across planes.
"""

from repro.columnar.batch import (
    ColRow,
    ColumnarPairs,
    ColumnValues,
    MapBlock,
    PayloadStore,
    job_columnar_gate,
    job_columnar_kind,
    operator_map_columns,
    ranged_targets,
    reduce_columns,
)
from repro.columnar.codec import KEY_CODECS, CellKeyCodec, IntKeyCodec, KeyCodec
from repro.columnar.plane import DATA_PLANE_ENV, DATA_PLANES, resolve_data_plane

__all__ = [
    "DATA_PLANES",
    "DATA_PLANE_ENV",
    "resolve_data_plane",
    "KeyCodec",
    "IntKeyCodec",
    "CellKeyCodec",
    "KEY_CODECS",
    "MapBlock",
    "ColumnarPairs",
    "ColumnValues",
    "ColRow",
    "PayloadStore",
    "job_columnar_gate",
    "job_columnar_kind",
    "operator_map_columns",
    "ranged_targets",
    "reduce_columns",
]
