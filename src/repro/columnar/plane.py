"""Data-plane selection, mirroring the executor plumbing.

``resolve_data_plane`` resolves an explicit argument, then the
``REPRO_DATA_PLANE`` environment variable, then the ``"records"``
default — exactly how :func:`repro.mapreduce.runner.resolve_executor`
resolves the execution backend.  CI uses the environment variable to
run the whole suite on one plane.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import MapReduceError

__all__ = ["DATA_PLANES", "DATA_PLANE_ENV", "resolve_data_plane"]

#: The recognised data planes.  ``records`` is the legacy tuple-at-a-time
#: plane; ``columnar`` batches intermediate pairs as numpy columns.
DATA_PLANES = ("records", "columnar")

#: Environment variable consulted when ``data_plane`` is not given
#: explicitly (how CI forces a whole test run onto one plane).
DATA_PLANE_ENV = "REPRO_DATA_PLANE"


def resolve_data_plane(data_plane: Optional[str] = None) -> str:
    """The effective data plane: explicit argument, else
    ``$REPRO_DATA_PLANE``, else ``"records"``.  Unknown names raise."""
    name = data_plane or os.environ.get(DATA_PLANE_ENV, "").strip() or "records"
    if name not in DATA_PLANES:
        raise MapReduceError(
            f"unknown data plane {name!r}; expected one of {DATA_PLANES}"
        )
    return name
