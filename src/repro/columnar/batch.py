"""Struct-of-arrays batches for the columnar data plane.

The columnar plane never ships row objects through the shuffle.  A map
task emits a :class:`MapBlock` — parallel numpy columns of int64 key
codes and row indices — and the job accumulates them into one
:class:`ColumnarPairs` batch, tagging each emitted pair with a *payload
id* (``gid``)::

    gid = (map_task_index << 32) | row_index

The raw input records stay on the parent in the job's
:class:`PayloadStore`; reducers work on :class:`ColumnValues` — the
sorted column slices of one key group — and emit gid-shaped outputs
that are materialised back into the exact records-plane objects at the
end.  Every materialised value is the same object the records plane
would have shuffled, which is what keeps outputs, counters and the
``partition_stats`` repr-byte accounting bit-identical across planes.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columnar.codec import KeyCodec
    from repro.intervals.partitioning import Partitioning
    from repro.mapreduce.job import JobConf

__all__ = [
    "MapBlock",
    "ColumnarPairs",
    "ColumnValues",
    "ColRow",
    "PayloadStore",
    "job_columnar_gate",
    "job_columnar_kind",
    "operator_map_columns",
    "ranged_targets",
    "reduce_columns",
]

_MASK32 = 0xFFFFFFFF


def ranged_targets(
    lo: np.ndarray, hi: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised emission of inclusive index ranges ``lo[i]..hi[i]``.

    Returns ``(keys, row_idx)`` in record-major order — record ``i``'s
    targets appear consecutively and ascending, exactly matching the
    records plane's per-record ``for index in range(...)`` loops.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    lengths = hi - lo + 1
    total = int(lengths.sum())
    row_idx = np.repeat(np.arange(len(lo), dtype=np.int64), lengths)
    offsets = np.cumsum(lengths) - lengths
    intra = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
    return np.repeat(lo, lengths) + intra, row_idx


class MapBlock:
    """One columnar map task's emission: parallel per-pair columns."""

    __slots__ = ("key_codes", "row_idx", "tag_codes", "tags", "counters")

    def __init__(
        self,
        key_codes: np.ndarray,
        row_idx: np.ndarray,
        tag_codes: np.ndarray,
        tags: Tuple[str, ...],
        counters: Optional[Dict[Tuple[str, str], int]] = None,
    ) -> None:
        self.key_codes = np.asarray(key_codes, dtype=np.int64)
        self.row_idx = np.asarray(row_idx, dtype=np.int64)
        self.tag_codes = np.asarray(tag_codes, dtype=np.int16)
        self.tags = tuple(tags)
        #: user-counter increments, ``(group, name) -> amount``; only
        #: non-zero amounts may appear (a zero entry would create a
        #: counter key the records plane never creates).
        self.counters = dict(counters or {})

    def __len__(self) -> int:
        return len(self.key_codes)

    @classmethod
    def single_tag(
        cls,
        key_codes: np.ndarray,
        row_idx: np.ndarray,
        tag: str,
        counters: Optional[Dict[Tuple[str, str], int]] = None,
    ) -> "MapBlock":
        codes = np.zeros(len(key_codes), dtype=np.int16)
        return cls(key_codes, row_idx, codes, (tag,), counters)


def operator_map_columns(
    partitioning: "Partitioning",
    operator,
    starts: np.ndarray,
    ends: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, Dict[Tuple[str, str], int]]:
    """Vectorised Project / Split / Replicate over encoded intervals.

    Returns ``(key_codes, row_idx, counter_increments)`` reproducing the
    per-record primitive loops (and replication counters) of
    :class:`~repro.core.algorithms.two_way.OperatorMapper` exactly.
    """
    from repro.intervals.allen import MapOperator

    n = len(starts)
    counters: Dict[Tuple[str, str], int] = {}
    lo = partitioning.locate_array(starts)
    if operator is MapOperator.PROJECT:
        return lo, np.arange(n, dtype=np.int64), counters
    if operator is MapOperator.SPLIT:
        hi = partitioning.locate_array(ends)
    else:  # REPLICATE: start partition through the end of time
        hi = np.full(n, len(partitioning) - 1, dtype=np.int64)
    keys, row_idx = ranged_targets(lo, hi)
    if operator is not MapOperator.SPLIT and n:
        counters[("join", "replicated_intervals")] = n
        counters[("join", "replicated_pairs")] = len(keys)
    return keys, row_idx, counters


class ColumnarPairs:
    """The job-level intermediate batch: one row per emitted pair.

    Columns: ``key_codes`` (int64), ``gids`` (int64 payload ids),
    ``starts``/``ends`` (float64 routing-interval endpoints) and
    ``tag_codes`` (int16 into the job's tag table).  Blocks append in
    map-task order, so row order equals the records plane's pair-stream
    order.
    """

    def __init__(self, codec: "KeyCodec") -> None:
        self.codec = codec
        self._tags: List[str] = []
        self._blocks: List[Tuple[np.ndarray, ...]] = []
        self._columns: Optional[Tuple[np.ndarray, ...]] = None
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def tags(self) -> Tuple[str, ...]:
        return tuple(self._tags)

    def intern_tag(self, tag: str) -> int:
        try:
            return self._tags.index(tag)
        except ValueError:
            self._tags.append(tag)
            return len(self._tags) - 1

    def append_block(
        self,
        block: MapBlock,
        segment: int,
        starts: np.ndarray,
        ends: np.ndarray,
    ) -> None:
        """Absorb one map task's emission.

        ``starts``/``ends`` are the task's *per-record* routing-interval
        columns; per-pair endpoints are gathered through the block's
        ``row_idx``.
        """
        if self._columns is not None:  # pragma: no cover - defensive
            raise RuntimeError("batch already finalised")
        remap = np.asarray(
            [self.intern_tag(tag) for tag in block.tags], dtype=np.int16
        )
        tag_codes = (
            remap[block.tag_codes] if len(remap) else block.tag_codes
        )
        gids = (np.int64(segment) << np.int64(32)) | block.row_idx
        self._blocks.append(
            (
                block.key_codes,
                gids,
                np.asarray(starts, dtype=np.float64)[block.row_idx],
                np.asarray(ends, dtype=np.float64)[block.row_idx],
                tag_codes,
            )
        )
        self._length += len(block)

    def columns(self) -> Tuple[np.ndarray, ...]:
        """``(key_codes, gids, starts, ends, tag_codes)``, concatenated."""
        if self._columns is None:
            if self._blocks:
                self._columns = tuple(
                    np.concatenate([b[i] for b in self._blocks])
                    for i in range(5)
                )
            else:
                self._columns = (
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.int16),
                )
            self._blocks = []
        return self._columns

    def logical_loads(self) -> Dict[Hashable, int]:
        """Pairs per distinct key, decoded to native Python keys."""
        key_codes = self.columns()[0]
        codes, counts = np.unique(key_codes, return_counts=True)
        return {
            self.codec.decode(int(code)): int(count)
            for code, count in zip(codes, counts)
        }


class ColRow:
    """A row stand-in inside columnar reducers: the payload id plus the
    routing interval.  Answers :meth:`interval` for any attribute name —
    valid only for single-attribute queries, which is exactly what the
    columnar gate requires of :class:`JoinReducer`."""

    __slots__ = ("gid", "_interval")

    def __init__(self, gid: int, interval) -> None:
        self.gid = gid
        self._interval = interval

    def interval(self, attribute: str):
        return self._interval


class ColumnValues:
    """One key group's values as column slices.

    Quacks like the records plane's value list where the framework needs
    it to — ``len()`` is the group size and iteration lazily materialises
    the exact records-plane value objects through the payload store (used
    by ``partition_stats`` and by the pickle safety net).  Reducers that
    understand columns never materialise; they read the arrays directly.
    """

    __slots__ = ("key", "gids", "starts", "ends", "tag_codes", "tags", "store")

    def __init__(
        self,
        key: Hashable,
        gids: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        tag_codes: np.ndarray,
        tags: Tuple[str, ...],
        store: Optional["PayloadStore"],
    ) -> None:
        self.key = key
        self.gids = gids
        self.starts = starts
        self.ends = ends
        self.tag_codes = tag_codes
        self.tags = tags
        self.store = store

    def __len__(self) -> int:
        return len(self.gids)

    def __iter__(self) -> Iterator[Any]:
        if self.store is None:  # pragma: no cover - defensive
            raise RuntimeError(
                "cannot materialise values without the payload store"
            )
        for gid in self.gids.tolist():
            yield self.store.value(gid)

    def __reduce__(self):
        # Pickle safety net: anything that serialises a group (e.g. the
        # records-plane fault path, which the columnar gate avoids)
        # receives the materialised value list instead of live arrays.
        return (list, (list(self),))

    # ------------------------------------------------------------------
    def tag_mask(self, tag: str) -> np.ndarray:
        """Boolean row mask of the values carrying ``tag``."""
        try:
            code = self.tags.index(tag)
        except ValueError:
            return np.zeros(len(self.gids), dtype=bool)
        return self.tag_codes == code

    def items(self, mask: Optional[np.ndarray] = None) -> List[Tuple[Any, int]]:
        """``(Interval, gid)`` sweep items in value order (optionally
        restricted to ``mask``), ready for the
        :func:`repro.intervals.sweep.join_pairs` kernels."""
        from repro.intervals.sweep import column_items

        if mask is None:
            return column_items(self.starts, self.ends, self.gids)
        return column_items(
            self.starts[mask], self.ends[mask], self.gids[mask]
        )

    def tagged_proxies(self) -> List[Tuple[str, ColRow]]:
        """``(tag, ColRow)`` pairs in value order — the columnar analogue
        of the records plane's ``(relation, row)`` values."""
        from repro.intervals.interval import Interval

        tags = self.tags
        return [
            (tags[code], ColRow(gid, Interval(start, end)))
            for gid, start, end, code in zip(
                self.gids.tolist(),
                self.starts.tolist(),
                self.ends.tolist(),
                self.tag_codes.tolist(),
            )
        ]


class PayloadStore:
    """Parent-side payload-id resolution for one job.

    Maps ``gid -> `` the exact shuffle value the records plane would
    have emitted for that pair (``segment`` selects the map task whose
    input held the record, the low 32 bits select the record).  Values
    are materialised lazily through the mapper's ``value_of``.
    """

    def __init__(self) -> None:
        self._segments: Dict[int, Tuple[Sequence[Any], Any]] = {}

    def add_segment(self, segment: int, records: Sequence[Any], mapper) -> None:
        self._segments[segment] = (records, mapper)

    def record(self, gid: int) -> Any:
        records, _ = self._segments[gid >> 32]
        return records[gid & _MASK32]

    def value(self, gid: int) -> Any:
        records, mapper = self._segments[gid >> 32]
        return mapper.value_of(records[gid & _MASK32])


# ----------------------------------------------------------------------
# Job gating and the reducer-side dispatch.
# ----------------------------------------------------------------------

def job_columnar_gate(
    conf: "JobConf",
) -> Tuple[Optional[str], Optional[str]]:
    """``(key kind, None)`` when every mapper and the reducer implement
    the columnar protocol (and agree on one key family), else
    ``(None, reason)`` — the reason strings feed the
    ``repro_data_plane_fallback_total`` metric, EXPLAIN output and the
    dashboard's fallback panel."""
    kinds = set()
    for spec in conf.inputs:
        mapper = spec.mapper
        if not hasattr(mapper, "map_columns"):
            return None, "mapper-no-columnar-protocol"
        ready = getattr(mapper, "columnar_ready", None)
        if ready is None or not ready():
            return None, "mapper-not-columnar-ready"
        kinds.add(getattr(mapper, "columnar_key_kind", None))
    if len(kinds) != 1 or None in kinds:
        return None, "mixed-key-kinds"
    reducer = conf.reducer
    if not hasattr(reducer, "columnar_outputs"):
        return None, "reducer-no-columnar-protocol"
    ready = getattr(reducer, "columnar_ready", None)
    if ready is None or not ready():
        return None, "reducer-not-columnar-ready"
    return kinds.pop(), None


def job_columnar_kind(conf: "JobConf") -> Optional[str]:
    """The job's key kind when every mapper and the reducer implement
    the columnar protocol (and agree on one key family); ``None`` means
    the job must run on the records plane."""
    kind, _ = job_columnar_gate(conf)
    return kind


def reduce_columns(reducer, key: Hashable, values: ColumnValues, context) -> None:
    """Drive one columnar key group through a protocol-aware reducer.

    With the payload store at hand (serial / threads, or the parent) each
    gid-shaped output materialises immediately; without it (a worker
    process holding only shared-memory columns) the raw gid outputs are
    emitted and the parent materialises them after the round trip.
    """
    store = values.store
    if store is None:
        for out in reducer.columnar_outputs(key, values, context.counters):
            context.emit(out)
    else:
        for out in reducer.columnar_outputs(key, values, context.counters):
            context.emit(reducer.materialize_output(out, store))
