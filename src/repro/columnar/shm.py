"""Zero-copy reduce-task transport over ``multiprocessing.shared_memory``.

The ``processes`` executor on the columnar plane packs each reduce
task's group columns into **one** shared-memory block instead of
pickling value lists:

* layout: ``[gids int64 | starts f64 | ends f64 | tag_codes int16]``,
  all groups concatenated in group order (the 2-byte column goes last so
  every column stays naturally aligned);
* the picklable :class:`ShmReduceTask` descriptor carries only the block
  name, the per-group keys/lengths and the tag table — a few hundred
  bytes regardless of data size, which is the pickle-bytes collapse the
  profiler's ``repro_profile_shm_bytes_total`` family makes visible.

Ownership: the **parent** creates and unlinks every block (create →
dispatch → join → unlink, in a ``finally``); workers attach, build
array views, and must drop every view before ``close()`` — a live view
of ``shm.buf`` raises ``BufferError`` on close.  Fork-started workers
share the parent's ``resource_tracker`` process, so the worker-side
attach registration is an idempotent set-add there and the parent's
unlink remains the single point of removal — explicitly unregistering
would *remove* the creator's entry and make the later unlink complain.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.batch import ColumnValues

__all__ = ["ShmReduceTask", "pack_reduce_task", "unpack_reduce_task"]


@dataclass
class ShmReduceTask:
    """Picklable descriptor of one packed reduce task."""

    shm_name: Optional[str]  # None for an empty task (shm size must be > 0)
    total_rows: int
    keys: List[Hashable]
    lengths: List[int]
    tags: Tuple[str, ...]

    @property
    def nbytes(self) -> int:
        return self.total_rows * (8 + 8 + 8 + 2)


def _column_views(
    buf, total_rows: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    gids = np.ndarray((total_rows,), dtype=np.int64, buffer=buf, offset=0)
    starts = np.ndarray(
        (total_rows,), dtype=np.float64, buffer=buf, offset=8 * total_rows
    )
    ends = np.ndarray(
        (total_rows,), dtype=np.float64, buffer=buf, offset=16 * total_rows
    )
    tag_codes = np.ndarray(
        (total_rows,), dtype=np.int16, buffer=buf, offset=24 * total_rows
    )
    return gids, starts, ends, tag_codes


def pack_reduce_task(
    groups: Sequence[Tuple[Hashable, ColumnValues]],
) -> Tuple[ShmReduceTask, Optional[shared_memory.SharedMemory]]:
    """Pack one task's groups into a fresh shared-memory block.

    Returns the descriptor plus the block (``None`` when the task is
    empty); the caller owns the block and must ``close()`` + ``unlink()``
    it once the task result has been collected.
    """
    keys = [key for key, _ in groups]
    lengths = [len(values) for _, values in groups]
    total = sum(lengths)
    tags: Tuple[str, ...] = groups[0][1].tags if groups else ()
    if total == 0:
        return ShmReduceTask(None, 0, keys, lengths, tags), None
    shm = shared_memory.SharedMemory(
        create=True, size=total * (8 + 8 + 8 + 2)
    )
    gids, starts, ends, tag_codes = _column_views(shm.buf, total)
    offset = 0
    for _, values in groups:
        n = len(values)
        gids[offset : offset + n] = values.gids
        starts[offset : offset + n] = values.starts
        ends[offset : offset + n] = values.ends
        tag_codes[offset : offset + n] = values.tag_codes
        offset += n
    del gids, starts, ends, tag_codes
    return ShmReduceTask(shm.name, total, keys, lengths, tags), shm


def unpack_reduce_task(
    task: ShmReduceTask,
) -> Tuple[List[Tuple[Hashable, ColumnValues]], Optional[shared_memory.SharedMemory]]:
    """Rebuild a packed task's groups inside a worker process.

    The returned :class:`ColumnValues` hold **views** into the attached
    block (``store=None`` — workers emit gid outputs, the parent
    materialises).  The caller must drop every group before closing the
    returned block.
    """
    if task.shm_name is None:
        empty = [
            (
                key,
                ColumnValues(
                    key,
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.int16),
                    task.tags,
                    None,
                ),
            )
            for key in task.keys
        ]
        return empty, None
    shm = shared_memory.SharedMemory(name=task.shm_name)
    gids, starts, ends, tag_codes = _column_views(shm.buf, task.total_rows)
    groups: List[Tuple[Hashable, ColumnValues]] = []
    offset = 0
    for key, n in zip(task.keys, task.lengths):
        sl = slice(offset, offset + n)
        groups.append(
            (
                key,
                ColumnValues(
                    key, gids[sl], starts[sl], ends[sl], tag_codes[sl],
                    task.tags, None,
                ),
            )
        )
        offset += n
    del gids, starts, ends, tag_codes
    return groups, shm
