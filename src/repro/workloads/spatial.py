"""Spatial rectangle workloads (the paper's Section 1 motivation).

A rectangle is two intervals — its x-extent (*length*) and y-extent
(*breadth*); the query "find all cities overlapping a river" becomes the
two-attribute interval join

    city.x  intersects  river.x  and  city.y  intersects  river.y

which Gen-Matrix executes.  (The paper phrases the predicate as
``overlaps``; geometric rectangle intersection is the symmetric
colocation test, so we express it as a disjunction-free pair of
directional conditions when generating example queries, or via the
symmetric helper below when callers want plain intersection.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.core.schema import Relation, Row
from repro.intervals.interval import Interval

__all__ = ["RectangleConfig", "generate_rectangles", "rectangles_intersect"]


@dataclass(frozen=True)
class RectangleConfig:
    """Axis-aligned rectangle generator configuration."""

    n: int
    world: Tuple[float, float] = (0.0, 10_000.0)
    width_range: Tuple[float, float] = (1.0, 100.0)
    height_range: Tuple[float, float] = (1.0, 100.0)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n < 0:
            raise WorkloadError("n must be non-negative")
        lo, hi = self.world
        if hi <= lo:
            raise WorkloadError("world range must be non-degenerate")


def generate_rectangles(name: str, config: RectangleConfig) -> Relation:
    """A relation of rectangles with interval attributes ``x`` and ``y``."""
    rng = np.random.default_rng(config.seed)
    lo, hi = config.world
    span = hi - lo
    xs = lo + rng.random(config.n) * span
    ys = lo + rng.random(config.n) * span
    w_lo, w_hi = config.width_range
    h_lo, h_hi = config.height_range
    widths = w_lo + rng.random(config.n) * (w_hi - w_lo)
    heights = h_lo + rng.random(config.n) * (h_hi - h_lo)
    rows = []
    for rid in range(config.n):
        rows.append(
            Row.make(
                rid,
                {
                    "x": Interval(float(xs[rid]), float(min(xs[rid] + widths[rid], hi))),
                    "y": Interval(float(ys[rid]), float(min(ys[rid] + heights[rid], hi))),
                },
            )
        )
    return Relation(name, rows)


def rectangles_intersect(a: Row, b: Row) -> bool:
    """Plain geometric intersection test (for example-script validation)."""
    return a.interval("x").intersects(b.interval("x")) and a.interval(
        "y"
    ).intersects(b.interval("y"))
