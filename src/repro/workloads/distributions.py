"""Random samplers for workload generation.

The paper's synthetic generator takes distributions for interval start
points (``dS``) and interval lengths (``dI``); the evaluation uses
Uniform, and we additionally provide Normal, Exponential and Zipf for the
skew ablations.  All samplers are seeded through a shared
:class:`numpy.random.Generator` so every workload is reproducible.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from repro.errors import WorkloadError

__all__ = ["make_sampler", "Sampler", "DISTRIBUTIONS"]

#: A sampler maps (rng, size) to an array of floats in [0, 1) which the
#: generator scales into the target range.
Sampler = Callable[[np.random.Generator, int], np.ndarray]


def _uniform(rng: np.random.Generator, size: int) -> np.ndarray:
    return rng.random(size)


def _normal(rng: np.random.Generator, size: int) -> np.ndarray:
    # Truncated normal centred mid-range; ~99.7% of mass inside [0, 1).
    values = rng.normal(loc=0.5, scale=1.0 / 6.0, size=size)
    return np.clip(values, 0.0, np.nextafter(1.0, 0.0))


def _exponential(rng: np.random.Generator, size: int) -> np.ndarray:
    # Scale so the bulk of the mass sits early in the range.
    values = rng.exponential(scale=0.25, size=size)
    return np.clip(values, 0.0, np.nextafter(1.0, 0.0))


def _zipf(rng: np.random.Generator, size: int) -> np.ndarray:
    # Map a Zipf(2) rank distribution onto [0, 1): heavy head near zero.
    # Ranks are jittered across their unit bucket so the head is a dense
    # region rather than a single repeated value (a point mass would make
    # every head interval pairwise-colocated and blow up join outputs
    # combinatorially, which no real skewed workload does).
    ranks = rng.zipf(a=2.0, size=size).astype(float)
    if size:
        jitter = rng.random(size)
        values = (ranks - 1.0 + jitter) / (ranks.max() + 1.0)
    else:
        values = ranks
    return np.clip(values, 0.0, np.nextafter(1.0, 0.0))


DISTRIBUTIONS: Dict[str, Sampler] = {
    "uniform": _uniform,
    "normal": _normal,
    "exponential": _exponential,
    "zipf": _zipf,
}


def make_sampler(name: Union[str, Sampler]) -> Sampler:
    """Resolve a distribution name (or pass a sampler through)."""
    if callable(name):
        return name
    try:
        return DISTRIBUTIONS[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown distribution {name!r}; expected one of "
            f"{sorted(DISTRIBUTIONS)}"
        ) from None
