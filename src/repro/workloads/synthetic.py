"""The paper's synthetic interval generator (Section 6.2).

Parameters match the paper's script exactly:

* ``n`` — number of intervals (the paper's *nI*);
* ``start_dist`` — distribution of start points (*dS*);
* ``length_dist`` — distribution of interval lengths (*dI*);
* ``t_range = (t_min, t_max)`` — the range all intervals lie within;
* ``length_range = (i_min, i_max)`` — min and max interval lengths.

Intervals are clipped so they never extend past ``t_max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import WorkloadError
from repro.core.schema import Relation
from repro.intervals.interval import Interval
from repro.workloads.distributions import Sampler, make_sampler

__all__ = ["SyntheticConfig", "generate_intervals", "generate_relation"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Configuration of the paper's synthetic interval script."""

    n: int
    start_dist: Union[str, Sampler] = "uniform"
    length_dist: Union[str, Sampler] = "uniform"
    t_range: Tuple[float, float] = (0.0, 100_000.0)
    length_range: Tuple[float, float] = (1.0, 100.0)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n < 0:
            raise WorkloadError("n must be non-negative")
        t_min, t_max = self.t_range
        if t_max <= t_min:
            raise WorkloadError("t_range must be non-degenerate")
        i_min, i_max = self.length_range
        if i_min < 0 or i_max < i_min:
            raise WorkloadError("length_range must satisfy 0 <= min <= max")


def generate_intervals(config: SyntheticConfig) -> List[Interval]:
    """Generate intervals per the paper's parameters."""
    rng = np.random.default_rng(config.seed)
    t_min, t_max = config.t_range
    i_min, i_max = config.length_range
    start_sampler = make_sampler(config.start_dist)
    length_sampler = make_sampler(config.length_dist)

    starts = t_min + start_sampler(rng, config.n) * (t_max - t_min)
    lengths = i_min + length_sampler(rng, config.n) * (i_max - i_min)
    ends = np.minimum(starts + lengths, t_max)
    return [Interval(float(s), float(e)) for s, e in zip(starts, ends)]


def generate_relation(name: str, config: SyntheticConfig) -> Relation:
    """A single-attribute relation of synthetic intervals."""
    return Relation.of_intervals(name, generate_intervals(config))
