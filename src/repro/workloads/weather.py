"""Environmental-monitoring episodes (the paper's opening example).

The paper motivates interval joins with spatio-temporal environment data:
for each location, the periods of high wind speed, high temperature and
high pollutant concentration form interval relations, and the analyst
asks for triples where the high-temperature and high-pollution episodes
are *contained* in a high-wind episode.

This generator simulates per-location sensor episodes: weather regimes
arrive over the observation window; during a regime, correlated episodes
of the three phenomena are emitted with realistic containment structure
(wind episodes are long; temperature/pollution episodes nest inside them
with some probability, else float freely), so the contains-join has a
non-trivial, location-dependent answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.core.schema import Relation
from repro.intervals.interval import Interval

__all__ = ["WeatherConfig", "generate_weather_episodes"]


@dataclass(frozen=True)
class WeatherConfig:
    """Episode generator configuration (times in hours)."""

    n_regimes: int = 40
    window: Tuple[float, float] = (0.0, 24.0 * 30)  # one month
    wind_duration: Tuple[float, float] = (6.0, 48.0)
    nested_fraction: float = 0.7
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_regimes < 0:
            raise WorkloadError("n_regimes must be non-negative")
        if not 0.0 <= self.nested_fraction <= 1.0:
            raise WorkloadError("nested_fraction must be within [0, 1]")


def generate_weather_episodes(
    config: WeatherConfig,
) -> Dict[str, Relation]:
    """Relations ``wind``, ``temperature``, ``pollution`` of episodes."""
    rng = np.random.default_rng(config.seed)
    lo, hi = config.window
    wind: List[Interval] = []
    temperature: List[Interval] = []
    pollution: List[Interval] = []

    for _ in range(config.n_regimes):
        d_lo, d_hi = config.wind_duration
        duration = d_lo + rng.random() * (d_hi - d_lo)
        start = lo + rng.random() * max(hi - lo - duration, 1.0)
        wind_iv = Interval(start, min(start + duration, hi))
        wind.append(wind_iv)

        for sink in (temperature, pollution):
            if rng.random() < config.nested_fraction and wind_iv.length > 2.0:
                # Nest a shorter episode strictly inside the wind episode.
                inner_len = wind_iv.length * (0.2 + 0.5 * rng.random())
                margin = (wind_iv.length - inner_len) or 1.0
                inner_start = wind_iv.start + rng.random() * margin
                # Strict containment: keep endpoints off the boundary.
                inner_start = min(
                    max(inner_start, np.nextafter(wind_iv.start, wind_iv.end)),
                    wind_iv.end - inner_len,
                )
                if inner_start > wind_iv.start:
                    sink.append(
                        Interval(inner_start, inner_start + inner_len * 0.999)
                    )
                    continue
            # Free-floating episode elsewhere in the window.
            length = 1.0 + rng.random() * 12.0
            s = lo + rng.random() * max(hi - lo - length, 1.0)
            sink.append(Interval(s, min(s + length, hi)))

    return {
        "wind": Relation.of_intervals("wind", wind),
        "temperature": Relation.of_intervals("temperature", temperature),
        "pollution": Relation.of_intervals("pollution", pollution),
    }
