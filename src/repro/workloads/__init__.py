"""Workload generators: the paper's synthetic interval script, synthetic
MAWI-style packet traces with packet-train construction, spatial
rectangles, and environmental-monitoring episodes."""

from repro.workloads.distributions import DISTRIBUTIONS, make_sampler
from repro.workloads.packets import (
    TRACE_PROFILES,
    Packet,
    TraceProfile,
    build_packet_trains,
    generate_trace,
    replicate_trains,
    trains_relation,
)
from repro.workloads.spatial import (
    RectangleConfig,
    generate_rectangles,
    rectangles_intersect,
)
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_intervals,
    generate_relation,
)
from repro.workloads.weather import WeatherConfig, generate_weather_episodes

__all__ = [
    "DISTRIBUTIONS",
    "Packet",
    "RectangleConfig",
    "SyntheticConfig",
    "TRACE_PROFILES",
    "TraceProfile",
    "WeatherConfig",
    "build_packet_trains",
    "generate_intervals",
    "generate_rectangles",
    "generate_relation",
    "generate_trace",
    "generate_weather_episodes",
    "make_sampler",
    "rectangles_intersect",
    "replicate_trains",
    "trains_relation",
]
