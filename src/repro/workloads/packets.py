"""Synthetic MAWI-style packet traces and packet trains (Section 6.2).

The paper uses 15-minute extracts of the WIDE trans-Pacific backbone
(MAWI repository), builds *packet trains* — maximal runs of packets on one
(source, destination) pair whose inter-arrival gaps stay below a cut-off —
and joins the train intervals.  The real traces are not redistributable,
so this module generates statistically similar traffic:

* flows (source/destination pairs) arrive as a Poisson process over the
  trace window;
* each flow emits packets in bursts: burst sizes are heavy-tailed
  (Pareto), intra-burst gaps are short log-normals, inter-burst gaps are
  long log-normals — the bimodal gap structure that makes the train
  cut-off meaningful (Jain & Routhier's packet-train model);
* six profiles ``P03`` … ``P08`` mirror the paper's Table 2: widely
  varying packet counts (the paper's 0.2M–9.1M, scaled down by a common
  factor) and train/packet ratios.

The joinable artefacts are the *train intervals* ``[first packet arrival,
last packet arrival]`` — exactly what the paper feeds its star self-join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.core.schema import Relation
from repro.intervals.interval import Interval

__all__ = [
    "Packet",
    "TraceProfile",
    "TRACE_PROFILES",
    "generate_trace",
    "build_packet_trains",
    "replicate_trains",
    "trains_relation",
]


@dataclass(frozen=True)
class Packet:
    """One captured packet: arrival time and flow identity."""

    time: float
    source: int
    destination: int

    @property
    def flow(self) -> Tuple[int, int]:
        return (self.source, self.destination)


@dataclass(frozen=True)
class TraceProfile:
    """Shape parameters of one synthetic trace.

    ``n_packets`` follows the paper's Table 2 ratios; ``n_flows`` tunes
    how many packet trains emerge; ``burstiness`` scales the inter-burst
    gaps (larger -> more, shorter trains).
    """

    name: str
    date: str
    n_packets: int
    n_flows: int
    burstiness: float = 1.0
    duration_seconds: float = 900.0  # the paper's 15-minute extracts


#: Six profiles mirroring Table 2's packet counts (paper values / 100) and
#: the paper's dates.  Train counts emerge from the generator but land in
#: the same relative ordering as the paper's (#trains grows with packets
#: but sub-linearly for the busy 2007/2008 traces).
TRACE_PROFILES: Dict[str, TraceProfile] = {
    "P03": TraceProfile("P03", "01-01-03", 15_000, 1_200, 1.0),
    "P04": TraceProfile("P04", "01-01-04", 2_000, 180, 1.0),
    "P05": TraceProfile("P05", "15-01-05", 29_000, 2_100, 1.0),
    "P06": TraceProfile("P06", "01-01-06", 34_000, 3_500, 1.2),
    "P07": TraceProfile("P07", "15-01-07", 91_000, 3_600, 0.6),
    "P08": TraceProfile("P08", "01-01-08", 73_000, 3_100, 0.7),
}


def generate_trace(
    profile: TraceProfile, seed: Optional[int] = None
) -> List[Packet]:
    """Generate one synthetic packet trace, sorted by arrival time."""
    if profile.n_packets < 0 or profile.n_flows <= 0:
        raise WorkloadError("profile needs n_packets >= 0, n_flows > 0")
    rng = np.random.default_rng(seed)
    packets: List[Packet] = []
    # Distribute the packet budget over flows with a heavy tail: a few
    # elephant flows, many mice — characteristic of backbone traffic.
    weights = rng.pareto(a=1.5, size=profile.n_flows) + 1.0
    weights /= weights.sum()
    per_flow = rng.multinomial(profile.n_packets, weights)

    for flow_id, count in enumerate(per_flow):
        if count == 0:
            continue
        source = flow_id
        destination = 10_000 + flow_id
        flow_start = rng.random() * profile.duration_seconds * 0.9
        t = flow_start
        remaining = int(count)
        while remaining > 0:
            burst = min(remaining, 1 + int(rng.pareto(a=1.2)))
            for _ in range(burst):
                packets.append(Packet(t, source, destination))
                # Intra-burst gaps: tens of milliseconds.
                t += float(rng.lognormal(mean=-3.5, sigma=0.6))
            remaining -= burst
            # Inter-burst gaps: seconds — above any sane train cut-off.
            t += float(
                rng.lognormal(mean=0.8, sigma=0.8) * profile.burstiness
            )
            if t > profile.duration_seconds:
                break
    packets.sort(key=lambda p: p.time)
    return packets


def build_packet_trains(
    packets: Iterable[Packet], gap_threshold: float = 0.5
) -> List[Interval]:
    """The paper's packet-train construction.

    A train is a maximal run of same-flow packets whose consecutive
    inter-arrival gaps are below ``gap_threshold`` (the paper uses
    500 ms).  The returned intervals run from the first to the last packet
    arrival of each train.
    """
    if gap_threshold <= 0:
        raise WorkloadError("gap_threshold must be positive")
    last_time: Dict[Tuple[int, int], float] = {}
    train_start: Dict[Tuple[int, int], float] = {}
    trains: List[Interval] = []
    for packet in sorted(packets, key=lambda p: p.time):
        flow = packet.flow
        if flow in last_time and packet.time - last_time[flow] <= gap_threshold:
            last_time[flow] = packet.time
            continue
        if flow in train_start:
            trains.append(Interval(train_start[flow], last_time[flow]))
        train_start[flow] = packet.time
        last_time[flow] = packet.time
    for flow, start in train_start.items():
        trains.append(Interval(start, last_time[flow]))
    trains.sort(key=lambda iv: (iv.start, iv.end))
    return trains


def replicate_trains(
    trains: Sequence[Interval],
    target: int,
    seed: Optional[int] = None,
) -> List[Interval]:
    """Scale a train set up to ``target`` intervals by replication.

    The paper replicates each trace's trains to a fixed 3M-train data set.
    Copies are jittered by a tiny fraction of the trace span so replicas
    are not bit-identical (plain copies would make every join result an
    exact multiple, hiding load-balance effects).
    """
    if target < 0:
        raise WorkloadError("target must be non-negative")
    if not trains:
        return []
    rng = np.random.default_rng(seed)
    span = max(iv.end for iv in trains) - min(iv.start for iv in trains)
    jitter_scale = max(span * 1e-6, 1e-9)
    out: List[Interval] = []
    index = 0
    while len(out) < target:
        base = trains[index % len(trains)]
        jitter = float(rng.normal(0.0, jitter_scale))
        out.append(Interval(base.start + jitter, base.end + jitter))
        index += 1
    return out


def compress_time(
    trains: Sequence[Interval], factor: float
) -> List[Interval]:
    """Shrink the observation window by ``factor``, keeping durations.

    Start points are divided by ``factor`` while each train keeps its
    length, multiplying temporal concurrency by ``factor``.  Down-scaled
    reproductions use this to preserve the paper's *offered load* (trains
    per unit time): replicating 18K trains to 3M within one 15-minute
    window, as the paper does, packs trains ~170x denser than the source
    trace; generating 1/500 of the trains in the same window would
    otherwise dilute density by the same factor and change which
    algorithm wins.
    """
    if factor <= 0:
        raise WorkloadError("compression factor must be positive")
    return [
        Interval(iv.start / factor, iv.start / factor + iv.length)
        for iv in trains
    ]


def trains_relation(
    name: str,
    profile: TraceProfile,
    gap_threshold: float = 0.5,
    target: Optional[int] = None,
    seed: Optional[int] = None,
) -> Relation:
    """End-to-end helper: trace -> trains -> (optionally scaled) relation."""
    packets = generate_trace(profile, seed=seed)
    trains = build_packet_trains(packets, gap_threshold=gap_threshold)
    if target is not None:
        trains = replicate_trains(trains, target, seed=seed)
    return Relation.of_intervals(name, trains)
