#!/usr/bin/env python
"""Packet-train analysis on backbone traces (the paper's Section 6.2).

Pipeline:
 1. generate a synthetic MAWI-style trans-Pacific trace (profile P04);
 2. build packet trains with the paper's 500 ms inter-arrival cut-off;
 3. scale the train set up by replication (the paper scales to 3M);
 4. run the star self-join  T1 overlaps T2 and T2 overlaps T3  — "find
    all train triples where T1 overlaps T2 and T2 overlaps T3", used for
    studying concurrent flows in network traffic models;
 5. compare RCCIS against the 2-way cascade, as Table 2 does.

Run:  python examples/network_packet_trains.py
"""

from repro import IntervalJoinQuery, execute
from repro.stats import human_count, human_seconds, render_table
from repro.workloads import (
    TRACE_PROFILES,
    build_packet_trains,
    generate_trace,
    replicate_trains,
)
from repro.core.schema import Relation


def main() -> None:
    profile = TRACE_PROFILES["P04"]
    print(f"trace {profile.name} ({profile.date}): generating ...")
    packets = generate_trace(profile, seed=4)
    trains = build_packet_trains(packets, gap_threshold=0.5)
    print(f"  {len(packets)} packets -> {len(trains)} packet trains")

    # Scale up by replication (paper: to 3M; here: laptop scale).
    target = 3_000
    scaled = replicate_trains(trains, target, seed=4)
    copies = target / max(len(trains), 1)
    print(f"  replicated to {target} trains (~{copies:.0f} copies)\n")

    base = Relation.of_intervals("T1", scaled)
    data = {"T1": base, "T2": base.alias("T2"), "T3": base.alias("T3")}
    query = IntervalJoinQuery.parse(
        [("T1", "overlaps", "T2"), ("T2", "overlaps", "T3")]
    )

    rows = []
    output_sizes = set()
    for algorithm in ("rccis", "two_way_cascade"):
        result = execute(query, data, algorithm=algorithm, num_partitions=16)
        output_sizes.add(len(result))
        m = result.metrics
        rows.append(
            [
                algorithm,
                m.num_cycles,
                human_count(m.shuffled_records),
                human_count(m.comparisons),
                human_seconds(m.simulated_seconds),
            ]
        )
    assert len(output_sizes) == 1, "algorithms disagreed!"
    print(
        render_table(
            f"star self-join on {target} trains "
            f"({output_sizes.pop()} output triples, 16 reducers)",
            ["algorithm", "MR cycles", "# pairs shuffled", "# comparisons",
             "modelled time"],
            rows,
            note="Table 2's shape: RCCIS beats the cascade on every trace",
        )
    )


if __name__ == "__main__":
    main()
