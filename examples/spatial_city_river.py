#!/usr/bin/env python
"""Spatial join: "find all cities overlapping a river" (paper, Section 1).

Rectangles are pairs of intervals (x-extent, y-extent), so the spatial
join becomes the two-attribute interval join

    cities.x overlaps rivers.x  and  cities.y overlaps rivers.y

which Gen-Matrix executes on a multi-dimensional reducer grid.  Because
Allen's `overlaps` is directional, the single query above captures one
orientation; the example then unions all four orientation combinations to
recover full geometric intersection and validates against a brute-force
sweep.

Run:  python examples/spatial_city_river.py
"""

import itertools

from repro import IntervalJoinQuery, execute
from repro.stats import human_count, render_table
from repro.workloads import RectangleConfig, generate_rectangles, rectangles_intersect

#: Allen predicates whose union equals "the two intervals intersect".
COLOCATION_ORIENTATIONS = [
    "overlaps", "overlapped_by", "contains", "during",
    "starts", "started_by", "finishes", "finished_by", "equals",
    "meets", "met_by",
]


def main() -> None:
    cities = generate_rectangles(
        "cities",
        RectangleConfig(n=300, world=(0, 5_000), width_range=(5, 60),
                        height_range=(5, 60), seed=10),
    )
    rivers = generate_rectangles(
        "rivers",
        RectangleConfig(n=40, world=(0, 5_000), width_range=(400, 2_500),
                        height_range=(10, 60), seed=11),
    )
    data = {"cities": cities, "rivers": rivers}
    print(f"{len(cities)} cities x {len(rivers)} rivers")

    # One orientation as the paper writes it:
    query = IntervalJoinQuery.parse(
        [
            ("cities.x", "overlaps", "rivers.x"),
            ("cities.y", "overlaps", "rivers.y"),
        ]
    )
    result = execute(query, data, algorithm="gen_matrix", num_partitions=5)
    print(
        f"\n'{query}' -> {len(result)} pairs "
        f"({result.metrics.consistent_reducers}/"
        f"{result.metrics.total_reducers} consistent reducers)"
    )

    # Full geometric intersection = union over orientation combinations.
    matches = set()
    per_orientation = []
    for px, py in itertools.product(COLOCATION_ORIENTATIONS, repeat=2):
        q = IntervalJoinQuery.parse(
            [("cities.x", px, "rivers.x"), ("cities.y", py, "rivers.y")]
        )
        r = execute(q, data, algorithm="gen_matrix", num_partitions=5)
        if r.tuples:
            per_orientation.append([f"x:{px}", f"y:{py}", len(r)])
        matches.update(
            (c.rid, v.rid) for c, v in r.tuples
        )

    brute = {
        (c.rid, v.rid)
        for c in cities.rows
        for v in rivers.rows
        if rectangles_intersect(c, v)
    }
    assert matches == brute, "union of orientations != geometric truth"
    print(
        f"\nfull rectangle intersection: {len(matches)} city-river pairs "
        "(validated against brute force)\n"
    )
    print(
        render_table(
            "non-empty orientation combinations",
            ["x predicate", "y predicate", "# pairs"],
            per_orientation[:12],
            note=f"{len(per_orientation)} of "
            f"{len(COLOCATION_ORIENTATIONS) ** 2} combinations non-empty",
        )
    )


if __name__ == "__main__":
    main()
