#!/usr/bin/env python
"""Quickstart: a 3-way interval join, four ways.

Builds three small synthetic relations, runs the colocation chain query
Q1 = R1 overlaps R2 and R2 overlaps R3 with the paper's RCCIS algorithm
and the two baselines, and prints the communication metrics the paper's
Table 1 tabulates.

Run:  python examples/quickstart.py
"""

from repro import IntervalJoinQuery, execute, reference_join
from repro.stats import human_count, human_seconds, render_table
from repro.workloads import SyntheticConfig, generate_relation


def main() -> None:
    # The paper's synthetic generator: nI intervals, uniform start points
    # (dS) and lengths (dI) over a fixed time range.
    config = lambda seed: SyntheticConfig(  # noqa: E731
        n=2_000,
        start_dist="uniform",
        length_dist="uniform",
        t_range=(0, 100_000),
        length_range=(1, 100),
        seed=seed,
    )
    data = {
        "R1": generate_relation("R1", config(1)),
        "R2": generate_relation("R2", config(2)),
        "R3": generate_relation("R3", config(3)),
    }

    query = IntervalJoinQuery.parse(
        [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
    )
    print(f"query:  {query}")
    print(f"class:  {query.query_class.name}")

    # Ground truth (in-memory backtracking join).
    reference = reference_join(query, data)
    print(f"output: {len(reference)} tuples\n")

    rows = []
    for algorithm in ("rccis", "all_replicate", "two_way_cascade"):
        result = execute(query, data, algorithm=algorithm, num_partitions=16)
        assert result.same_output(reference), algorithm
        m = result.metrics
        rows.append(
            [
                algorithm,
                m.num_cycles,
                human_count(m.replicated_intervals),
                human_count(m.shuffled_records),
                human_count(m.comparisons),
                human_seconds(m.simulated_seconds),
            ]
        )
    print(
        render_table(
            "Q1 = R1 overlaps R2 and R2 overlaps R3   (16 reducers)",
            ["algorithm", "MR cycles", "# replicated", "# pairs shuffled",
             "# comparisons", "modelled time"],
            rows,
            note="all three algorithms produced identical output "
            f"({len(reference)} tuples); see EXPERIMENTS.md for the "
            "paper-scale runs",
        )
    )


if __name__ == "__main__":
    main()
