#!/usr/bin/env python
"""Handling skewed interval data: diagnosis, tuning, and equi-depth
partitioning.

Real interval workloads are rarely uniform — bursty traffic concentrates
start points.  This example walks the full toolbox:

1. generate a zipf-skewed workload and *diagnose* it with the analysis
   module (concurrency profile, Allen histogram);
2. ask the cost-based tuner for a partition count;
3. run RCCIS with the paper's equi-width partitioning and with this
   library's equi-depth extension, comparing reducer load balance.

Run:  python examples/skewed_workload_tuning.py
"""

from repro import IntervalJoinQuery, execute
from repro.analysis import peak_concurrency
from repro.core.tuning import recommend_partitions
from repro.stats import human_seconds, load_balance, render_table
from repro.workloads import SyntheticConfig, generate_relation


def main() -> None:
    config = lambda seed: SyntheticConfig(  # noqa: E731
        n=1_200,
        start_dist="zipf",
        t_range=(0, 100_000),
        length_range=(1, 150),
        seed=seed,
    )
    data = {
        name: generate_relation(name, config(seed))
        for seed, name in enumerate(("R1", "R2", "R3"))
    }
    query = IntervalJoinQuery.parse(
        [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
    )

    # ----- 1. diagnose -----
    intervals = [iv for rel in data.values() for iv in rel.intervals()]
    print(f"peak concurrency: {peak_concurrency(intervals)} "
          f"(of {len(intervals)} intervals — heavily clustered)")

    # ----- 2. tune -----
    report = recommend_partitions(query, data)
    print(
        f"tuner: use {report.best.partitions} partitions "
        f"(predicted ~{report.best.predicted_seconds:.1f}s)"
    )

    # ----- 3. compare partitioning strategies -----
    rows = []
    for strategy in ("uniform", "equi_depth"):
        result = execute(
            query,
            data,
            algorithm="rccis",
            num_partitions=report.best.partitions,
            partition_strategy=strategy,
        )
        balance = load_balance(result.metrics.reducer_loads)
        rows.append(
            [
                strategy,
                len(result),
                balance.max_load,
                f"{balance.imbalance:.2f}",
                f"{balance.fairness:.3f}",
                human_seconds(result.metrics.simulated_seconds),
            ]
        )
    print()
    print(
        render_table(
            "RCCIS under zipf-skewed start points",
            ["partitioning", "output", "max load", "max/mean", "Jain",
             "modelled time"],
            rows,
            note="equi-depth boundaries sit at start-point quantiles, so "
            "each reducer projects a similar share",
        )
    )
    assert rows[0][1] == rows[1][1], "strategies must agree on output"


if __name__ == "__main__":
    main()
