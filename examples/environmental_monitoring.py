#!/usr/bin/env python
"""The paper's opening scenario: environmental episode analysis.

From simulated weather-station data, build interval relations of
high-wind, high-temperature and high-pollution episodes, then answer the
introduction's query: *find all triples (w, t, p) where the temperature
and pollution episodes are contained within the wind episode* — evidence
for wind-driven pollutant build-up models.

The query is a colocation star (two `contains` conditions out of `wind`),
so the planner picks RCCIS.

Run:  python examples/environmental_monitoring.py
"""

from repro import IntervalJoinQuery, execute
from repro.stats import human_count, render_table
from repro.workloads import WeatherConfig, generate_weather_episodes


def main() -> None:
    episodes = generate_weather_episodes(
        WeatherConfig(
            n_regimes=400,
            window=(0.0, 24.0 * 365),  # one year, hourly resolution
            wind_duration=(6.0, 72.0),
            nested_fraction=0.6,
            seed=2014,
        )
    )
    for name, relation in episodes.items():
        print(f"{name:12s} {len(relation):5d} episodes")

    query = IntervalJoinQuery.parse(
        [
            ("wind", "contains", "temperature"),
            ("wind", "contains", "pollution"),
        ]
    )
    print(f"\nquery: {query}   [class={query.query_class.name}]\n")

    result = execute(query, episodes, num_partitions=16)
    print(
        f"{len(result)} wind episodes fully contain both a high-temperature "
        "and a high-pollution episode\n"
    )

    # Show the first few matches.
    sample_rows = []
    for wind_row, temp_row, poll_row in result.tuples[:5]:
        sample_rows.append(
            [
                str(wind_row.interval("I")),
                str(temp_row.interval("I")),
                str(poll_row.interval("I")),
            ]
        )
    print(
        render_table(
            "sample matches (hours since epoch)",
            ["wind episode", "temperature episode", "pollution episode"],
            sample_rows,
        )
    )

    m = result.metrics
    print(
        f"\nexecuted by {m.algorithm}: {m.num_cycles} MR cycles, "
        f"{human_count(m.shuffled_records)} shuffled pairs, "
        f"{human_count(m.replicated_intervals)} intervals replicated"
    )


if __name__ == "__main__":
    main()
