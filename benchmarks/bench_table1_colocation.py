"""Table 1 — multi-way colocation join, varying data size.

Paper setup: Q1 = R1 overlaps R2 and R2 overlaps R3; dS, dI uniform;
t range (0, 100K); interval lengths (1, 100); equal relation sizes swept
0.5M..1.25M in 0.25M steps; 16 reducers.  Columns: times for 2-way Cd /
All-Rep / RCCIS, #intervals replicated (RCCIS, All-Rep) and total
key-value pairs.

Scaling.  Sizes here are the paper's / ~400 and the cost model is scaled
accordingly.  One knob does not survive naive down-scaling: the
intermediate-result density.  At the paper's sizes each interval overlaps
``nI * avg_len / range`` ≈ 100+ partners, making the cascade's
intermediate ~50x its input; dividing nI by 400 with unchanged lengths
drops that to ~0.25 and the cascade artificially wins.  The headline run
therefore scales interval lengths x10 (max 1000) to restore intermediate
≈ 3x input — still far below the paper's density, which pure-Python
output materialisation cannot reach — and the density ablation below
sweeps lengths across both regimes so the crossover is visible.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    human_count,
    human_seconds,
    print_section,
    render_table,
    run_algorithm,
    scaled_cost_model,
)

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

SCALE = 2_000.0
Q1 = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
ALGORITHMS = ("two_way_cascade", "all_replicate", "rccis")


def make_data(n: int, max_length: float = 1_000.0, seed_base: int = 0):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=n,
                t_range=(0, 100_000),
                length_range=(1, max_length),
                seed=seed_base + index,
            ),
        )
        for index, name in enumerate(("R1", "R2", "R3"))
    }


def run_row(n: int, max_length: float = 1_000.0):
    data = make_data(n, max_length)
    cost = scaled_cost_model(SCALE)
    results = {
        name: run_algorithm(Q1, data, name, num_partitions=16, cost_model=cost)
        for name in ALGORITHMS
    }
    outputs = {len(r) for r in results.values()}
    assert len(outputs) == 1, "algorithms disagreed"
    return results


def main() -> None:
    print_section(
        "Table 1 — Q1 = R1 ov R2 and R2 ov R3, varying size "
        f"(paper sizes / 400, cost scale x2000, 16 reducers)"
    )
    rows = []
    for n in (1_250, 1_875, 2_500, 3_125):
        results = run_row(n)
        cascade, allrep, rccis = (
            results["two_way_cascade"],
            results["all_replicate"],
            results["rccis"],
        )
        rows.append(
            [
                human_count(n),
                human_seconds(cascade.metrics.simulated_seconds),
                human_seconds(allrep.metrics.simulated_seconds),
                human_seconds(rccis.metrics.simulated_seconds),
                f"{human_count(rccis.metrics.replicated_intervals)} "
                f"({human_count(rccis.metrics.shuffled_records)})",
                f"{human_count(allrep.metrics.replicated_intervals)} "
                f"({human_count(allrep.metrics.shuffled_records)})",
                f"({human_count(cascade.metrics.shuffled_records)})",
                human_count(len(rccis)),
            ]
        )
    print(
        render_table(
            "",
            [
                "nI", "t 2-way Cd", "t All-Rep", "t RCCIS",
                "#repl RCCIS (pairs)", "#repl All-Rep (pairs)",
                "#pairs 2-way Cd", "output",
            ],
            rows,
            note="paper shape: RCCIS fastest, replicating ~1% of what "
            "All-Rep replicates; the cascade's penalty grows with density "
            "(next table)",
        )
    )

    print_section(
        "Table 1b (ours) — density ablation: intermediate/input ratio "
        "drives the cascade's cost (nI = 1500)"
    )
    rows = []
    for max_length in (100, 500, 1_000, 2_000, 4_000):
        results = run_row(1_500, max_length)
        cascade, allrep, rccis = (
            results["two_way_cascade"],
            results["all_replicate"],
            results["rccis"],
        )
        output = len(rccis)
        rows.append(
            [
                human_count(max_length),
                human_count(output),
                human_seconds(cascade.metrics.simulated_seconds),
                human_seconds(allrep.metrics.simulated_seconds),
                human_seconds(rccis.metrics.simulated_seconds),
                human_count(cascade.metrics.shuffled_records),
                human_count(rccis.metrics.shuffled_records),
            ]
        )
    print(
        render_table(
            "",
            [
                "i_max", "output", "t 2-way Cd", "t All-Rep", "t RCCIS",
                "pairs Cd", "pairs RCCIS",
            ],
            rows,
            note="the paper's runs sit far right of this sweep "
            "(intermediate ~50x input), where the cascade is worst",
        )
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (small configuration, one round)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table1_small(benchmark, algorithm):
    data = make_data(800)
    cost = scaled_cost_model(SCALE)
    result = benchmark.pedantic(
        lambda: run_algorithm(
            Q1, data, algorithm, num_partitions=16, cost_model=cost
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result) > 0


if __name__ == "__main__":
    main()
