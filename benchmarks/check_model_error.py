"""Gate the cost model's prediction error against a committed baseline.

``repro explain`` prints analytic predictions (replication factor,
shuffled records, max reducer load, modelled seconds) for every plan;
after a run the executor reconciles them against the observed
:class:`repro.obs.MetricsRegistry` values.  The *relative errors* of
those predictions are deterministic: the workloads below are seeded and
the simulator is deterministic, so predicted and observed quantities —
and hence their quotient — must reproduce exactly on any host.  A drift
means either an algorithm's routing changed or a ``predict()`` formula
diverged from the implementation it models; both are regressions the
wall-clock gate can never see.

The gate runs one pinned workload per algorithm (all ten), extracts the
per-quantity relative errors from the run's reconciliation spans, and
compares them against the committed
``benchmarks/model_error_baseline.json``::

    python benchmarks/check_model_error.py             # gate (exit 1 on drift)
    python benchmarks/check_model_error.py --update    # rewrite the baseline

``--tolerance`` (or ``$REPRO_MODEL_ERROR_TOLERANCE``) loosens the bound;
the default 0.01 is slack for float formatting only, not for behaviour.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.dirname(__file__))

from common import run_algorithm  # noqa: E402

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.obs import TraceRecorder, reconciliation_from_spans  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

#: Environment variable overriding the default tolerance.
TOLERANCE_ENV = "REPRO_MODEL_ERROR_TOLERANCE"

#: Absolute slack on each relative error (they are already quotients).
DEFAULT_TOLERANCE = 0.01

#: Committed baseline, next to this script.
BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "model_error_baseline.json"
)

RELATION_ROWS = 300
NUM_PARTITIONS = 8

#: Pinned query per query class (triples for IntervalJoinQuery.parse).
QUERY_TWO_WAY = (("R1", "overlaps", "R2"),)
QUERY_COLOCATION = (("R1", "overlaps", "R2"), ("R2", "overlaps", "R3"))
QUERY_SEQUENCE = (("R1", "before", "R2"), ("R2", "before", "R3"))
QUERY_HYBRID = (("R1", "overlaps", "R2"), ("R2", "before", "R3"))

#: Every registered algorithm, each on a pinned query it handles.
WORKLOADS: Dict[str, tuple] = {
    "two_way": QUERY_TWO_WAY,
    "two_way_cascade": QUERY_HYBRID,
    "all_replicate": QUERY_COLOCATION,
    "rccis": QUERY_COLOCATION,
    "all_matrix": QUERY_SEQUENCE,
    "all_seq_matrix": QUERY_HYBRID,
    "pasm": QUERY_HYBRID,
    "gen_matrix": QUERY_HYBRID,
    "fcts": QUERY_HYBRID,
    "fstc": QUERY_HYBRID,
}


def make_data(relations) -> Dict[str, Any]:
    """The pinned dataset: seed = the relation's index, as in
    ``check_replication.py``."""
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=RELATION_ROWS,
                t_range=(0, 100_000),
                length_range=(1, 100),
                seed=index,
            ),
        )
        for index, name in enumerate(relations)
    }


def algorithm_errors(algorithm: str) -> Dict[str, float]:
    """Run one algorithm's pinned workload; per-quantity relative error."""
    conditions = WORKLOADS[algorithm]
    query = IntervalJoinQuery.parse(list(conditions))
    data = make_data(query.relations)
    observer = TraceRecorder()
    run_algorithm(
        query,
        data,
        algorithm,
        num_partitions=NUM_PARTITIONS,
        observer=observer,
    )
    reconciliations = reconciliation_from_spans(observer.spans)
    if len(reconciliations) != 1:
        raise RuntimeError(
            f"expected one reconciliation for {algorithm}, got "
            f"{len(reconciliations)}"
        )
    return {
        row.quantity: round(row.error, 6)
        for row in reconciliations[0].rows
    }


def pinned_errors() -> Dict[str, Dict[str, float]]:
    """``algorithm -> quantity -> relative error`` for all ten."""
    return {
        algorithm: algorithm_errors(algorithm) for algorithm in WORKLOADS
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when the cost model's prediction errors drift "
        "from the committed baseline."
    )
    parser.add_argument(
        "--baseline", default=BASELINE_PATH,
        help=f"baseline JSON path (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help=f"allowed drift per relative error (default "
        f"{DEFAULT_TOLERANCE}, or ${TOLERANCE_ENV})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from a fresh run instead of gating",
    )
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(
            os.environ.get(TOLERANCE_ENV, str(DEFAULT_TOLERANCE))
        )
    if tolerance < 0:
        parser.error("--tolerance must be non-negative")

    observed = pinned_errors()

    if args.update:
        document: Dict[str, Any] = {
            "workload": (
                f"one pinned query per algorithm, n={RELATION_ROWS} per "
                f"relation (seed = relation index), "
                f"{NUM_PARTITIONS} partitions"
            ),
            "errors": observed,
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(
            f"FAILED: baseline {args.baseline} not found "
            f"(run with --update to create it)"
        )
        return 1
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)

    expected: Dict[str, Dict[str, float]] = baseline.get("errors", {})
    print(
        f"cost-model error gate — all {len(WORKLOADS)} algorithms, "
        f"tolerance {tolerance}"
    )
    failures = 0
    for algorithm in sorted(set(expected) | set(observed)):
        want_all = expected.get(algorithm)
        got_all = observed.get(algorithm)
        if want_all is None or got_all is None:
            print(
                f"  [FAIL] {algorithm}: baseline="
                f"{'present' if want_all else 'absent'} fresh="
                f"{'present' if got_all else 'absent'} (algorithm set "
                "changed; regenerate the baseline)"
            )
            failures += 1
            continue
        for quantity in sorted(set(want_all) | set(got_all)):
            want = want_all.get(quantity)
            got = got_all.get(quantity)
            if want is None or got is None:
                print(
                    f"  [FAIL] {algorithm}.{quantity}: baseline={want} "
                    f"fresh={got} (quantity set changed)"
                )
                failures += 1
                continue
            ok = abs(got - want) <= tolerance
            status = "ok  " if ok else "FAIL"
            print(
                f"  [{status}] {algorithm}.{quantity}: baseline={want:+.6f} "
                f"fresh={got:+.6f} (allowed +/-{tolerance})"
            )
            failures += 0 if ok else 1
    if failures:
        print(f"FAILED: {failures} prediction error(s) drifted")
        return 1
    print("OK: all prediction errors within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
