"""Shuffle key-sort micro-benchmark — cached repr vs naive re-sorting.

The shuffle orders keys by ``repr`` (the only total order over mixed key
types).  The seed implementation called ``sorted(keys, key=repr)`` in
``shuffle()`` *and again* inside ``RoundRobinKeyPartitioner.prepare``,
recomputing every key's ``repr`` per consumer.  The current
implementation decorates once (:func:`repro.mapreduce.shuffle._sorted_by_repr`)
and hands the sorted ``(repr, key)`` pairs to the partitioner via
``prepare_sorted``.  This benchmark times both on 100k grid-coordinate
keys and writes ``BENCH_shuffle_sort.json``.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import emit_bench_json, print_section, render_table  # noqa: E402

from repro.mapreduce.shuffle import (  # noqa: E402
    RoundRobinKeyPartitioner,
    _sorted_by_repr,
)

N_KEYS = 100_000


def make_keys(n=N_KEYS):
    """Grid-coordinate tuple keys, the shape the matrix algorithms emit."""
    import random

    side = int(n ** 0.5) + 1
    keys = [(i // side, i % side) for i in range(n)]
    random.Random(0).shuffle(keys)
    return keys


def naive_double_sort(keys):
    """The seed behaviour: each consumer re-sorts with ``key=repr``."""
    ordered_for_groups = sorted(keys, key=repr)
    ordered_for_partitioner = sorted(keys, key=repr)
    table = {key: index for index, key in enumerate(ordered_for_partitioner)}
    return ordered_for_groups, table


def cached_single_sort(keys):
    """The current behaviour: one decorate-sort shared by both consumers."""
    ordered = _sorted_by_repr(keys)
    partitioner = RoundRobinKeyPartitioner()
    partitioner.prepare_sorted(ordered)
    return [key for _, key in ordered], partitioner._table


def _best_of(fn, keys, repeats=5):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn(keys)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def main() -> None:
    keys = make_keys()
    print_section(
        f"Shuffle key sort — naive double repr-sort vs cached decorate-sort "
        f"({len(keys):,} keys)"
    )
    # Both must order keys identically and build the identical table.
    naive_order, naive_table = naive_double_sort(keys)
    cached_order, cached_table = cached_single_sort(keys)
    assert naive_order == cached_order
    assert naive_table == cached_table

    naive_s = _best_of(naive_double_sort, keys)
    cached_s = _best_of(cached_single_sort, keys)
    speedup = naive_s / cached_s
    print(
        render_table(
            "best of 5",
            ["variant", "seconds", "speedup"],
            [
                ["naive double sort", f"{naive_s:.4f}", "1.00"],
                ["cached decorate-sort", f"{cached_s:.4f}", f"{speedup:.2f}"],
            ],
        )
    )
    emit_bench_json(
        "shuffle_sort",
        {
            "num_keys": len(keys),
            "naive_double_sort_seconds": round(naive_s, 6),
            "cached_decorate_sort_seconds": round(cached_s, 6),
            "speedup": round(speedup, 3),
        },
    )


# ---------------------------------------------------------------- pytest
@pytest.mark.parametrize(
    "variant,fn",
    [("naive", naive_double_sort), ("cached", cached_single_sort)],
)
def test_shuffle_sort(benchmark, variant, fn):
    keys = make_keys(20_000)
    benchmark.pedantic(fn, args=(keys,), rounds=1, iterations=1)


if __name__ == "__main__":
    main()
