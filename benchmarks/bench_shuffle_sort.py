"""Shuffle micro-benchmarks — key-sort caching and the columnar plane.

Two comparisons share this file:

* **Key sort** — the shuffle orders keys by ``repr`` (the only total
  order over mixed key types).  The seed implementation called
  ``sorted(keys, key=repr)`` in ``shuffle()`` *and again* inside
  ``RoundRobinKeyPartitioner.prepare``, recomputing every key's ``repr``
  per consumer.  The current implementation decorates once
  (:func:`repro.mapreduce.shuffle._sorted_by_repr`) and hands the sorted
  ``(repr, key)`` pairs to the partitioner via ``prepare_sorted``.  A
  third arm orders the *same* key column the columnar plane's way — one
  stable argsort over packed int64 cell codes plus a vectorised
  round-robin task assignment, no per-key ``repr`` and no Python table.
  (Production ``columnar_shuffle`` still repr-sorts the **distinct**
  keys so routing stays bit-identical to the records plane; that costs
  per *distinct key*, while this arm shows what ordering costs per
  *column element* in each representation.)
* **Data plane** — the records plane's :func:`shuffle` groups a pair
  stream tuple-at-a-time (one dict insert + list append per pair), while
  the columnar plane's :func:`columnar_shuffle` runs one stable argsort
  over the int64 key-code column and decodes only the *distinct* keys.
  Both arms are asserted to route identically before timing.

Each arm reports the best of :data:`REPEATS` interleaved rounds —
interleaving decorrelates the arms from host-load drift, which is what
made the committed ``speedup`` numbers wobble when each arm ran in its
own contiguous block.  Results go to ``BENCH_shuffle_sort.json``.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import emit_bench_json, print_section, render_table  # noqa: E402

from repro.mapreduce.shuffle import (  # noqa: E402
    RoundRobinKeyPartitioner,
    _sorted_by_repr,
    columnar_shuffle,
    shuffle,
)

N_KEYS = 100_000

#: Pair-stream shape for the data-plane arms: grid-cell keys over an
#: ``o``-a-side reducer grid (the matrix-algorithm shape, high pair
#: replication per cell), so the per-pair grouping cost — what the
#: columnar plane removes — dominates the per-key repr-sort cost that
#: both planes share.
N_PAIRS = 400_000
GRID_SIDE = 8
NUM_TASKS = 8

#: Timed rounds per arm; each arm keeps its best.  7 interleaved rounds
#: instead of 5 contiguous ones — see the module docstring.
REPEATS = 7


def make_keys(n=N_KEYS):
    """Grid-coordinate tuple keys, the shape the matrix algorithms emit."""
    import random

    side = int(n ** 0.5) + 1
    keys = [(i // side, i % side) for i in range(n)]
    random.Random(0).shuffle(keys)
    return keys


def naive_double_sort(keys):
    """The seed behaviour: each consumer re-sorts with ``key=repr``."""
    ordered_for_groups = sorted(keys, key=repr)
    ordered_for_partitioner = sorted(keys, key=repr)
    table = {key: index for index, key in enumerate(ordered_for_partitioner)}
    return ordered_for_groups, table


def cached_single_sort(keys):
    """The current behaviour: one decorate-sort shared by both consumers."""
    ordered = _sorted_by_repr(keys)
    partitioner = RoundRobinKeyPartitioner()
    partitioner.prepare_sorted(ordered)
    return [key for _, key in ordered], partitioner._table


def make_codes(keys):
    """The same keys as the columnar plane carries them: packed int64."""
    import numpy as np

    return np.asarray(
        [(i << 32) | j for i, j in keys], dtype=np.int64
    )


def columnar_argsort_sort(codes):
    """The columnar plane's ordering of the same key column.

    One stable argsort over the packed codes plus a vectorised
    round-robin task assignment over the resulting ranks — the columnar
    analogue of "order the keys and give each one a reduce task".
    """
    import numpy as np

    order = np.argsort(codes, kind="stable")
    tasks = np.arange(len(order), dtype=np.int64) % NUM_TASKS
    return order, tasks


def make_pair_stream(n_pairs=N_PAIRS, grid_side=GRID_SIDE):
    """One pair stream in both plane representations.

    Returns ``(pairs, batch)``: the records plane's ``(key, value)`` list
    — native ``(i, j)`` grid-cell tuple keys — and the equivalent
    :class:`~repro.columnar.batch.ColumnarPairs` batch of packed int64
    cell codes.  Values are the pair's gid, so routing parity between
    the arms is checkable by direct comparison against each group's gid
    column.
    """
    import numpy as np

    from repro.columnar.batch import ColumnarPairs, MapBlock
    from repro.columnar.codec import KEY_CODECS

    rng = np.random.default_rng(2014)
    rows = rng.integers(0, grid_side, size=n_pairs, dtype=np.int64)
    cols = rng.integers(0, grid_side, size=n_pairs, dtype=np.int64)
    key_codes = (rows << np.int64(32)) | cols
    starts = rng.uniform(0.0, 100_000.0, size=n_pairs)
    ends = starts + rng.uniform(1.0, 100.0, size=n_pairs)
    row_idx = np.arange(n_pairs, dtype=np.int64)

    cell_keys = list(zip(rows.tolist(), cols.tolist()))
    pairs = list(zip(cell_keys, row_idx.tolist()))
    batch = ColumnarPairs(KEY_CODECS["cell"])
    batch.append_block(
        MapBlock.single_tag(key_codes, row_idx, "R1"), 0, starts, ends
    )
    batch.columns()  # finalise outside the timed region
    return pairs, batch


def records_shuffle(stream):
    """The records plane: tuple-at-a-time grouping of the pair stream."""
    pairs, _ = stream
    return shuffle(pairs, NUM_TASKS, RoundRobinKeyPartitioner())


def columnar_plane_shuffle(stream):
    """The columnar plane: one stable argsort over the key-code column."""
    _, batch = stream
    return columnar_shuffle(batch, NUM_TASKS, RoundRobinKeyPartitioner())


def _assert_planes_route_identically(stream):
    """Same keys, same order, same per-group pair stream on every task."""
    records_tasks = records_shuffle(stream)
    columnar_tasks = columnar_plane_shuffle(stream)
    assert len(records_tasks) == len(columnar_tasks)
    for r_groups, c_groups in zip(records_tasks, columnar_tasks):
        assert [key for key, _ in r_groups] == [key for key, _ in c_groups]
        for (_, r_values), (_, c_values) in zip(r_groups, c_groups):
            assert r_values == c_values.gids.tolist()


def _interleaved_best_of(fns, argument, repeats=REPEATS):
    """Best wall-clock per function over ``repeats`` interleaved rounds.

    Round-robin between the arms inside each round, so slow drift in host
    load (the usual source of wobbly speedup ratios) hits every arm
    roughly equally instead of biasing whichever ran last.
    """
    bests = [None] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn(argument)
            elapsed = time.perf_counter() - start
            if bests[index] is None or elapsed < bests[index]:
                bests[index] = elapsed
    return bests


def main() -> None:
    keys = make_keys()
    print_section(
        f"Shuffle key sort — naive double repr-sort vs cached decorate-sort "
        f"({len(keys):,} keys)"
    )
    # Both must order keys identically and build the identical table.
    naive_order, naive_table = naive_double_sort(keys)
    cached_order, cached_table = cached_single_sort(keys)
    assert naive_order == cached_order
    assert naive_table == cached_table

    codes = make_codes(keys)
    # The columnar arm must see every key exactly once, like the others.
    order, _ = columnar_argsort_sort(codes)
    assert sorted(keys) == [keys[i] for i in order]

    naive_s, cached_s = _interleaved_best_of(
        [naive_double_sort, cached_single_sort], keys
    )
    (argsort_s,) = _interleaved_best_of([columnar_argsort_sort], codes)
    speedup = naive_s / cached_s
    argsort_speedup = naive_s / argsort_s
    print(
        render_table(
            f"best of {REPEATS} (interleaved)",
            ["variant", "seconds", "speedup"],
            [
                ["naive double sort", f"{naive_s:.4f}", "1.00"],
                ["cached decorate-sort", f"{cached_s:.4f}", f"{speedup:.2f}"],
                [
                    "columnar argsort",
                    f"{argsort_s:.4f}",
                    f"{argsort_speedup:.2f}",
                ],
            ],
        )
    )

    stream = make_pair_stream()
    print_section(
        f"Shuffle data plane — records grouping vs columnar argsort "
        f"({N_PAIRS:,} pairs, {GRID_SIDE}x{GRID_SIDE} grid cells, "
        f"{NUM_TASKS} tasks)"
    )
    _assert_planes_route_identically(stream)
    records_s, columnar_s = _interleaved_best_of(
        [records_shuffle, columnar_plane_shuffle], stream
    )
    columnar_speedup = records_s / columnar_s
    print(
        render_table(
            f"best of {REPEATS} (interleaved)",
            ["plane", "seconds", "speedup"],
            [
                ["records (tuple-at-a-time)", f"{records_s:.4f}", "1.00"],
                [
                    "columnar (argsort)",
                    f"{columnar_s:.4f}",
                    f"{columnar_speedup:.2f}",
                ],
            ],
        )
    )

    emit_bench_json(
        "shuffle_sort",
        {
            "num_keys": len(keys),
            "naive_double_sort_seconds": round(naive_s, 6),
            "cached_decorate_sort_seconds": round(cached_s, 6),
            "columnar_argsort_seconds": round(argsort_s, 6),
            "speedup": round(speedup, 3),
            "argsort_speedup": round(argsort_speedup, 3),
            "num_pairs": N_PAIRS,
            "grid_side": GRID_SIDE,
            "records_shuffle_seconds": round(records_s, 6),
            "columnar_shuffle_seconds": round(columnar_s, 6),
            "columnar_speedup": round(columnar_speedup, 3),
        },
    )


# ---------------------------------------------------------------- pytest
@pytest.mark.parametrize(
    "variant,fn",
    [("naive", naive_double_sort), ("cached", cached_single_sort)],
)
def test_shuffle_sort(benchmark, variant, fn):
    keys = make_keys(20_000)
    benchmark.pedantic(fn, args=(keys,), rounds=1, iterations=1)


@pytest.mark.parametrize(
    "plane,fn",
    [("records", records_shuffle), ("columnar", columnar_plane_shuffle)],
)
def test_shuffle_data_plane(benchmark, plane, fn):
    stream = make_pair_stream(40_000, 4)
    _assert_planes_route_identically(stream)
    benchmark.pedantic(fn, args=(stream,), rounds=1, iterations=1)


if __name__ == "__main__":
    main()
