"""Figure 4 — load balancing: All-Rep vs All-Matrix on a 2-way sequence
join.

The paper's figure shows, for ``R1 before R2``, that All-Replicate piles
ever more load onto the right-most reducers (the last one receives all of
R1) while All-Matrix's 2-dimensional consistent-cell grid spreads the
cross-product evenly.  This benchmark reproduces the figure as numbers:
the per-reducer load distribution of each algorithm, its max/mean
imbalance, and Jain's fairness index.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    human_count,
    print_section,
    render_table,
    run_algorithm,
    scaled_cost_model,
)

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.stats import load_balance  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

SCALE = 500.0
QUERY = IntervalJoinQuery.parse([("R1", "before", "R2")])


def make_data(n: int = 600):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=n, t_range=(0, 1_000), length_range=(1, 100), seed=seed
            ),
        )
        for seed, name in enumerate(("R1", "R2"))
    }


def main() -> None:
    print_section(
        "Figure 4 — per-reducer load, All-Rep (6 partitions) vs "
        "All-Matrix (3x3 grid, 6 consistent cells)"
    )
    data = make_data()
    cost = scaled_cost_model(SCALE)

    allrep = run_algorithm(
        QUERY, data, "all_replicate", num_partitions=6, cost_model=cost
    )
    matrix = run_algorithm(
        QUERY, data, "all_matrix", num_partitions=6,
        cost_model=cost, grid_parts=3,
    )
    assert allrep.same_output(matrix)

    rows = []
    rep_loads = sorted(allrep.metrics.reducer_loads.items(), key=lambda kv: repr(kv[0]))
    mat_loads = sorted(matrix.metrics.reducer_loads.items(), key=lambda kv: repr(kv[0]))
    for index in range(max(len(rep_loads), len(mat_loads))):
        rep = rep_loads[index] if index < len(rep_loads) else ("-", "")
        mat = mat_loads[index] if index < len(mat_loads) else ("-", "")
        rows.append([rep[0], rep[1], str(mat[0]), mat[1]])
    print(
        render_table(
            "",
            ["All-Rep reducer", "load", "All-Matrix cell", "load"],
            rows,
        )
    )

    rep_summary = load_balance(allrep.metrics.reducer_loads)
    mat_summary = load_balance(matrix.metrics.reducer_loads)
    print(
        render_table(
            "\nload-balance summary",
            ["algorithm", "reducers", "max", "mean", "max/mean", "Jain"],
            [
                [
                    "all_replicate",
                    rep_summary.reducers,
                    rep_summary.max_load,
                    f"{rep_summary.mean_load:.0f}",
                    f"{rep_summary.imbalance:.2f}",
                    f"{rep_summary.fairness:.3f}",
                ],
                [
                    "all_matrix",
                    mat_summary.reducers,
                    mat_summary.max_load,
                    f"{mat_summary.mean_load:.0f}",
                    f"{mat_summary.imbalance:.2f}",
                    f"{mat_summary.fairness:.3f}",
                ],
            ],
            note="paper's figure: All-Rep load climbs toward the "
            "right-most reducer; All-Matrix cells are near-uniform",
        )
    )


def test_fig4_all_matrix_balances_better():
    data = make_data(300)
    cost = scaled_cost_model(SCALE)
    allrep = run_algorithm(
        QUERY, data, "all_replicate", num_partitions=6, cost_model=cost
    )
    matrix = run_algorithm(
        QUERY, data, "all_matrix", num_partitions=6,
        cost_model=cost, grid_parts=3,
    )
    assert allrep.same_output(matrix)
    rep = load_balance(allrep.metrics.reducer_loads)
    mat = load_balance(matrix.metrics.reducer_loads)
    assert mat.fairness > rep.fairness
    assert mat.imbalance < rep.imbalance


@pytest.mark.parametrize("algorithm,grid", [("all_replicate", None), ("all_matrix", 3)])
def test_fig4_bench(benchmark, algorithm, grid):
    data = make_data(300)
    cost = scaled_cost_model(SCALE)
    result = benchmark.pedantic(
        lambda: run_algorithm(
            QUERY, data, algorithm, num_partitions=6,
            cost_model=cost, grid_parts=grid,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result) > 0


if __name__ == "__main__":
    main()
