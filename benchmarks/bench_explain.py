"""EXPLAIN / reconciliation overhead micro-benchmark.

``repro explain`` renders a physical plan with analytic cost-model
predictions before a run, and the executor reconciles those predictions
against observed metrics after it.  Both are supposed to be *free*
relative to the run they describe — this benchmark pins that claim on
the standard workload (the hybrid query of ``check_replication.py`` at
n=600 per relation): it times one observed run, then the EXPLAIN
rendering and the span-based reconciliation rebuild (median of
``REPEATS`` — they are sub-millisecond, single timings would be pure
jitter), asserts their combined overhead stays under 5 % of the run's
wall clock, and writes ``BENCH_explain.json``.
"""

from __future__ import annotations

import os
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    emit_bench_json,
    print_section,
    render_table,
    run_algorithm,
)

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.obs import (  # noqa: E402
    TraceRecorder,
    explain_query,
    reconciliation_from_spans,
)
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

#: Combined EXPLAIN + reconciliation budget, as a fraction of run wall.
MAX_OVERHEAD_FRACTION = 0.05

REPEATS = 9
RELATION_ROWS = 600
NUM_PARTITIONS = 8

QUERY = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "before", "R3")]
)


def make_data(rows=RELATION_ROWS):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=rows,
                t_range=(0, 100_000),
                length_range=(1, 100),
                seed=index,
            ),
        )
        for index, name in enumerate(("R1", "R2", "R3"))
    }


def _median_of(fn, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def main() -> None:
    data = make_data()
    print_section(
        f"EXPLAIN & reconciliation overhead — {QUERY!s}, "
        f"n={RELATION_ROWS} per relation, {NUM_PARTITIONS} partitions"
    )

    observer = TraceRecorder()
    run_start = time.perf_counter()
    result = run_algorithm(
        QUERY,
        data,
        "all_seq_matrix",
        num_partitions=NUM_PARTITIONS,
        observer=observer,
    )
    run_s = time.perf_counter() - run_start

    explain_s = _median_of(
        lambda: explain_query(
            QUERY, data, num_partitions=NUM_PARTITIONS
        ).render()
    )
    reconcile_s = _median_of(
        lambda: [
            r.render() for r in reconciliation_from_spans(observer.spans)
        ]
    )
    overhead = (explain_s + reconcile_s) / run_s

    print(
        render_table(
            f"median of {REPEATS} (run: single timing)",
            ["stage", "seconds", "fraction of run"],
            [
                ["observed run", f"{run_s:.4f}", "1.0000"],
                ["explain (render)", f"{explain_s:.6f}",
                 f"{explain_s / run_s:.6f}"],
                ["reconcile (from spans)", f"{reconcile_s:.6f}",
                 f"{reconcile_s / run_s:.6f}"],
                ["combined overhead", f"{explain_s + reconcile_s:.6f}",
                 f"{overhead:.6f}"],
            ],
        )
    )
    assert overhead < MAX_OVERHEAD_FRACTION, (
        f"EXPLAIN + reconciliation cost {overhead:.2%} of the run — over "
        f"the {MAX_OVERHEAD_FRACTION:.0%} budget"
    )
    print(
        f"overhead {overhead:.4%} < {MAX_OVERHEAD_FRACTION:.0%} budget: ok"
    )
    emit_bench_json(
        "explain",
        {
            "tuples": len(result),
            "run_seconds": round(run_s, 6),
            "explain_seconds": round(explain_s, 6),
            "reconcile_seconds": round(reconcile_s, 6),
            "overhead_fraction": round(overhead, 6),
            "note": (
                "explain/reconcile are medians of "
                f"{REPEATS}; overhead_fraction is their sum over the "
                "run's wall clock"
            ),
        },
        metrics=observer.metrics,
    )


# ---------------------------------------------------------------- pytest
def test_explain_overhead(benchmark):
    data = make_data(120)
    benchmark.pedantic(
        lambda: explain_query(QUERY, data, num_partitions=4).render(),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    main()
