"""Figure 5 — multi-way sequence join performance.

Paper setup: Q2 = R1 before R2 and R2 before R3.
(a) synthetic data, temporal range 0-1000, max interval length 100,
    uniform dS/dI, relation sizes swept; All-Matrix with a 6^3 grid (the
    paper counts 55 consistent reducers; the exact non-decreasing-triple
    count is 56), 2-way Cd with 11^2 grids per step (66 consistent cells)
    and All-Rep with 64 reducers — partitionings chosen so consistent
    reducer counts are comparable, as in the paper.
(b) the same query on packet-train trace P04, sampled in steps.

Sequence joins produce a constant fraction of the cross product, so the
output is cubic in the relation size: the sweep uses sizes where the full
output is still materialisable in-process (the paper's reported sizes
could not have materialised theirs; see EXPERIMENTS.md).  Expected shape:
All-Matrix fastest, All-Rep slowest (straggler-bound), 2-way Cd between.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    human_count,
    human_seconds,
    print_section,
    render_table,
    run_algorithm,
    scaled_cost_model,
)

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.core.schema import Relation  # noqa: E402
from repro.stats import load_balance  # noqa: E402
from repro.workloads import (  # noqa: E402
    TRACE_PROFILES,
    SyntheticConfig,
    build_packet_trains,
    generate_relation,
    generate_trace,
)

SCALE = 2_000.0
Q2 = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)
SETUPS = (
    ("all_matrix", dict(num_partitions=6, grid_parts=6)),       # 56 cells
    ("two_way_cascade", dict(num_partitions=64, grid_parts=11)),  # 66 cells
    ("all_replicate", dict(num_partitions=64, grid_parts=None)),
)


def synthetic_data(n: int):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=n, t_range=(0, 1_000), length_range=(1, 100), seed=seed
            ),
        )
        for seed, name in enumerate(("R1", "R2", "R3"))
    }


def trace_data(n: int):
    import random

    packets = generate_trace(TRACE_PROFILES["P04"], seed=7)
    trains = build_packet_trains(packets, gap_threshold=0.5)
    sample = random.Random(13).sample(trains, min(3 * n, len(trains)))
    third = len(sample) // 3
    return {
        "R1": Relation.of_intervals("R1", sample[:third]),
        "R2": Relation.of_intervals("R2", sample[third : 2 * third]),
        "R3": Relation.of_intervals("R3", sample[2 * third : 3 * third]),
    }


def run_setups(data, cost):
    results = {}
    for name, kwargs in SETUPS:
        results[name] = run_algorithm(
            Q2, data, name, cost_model=cost, **kwargs
        )
    outputs = {len(r) for r in results.values()}
    assert len(outputs) == 1, "algorithms disagreed"
    return results


def _table(title, sweep, data_of, note):
    print_section(title)
    cost = scaled_cost_model(SCALE)
    rows = []
    for n in sweep:
        results = run_setups(data_of(n), cost)
        matrix = results["all_matrix"]
        cascade = results["two_way_cascade"]
        allrep = results["all_replicate"]
        rep_balance = load_balance(allrep.metrics.reducer_loads)
        rows.append(
            [
                human_count(n),
                human_count(len(matrix)),
                human_seconds(matrix.metrics.simulated_seconds),
                human_seconds(cascade.metrics.simulated_seconds),
                human_seconds(allrep.metrics.simulated_seconds),
                f"{rep_balance.imbalance:.1f}",
            ]
        )
    print(
        render_table(
            "",
            [
                "nI", "output", "t All-Matrix", "t 2-way Cd", "t All-Rep",
                "All-Rep max/mean",
            ],
            rows,
            note=note,
        )
    )


def main() -> None:
    _table(
        "Figure 5(a) — Q2 = R1 bf R2 and R2 bf R3 on synthetic data "
        "(grids: All-Matrix 6^3 -> 56 cells, 2-way Cd 11^2 -> 66, "
        "All-Rep 64 reducers)",
        (60, 90, 120, 150),
        synthetic_data,
        "paper: All-Matrix comfortably beats both; All-Rep's lagging "
        "reducers dominate its runtime",
    )
    _table(
        "Figure 5(b) — Q2 on packet-train trace P04, trains sampled in "
        "steps",
        (40, 60, 80, 100),
        trace_data,
        "same shape as 5(a) on real-life-like data",
    )


@pytest.mark.parametrize("algorithm,kwargs", SETUPS, ids=[s[0] for s in SETUPS])
def test_fig5_bench(benchmark, algorithm, kwargs):
    data = synthetic_data(40)
    cost = scaled_cost_model(SCALE)
    result = benchmark.pedantic(
        lambda: run_algorithm(Q2, data, algorithm, cost_model=cost, **kwargs),
        rounds=1,
        iterations=1,
    )
    assert len(result) > 0


if __name__ == "__main__":
    main()
