"""Table 4 — Gen-Matrix on the general query Q5.

Paper setup: Q5 = R1.I before R2.I and R1.I overlaps R3.I and
R1.A = R3.A and R2.B = R3.B; interval attribute I over (0, 100K) with
lengths (1, 1000); real-valued attributes A, B uniform; sizes
(100K, 10K, 100K) grown in 10% steps; four grid dimensions with o = 5 and
one enforced order -> 375 of 625 consistent reducers; the paper reports
time growing linearly with size.

Here sizes are the paper's / 100 and the cost model is scaled to match.
The 375/625 consistent-reducer count is reproduced *exactly* (it is a
pure function of the query and grid, independent of scale).
"""

from __future__ import annotations

import os
import random
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    human_count,
    human_seconds,
    print_section,
    render_table,
    run_algorithm,
    scaled_cost_model,
)

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.core.schema import Relation, Row  # noqa: E402
from repro.intervals.interval import Interval  # noqa: E402

SCALE = 1_000.0
Q5 = IntervalJoinQuery.parse(
    [
        ("R1.I", "before", "R2.I"),
        ("R1.I", "overlaps", "R3.I"),
        ("R1.A", "=", "R3.A"),
        ("R2.B", "=", "R3.B"),
    ]
)


def make_relation(name: str, n: int, attrs, seed: int) -> Relation:
    rng = random.Random(seed)
    rows = []
    for rid in range(n):
        start = rng.uniform(0, 100_000)
        values = {"I": Interval(start, start + rng.uniform(1, 1_000))}
        for attr in attrs:
            values[attr] = float(rng.randint(0, 9))
        rows.append(Row.make(rid, values))
    return Relation(name, rows)


def make_data(n1: int):
    n2 = n1 // 10
    return {
        "R1": make_relation("R1", n1, ["A"], 1),
        "R2": make_relation("R2", n2, ["B"], 2),
        "R3": make_relation("R3", n1, ["A", "B"], 3),
    }


def main() -> None:
    print_section(
        "Table 4 — Gen-Matrix on Q5 (4 dims, o=5, 375/625 consistent "
        "reducers; sizes = paper's / 100)"
    )
    cost = scaled_cost_model(SCALE)
    rows = []
    for n1 in (1_000, 1_100, 1_200, 1_300, 1_400):
        data = make_data(n1)
        result = run_algorithm(
            Q5, data, "gen_matrix", num_partitions=5,
            cost_model=cost, grid_parts=5,
        )
        assert result.metrics.consistent_reducers == 375
        assert result.metrics.total_reducers == 625
        rows.append(
            [
                f"{human_count(n1)}, {human_count(n1 // 10)}, {human_count(n1)}",
                human_seconds(result.metrics.simulated_seconds),
                human_count(result.metrics.shuffled_records),
                human_count(len(result)),
            ]
        )
    print(
        render_table(
            "",
            ["nI's", "time", "pairs shuffled", "output"],
            rows,
            note="paper: 11:34 -> 22:19, growing roughly linearly; "
            "375/625 consistent reducers reproduced exactly",
        )
    )


def test_table4_consistent_reducers():
    data = make_data(400)
    result = run_algorithm(
        Q5, data, "gen_matrix", num_partitions=5,
        cost_model=scaled_cost_model(SCALE), grid_parts=5,
    )
    assert result.metrics.consistent_reducers == 375
    assert result.metrics.total_reducers == 625


def test_table4_bench(benchmark):
    data = make_data(500)
    cost = scaled_cost_model(SCALE)
    result = benchmark.pedantic(
        lambda: run_algorithm(
            Q5, data, "gen_matrix", num_partitions=5,
            cost_model=cost, grid_parts=5,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result) >= 0


if __name__ == "__main__":
    main()
