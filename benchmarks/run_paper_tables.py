#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs each benchmark module's ``main()`` in sequence and prints the
paper-style tables.  Typical use::

    python benchmarks/run_paper_tables.py            # everything
    python benchmarks/run_paper_tables.py table1 fig4  # a subset

The full run takes a few minutes; EXPERIMENTS.md archives a reference
transcript together with the paper-vs-measured discussion.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import bench_ablation_partitions  # noqa: E402
import bench_ablation_shares  # noqa: E402
import bench_ablation_skew  # noqa: E402
import bench_executors  # noqa: E402
import bench_shuffle_sort  # noqa: E402
import bench_fig4_load_balance  # noqa: E402
import bench_fig5_sequence  # noqa: E402
import bench_table1_colocation  # noqa: E402
import bench_table2_packet_trains  # noqa: E402
import bench_table3_hybrid  # noqa: E402
import bench_table4_genmatrix  # noqa: E402

EXPERIMENTS = {
    "table1": bench_table1_colocation.main,
    "table2": bench_table2_packet_trains.main,
    "fig4": bench_fig4_load_balance.main,
    "fig5": bench_fig5_sequence.main,
    "table3": bench_table3_hybrid.main,
    "table4": bench_table4_genmatrix.main,
    "ablation_partitions": bench_ablation_partitions.main,
    "ablation_shares": bench_ablation_shares.main,
    "ablation_skew": bench_ablation_skew.main,
    "executors": bench_executors.main,
    "shuffle_sort": bench_shuffle_sort.main,
}


def main(argv) -> int:
    chosen = argv[1:] or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}")
        return 2
    started = time.time()
    for name in chosen:
        t0 = time.time()
        EXPERIMENTS[name]()
        print(f"\n[{name} regenerated in {time.time() - t0:.1f}s wall]")
    print(f"\nall done in {time.time() - started:.1f}s wall")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
