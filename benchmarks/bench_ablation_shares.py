"""Ablation A3 — Afrati-style share allocation vs uniform grids.

The paper sizes every grid dimension identically; its Section 9.2 notes
that Afrati & Ullman's share allocation could improve Gen-Matrix.  This
ablation quantifies that: on the skewed-size hybrid query Q4 (R1 three
orders of magnitude larger than its partners in the paper's setup), the
tuner's non-uniform shares cut shipped pairs versus a uniform grid with
the same cell budget, at equal output.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    human_count,
    human_seconds,
    print_section,
    render_table,
    scaled_cost_model,
)

from repro.core.planner import ALGORITHMS  # noqa: E402
from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.core.tuning import recommend_shares  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

SCALE = 2_000.0
Q4 = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R1", "overlaps", "R3")]
)


def make_data(n1: int):
    t_range = (0, 100_000)
    sizes = {"R1": n1, "R2": max(10, n1 // 50), "R3": max(10, n1 // 25)}
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=sizes[name], t_range=t_range, length_range=(1, 800),
                seed=seed,
            ),
        )
        for seed, name in enumerate(("R1", "R2", "R3"))
    }


def run_pair(n1: int, cell_budget: int = 36):
    data = make_data(n1)
    cost = scaled_cost_model(SCALE)
    recommendation = recommend_shares(Q4, data, cell_budget=cell_budget)
    uniform_o = max(2, int(cell_budget ** 0.5))
    tuned = ALGORITHMS["all_seq_matrix"](
        grid_parts=recommendation.shares
    ).run(Q4, data, num_partitions=uniform_o, cost_model=cost)
    uniform = ALGORITHMS["all_seq_matrix"](grid_parts=uniform_o).run(
        Q4, data, num_partitions=uniform_o, cost_model=cost
    )
    assert tuned.same_output(uniform)
    return recommendation, tuned, uniform


def main() -> None:
    print_section(
        "Ablation A3 — Afrati shares vs uniform grid "
        "(Q4, cell budget 36)"
    )
    rows = []
    for n1 in (1_000, 2_000, 4_000):
        recommendation, tuned, uniform = run_pair(n1)
        rows.append(
            [
                human_count(n1),
                "x".join(str(s) for s in recommendation.shares),
                human_count(tuned.metrics.shuffled_records),
                human_count(uniform.metrics.shuffled_records),
                human_seconds(tuned.metrics.simulated_seconds),
                human_seconds(uniform.metrics.simulated_seconds),
                human_count(len(tuned)),
            ]
        )
    print(
        render_table(
            "",
            [
                "nI(R1)", "shares", "pairs tuned", "pairs uniform",
                "t tuned", "t uniform", "output",
            ],
            rows,
            note="the tuner gives the heavy dimension (R1+R3) most of "
            "the budget; identical output either way",
        )
    )


def test_shares_reduce_communication():
    recommendation, tuned, uniform = run_pair(1_000)
    assert tuned.metrics.shuffled_records < uniform.metrics.shuffled_records


@pytest.mark.parametrize("mode", ["tuned", "uniform"])
def test_ablation_shares_bench(benchmark, mode):
    data = make_data(800)
    cost = scaled_cost_model(SCALE)
    if mode == "tuned":
        shares = recommend_shares(Q4, data, cell_budget=36).shares
        algorithm = ALGORITHMS["all_seq_matrix"](grid_parts=shares)
    else:
        algorithm = ALGORITHMS["all_seq_matrix"](grid_parts=6)
    result = benchmark.pedantic(
        lambda: algorithm.run(Q4, data, num_partitions=6, cost_model=cost),
        rounds=1,
        iterations=1,
    )
    assert len(result) >= 0


if __name__ == "__main__":
    main()
