"""Live telemetry overhead gate (< 5 % of the observed run).

Live monitoring's contract is that it is cheap enough to leave on for
any run worth watching: per-task heartbeats are throttled at the source
(one in-task progress beat per ``heartbeat_interval``), the watchdog is
one daemon thread polling coarse state under a lock, and the status
endpoint serves scrapes from the same snapshot without touching the
task path.  This benchmark pins that contract:

* times a two-way join observed-but-unmonitored, observed + live
  telemetry, and observed + live + a running status endpoint (scraped
  once mid-measurement is deliberately *not* done — scrape cost is the
  scraper's, not the run's; the arm pins the cost of merely serving),
  best of ``REPEATS`` each, interleaved so drift hits all arms equally,
* asserts both live arms stay under ``MAX_OVERHEAD_FRACTION``,
* asserts live output is bit-identical to the unmonitored run — the
  passivity invariant, here at benchmark scale, and
* records the heartbeat count and final progress so a regression that
  silently stopped beating is visible in the artifact.

Writes ``BENCH_live.json`` with the measured overhead fractions; the
deterministic metric fingerprint rides along (the ``live`` group itself
is allowlisted out by ``check_regression.py`` — beat counts are
time-throttled and host-dependent at this workload size).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import emit_bench_json, print_section, render_table  # noqa: E402

from repro.core.executor import execute  # noqa: E402
from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.obs import LiveConfig, StatusServer, TraceRecorder  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

#: Each live arm's wall clock may exceed the observed-unmonitored run's
#: by at most this fraction (the < 5 % budget, measured best-of).
MAX_OVERHEAD_FRACTION = 0.05

REPEATS = 5
RELATION_ROWS = 8_000
NUM_PARTITIONS = 8

QUERY = IntervalJoinQuery.parse([("R1", "overlaps", "R2")])


def make_data(rows=RELATION_ROWS):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=rows,
                t_range=(0, 100_000),
                length_range=(1, 100),
                seed=index,
            ),
        )
        for index, name in enumerate(("R1", "R2"))
    }


def _run(data, live=False, serve=False):
    observer = TraceRecorder(live=LiveConfig() if live else False)
    server = None
    if serve:
        server = StatusServer(observer, port=0)
        server.start()
    start = time.perf_counter()
    result = execute(
        QUERY,
        data,
        algorithm="two_way",
        num_partitions=NUM_PARTITIONS,
        executor="serial",
        workers=2,
        observer=observer,
    )
    elapsed = time.perf_counter() - start
    observer.close()
    if server is not None:
        server.close()
    return result, elapsed, observer


def measure_overhead(data, repeats=REPEATS):
    """Best-of wall clock of the three arms, interleaved."""
    best = {"observed": None, "live": None, "served": None}
    ids = {}
    observer = None
    for _ in range(repeats):
        for arm, kwargs in (
            ("observed", {}),
            ("live", dict(live=True)),
            ("served", dict(live=True, serve=True)),
        ):
            result, elapsed, obs = _run(data, **kwargs)
            best[arm] = (
                elapsed if best[arm] is None else min(best[arm], elapsed)
            )
            ids[arm] = result.tuple_ids()
            if arm == "live":
                observer = obs
    assert ids["live"] == ids["observed"], "live output diverged"
    assert ids["served"] == ids["observed"], "served output diverged"
    return best, observer


def main() -> None:
    data = make_data()
    print_section(
        f"Live telemetry overhead — {QUERY!s}, "
        f"n={RELATION_ROWS} per relation, {NUM_PARTITIONS} partitions"
    )
    best, observer = measure_overhead(data)
    overheads = {
        arm: best[arm] / best["observed"] - 1.0
        for arm in ("live", "served")
    }
    print(
        render_table(
            f"best of {REPEATS} (serial executor)",
            ["arm", "seconds", "vs observed"],
            [
                ["observed (no live)", f"{best['observed']:.4f}", "1.0000"],
                ["observed + live", f"{best['live']:.4f}",
                 f"{best['live'] / best['observed']:.4f}"],
                ["observed + live + endpoint", f"{best['served']:.4f}",
                 f"{best['served'] / best['observed']:.4f}"],
            ],
        )
    )
    for arm, overhead in overheads.items():
        assert overhead < MAX_OVERHEAD_FRACTION, (
            f"{arm} arm costs {overhead:.2%} of the run — over the "
            f"{MAX_OVERHEAD_FRACTION:.0%} budget"
        )
        print(
            f"{arm} overhead {overhead:+.4%} < "
            f"{MAX_OVERHEAD_FRACTION:.0%} budget: ok"
        )

    snapshot = observer.live.snapshot()
    assert snapshot["heartbeats"] > 0, "live run emitted no heartbeats"
    assert snapshot["closed"], "hub not closed after the run"

    emit_bench_json(
        "live",
        {
            "rows": RELATION_ROWS,
            "observed_seconds": round(best["observed"], 6),
            "live_seconds": round(best["live"], 6),
            "served_seconds": round(best["served"], 6),
            "live_overhead_fraction": round(overheads["live"], 6),
            "served_overhead_fraction": round(overheads["served"], 6),
            "heartbeats": snapshot["heartbeats"],
            "final_progress": round(snapshot["progress"], 6),
            "note": (
                "overhead is live-vs-observed (the hub's own increment); "
                "the served arm keeps the status endpoint bound and "
                "listening for the whole run; heartbeat counts are "
                "time-throttled and therefore informational"
            ),
        },
        metrics=observer.metrics,
    )


# ---------------------------------------------------------------- pytest
@pytest.mark.parametrize(
    "live,serve",
    [(False, False), (True, False), (True, True)],
    ids=["observed", "live", "served"],
)
def test_live_wallclock(benchmark, live, serve):
    data = make_data(300)
    result = benchmark.pedantic(
        lambda: _run(data, live=live, serve=serve)[0],
        rounds=1,
        iterations=1,
    )
    assert len(result) > 0


if __name__ == "__main__":
    main()
