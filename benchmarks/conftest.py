"""pytest configuration for the benchmark suite.

Benchmarks live outside the package; each module inserts its own
directory on ``sys.path`` so ``common`` resolves whether invoked through
pytest or directly.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
