"""Markdown summary of columnar-vs-records data-plane speedups.

Reads the freshly generated ``BENCH_executors.json`` and
``BENCH_shuffle_sort.json`` (see ``emit_bench_json`` in
:mod:`benchmarks.common`) and prints a GitHub-flavoured markdown table
of the columnar plane's wall-clock ratios — CI appends it to
``$GITHUB_STEP_SUMMARY`` so every run shows the cross-plane numbers
without digging through artifacts.

Purely presentational: the pass/fail verdict on these numbers lives in
``check_regression.py``.  Artifacts recorded before the columnar arms
existed render as an explanatory note instead of failing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

EXECUTORS = ("serial", "threads", "processes")


def _load(bench_dir: str, filename: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(bench_dir, filename)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def executor_table(artifact: Optional[Dict[str, Any]]) -> List[str]:
    lines = ["### Executor workloads (records ÷ columnar wall-clock)", ""]
    workloads = (artifact or {}).get("results", {}).get("workloads", [])
    rows = [
        row
        for row in workloads
        if any(f"{e}_columnar_seconds" in row for e in EXECUTORS)
    ]
    if not rows:
        lines.append(
            "_no columnar arms in BENCH_executors.json — artifact predates "
            "the columnar data plane_"
        )
        return lines
    lines += [
        "| workload | executor | records s | columnar s | columnar × |",
        "| --- | --- | ---: | ---: | ---: |",
    ]
    for row in rows:
        for executor in EXECUTORS:
            records = row.get(f"{executor}_seconds")
            columnar = row.get(f"{executor}_columnar_seconds")
            speedup = row.get(f"{executor}_columnar_speedup")
            if records is None or columnar is None:
                continue
            lines.append(
                f"| {row.get('workload', '?')} | {executor} "
                f"| {records:.3f} | {columnar:.3f} "
                f"| {speedup:.2f} |"
            )
    return lines


def shuffle_table(artifact: Optional[Dict[str, Any]]) -> List[str]:
    lines = ["### Shuffle micro-benchmark", ""]
    results = (artifact or {}).get("results", {})
    if "columnar_shuffle_seconds" not in results:
        lines.append(
            "_no columnar arm in BENCH_shuffle_sort.json — artifact "
            "predates the columnar data plane_"
        )
        return lines
    lines += [
        "| comparison | records s | columnar s | columnar × |",
        "| --- | ---: | ---: | ---: |",
        (
            f"| key ordering (repr-sort vs argsort) "
            f"| {results.get('naive_double_sort_seconds', 0):.4f} "
            f"| {results.get('columnar_argsort_seconds', 0):.4f} "
            f"| {results.get('argsort_speedup', 0):.2f} |"
        ),
        (
            f"| end-to-end shuffle (grouping + routing) "
            f"| {results.get('records_shuffle_seconds', 0):.4f} "
            f"| {results.get('columnar_shuffle_seconds', 0):.4f} "
            f"| {results.get('columnar_speedup', 0):.2f} |"
        ),
    ]
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Print a markdown table of columnar-vs-records speedups from "
            "fresh BENCH_*.json artifacts."
        )
    )
    parser.add_argument(
        "--bench-dir",
        default=".",
        help="directory holding BENCH_executors.json / "
        "BENCH_shuffle_sort.json (default: current directory)",
    )
    args = parser.parse_args(argv)

    lines = ["## Data plane: columnar vs records", ""]
    lines += executor_table(_load(args.bench_dir, "BENCH_executors.json"))
    lines.append("")
    lines += shuffle_table(_load(args.bench_dir, "BENCH_shuffle_sort.json"))
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
