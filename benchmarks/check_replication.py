"""Gate the replication factor of a pinned RCCIS benchmark.

Replication factor — map output records ÷ map input records, per job —
is the paper's communication-cost currency (Tables 1-3 count the
intermediate pairs it produces).  Unlike wall clock it is fully
deterministic: the workload below is seeded, the simulator is
deterministic, so the factors must reproduce *exactly* on any host.  A
drift means an algorithm's routing changed — a correctness-adjacent
regression that the wall-clock gate can never see.

The gate runs the pinned workload, extracts per-job factors with
:class:`repro.obs.RunReport`, and compares them against the committed
``benchmarks/replication_baseline.json``::

    python benchmarks/check_replication.py             # gate (exit 1 on drift)
    python benchmarks/check_replication.py --update    # rewrite the baseline

``--tolerance`` (or ``$REPRO_REPLICATION_TOLERANCE``) loosens the bound;
the default 0.01 is slack for float formatting only, not for behaviour.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.dirname(__file__))

from common import run_algorithm  # noqa: E402

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.obs import RunReport, TraceRecorder  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

#: Environment variable overriding the default tolerance.
TOLERANCE_ENV = "REPRO_REPLICATION_TOLERANCE"

#: Absolute slack on each factor (scaled by max(expected, 1)).
DEFAULT_TOLERANCE = 0.01

#: Committed baseline, next to this script.
BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "replication_baseline.json"
)

#: The pinned workload: RCCIS on a seeded colocation query.
ALGORITHM = "rccis"
QUERY = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
RELATION_ROWS = 600
NUM_PARTITIONS = 8


def pinned_factors() -> Dict[str, float]:
    """Execute the pinned workload and return per-job replication."""
    data = {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=RELATION_ROWS,
                t_range=(0, 100_000),
                length_range=(1, 100),
                seed=index,
            ),
        )
        for index, name in enumerate(("R1", "R2", "R3"))
    }
    observer = TraceRecorder()
    run_algorithm(
        QUERY,
        data,
        ALGORITHM,
        num_partitions=NUM_PARTITIONS,
        observer=observer,
    )
    report = RunReport.from_recorder(observer)
    return {
        name: round(factor, 6)
        for name, factor in report.replication_factors.items()
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when the pinned RCCIS benchmark's replication "
        "factors drift from the committed baseline."
    )
    parser.add_argument(
        "--baseline", default=BASELINE_PATH,
        help=f"baseline JSON path (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help=f"allowed drift per factor (default {DEFAULT_TOLERANCE}, "
        f"or ${TOLERANCE_ENV})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from a fresh run instead of gating",
    )
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(
            os.environ.get(TOLERANCE_ENV, str(DEFAULT_TOLERANCE))
        )
    if tolerance < 0:
        parser.error("--tolerance must be non-negative")

    observed = pinned_factors()

    if args.update:
        document: Dict[str, Any] = {
            "workload": (
                f"{ALGORITHM} on {QUERY!s}, n={RELATION_ROWS} per "
                f"relation (seeds 0..2), {NUM_PARTITIONS} partitions"
            ),
            "factors": observed,
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.baseline}: {observed}")
        return 0

    if not os.path.exists(args.baseline):
        print(
            f"FAILED: baseline {args.baseline} not found "
            f"(run with --update to create it)"
        )
        return 1
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)

    expected: Dict[str, float] = baseline.get("factors", {})
    print(
        f"replication gate — {ALGORITHM} pinned workload, "
        f"tolerance {tolerance}"
    )
    failures = 0
    for job in sorted(set(expected) | set(observed)):
        want = expected.get(job)
        got = observed.get(job)
        if want is None or got is None:
            print(f"  [FAIL] {job}: baseline={want} fresh={got} (job set "
                  "changed)")
            failures += 1
            continue
        allowed = tolerance * max(want, 1.0)
        ok = abs(got - want) <= allowed
        status = "ok  " if ok else "FAIL"
        print(
            f"  [{status}] {job}: baseline={want} fresh={got} "
            f"(allowed +/-{allowed:.6f})"
        )
        failures += 0 if ok else 1
    if failures:
        print(f"FAILED: {failures} replication factor(s) drifted")
        return 1
    print(f"OK: {len(expected)} factor(s) within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
