"""Perf-trajectory history: BENCH_*.json snapshots over time.

Two subcommands maintain a long-lived record of how the benchmark
numbers move commit over commit:

``append``
    Reads every ``BENCH_*.json`` in ``--bench-dir`` and appends one
    JSONL record per artifact to ``--history`` (default
    ``BENCH_history.jsonl``): the benchmark name, the ``generated_at``
    timestamp and ``git_commit`` stamp from the artifact envelope, and
    a flat dict of the numeric wall-clock fields.  A record whose
    (benchmark, commit) pair is already present with identical numbers
    is skipped, so re-running CI on the same commit does not duplicate
    points.

``render``
    Turns the history into one self-contained HTML page (inline SVG, no
    JavaScript): per benchmark, one chart with a normalised line per
    tracked field — each series scaled to its own maximum so a 0.002 s
    sort and a 2 s run share an axis — the latest absolute value
    direct-labelled, plus a table of the newest snapshot.

Both run by default when invoked with no subcommand, which is what the
CI step does::

    python benchmarks/perf_history.py --bench-dir . \
        --history BENCH_history.jsonl --out perf_trajectory.html
"""

from __future__ import annotations

import argparse
import glob
import html as _html
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

#: Numeric payload fields tracked besides the ``*_seconds`` wall fields.
EXTRA_FIELDS = ("overhead_fraction",)

_CSS = """
body { margin: 0 auto; padding: 24px; max-width: 980px;
       background: #fcfcfb; color: #0b0b0b;
       font: 14px/1.5 system-ui, sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: #52514e; margin: 0 0 16px; }
.card { border: 1px solid #e1e0d9; border-radius: 8px;
        padding: 12px 14px; margin: 10px 0; }
table { border-collapse: collapse; font-size: 13px; }
th, td { text-align: right; padding: 3px 10px;
         border-bottom: 1px solid #e1e0d9; }
th:first-child, td:first-child { text-align: left;
  font-family: ui-monospace, Menlo, monospace; font-size: 12px; }
svg text { font: 11px system-ui, sans-serif; fill: #52514e; }
"""

#: Categorical series palette, cycled per field within a benchmark.
_PALETTE = (
    "#2a78d6", "#eb6834", "#1baf7a", "#8e5bd1", "#c7366f", "#8a7a12",
)


def wall_fields(results: Dict[str, Any]) -> Dict[str, float]:
    """Flatten one artifact's ``results`` into tracked numeric fields:
    every ``*_seconds`` number (top level and per workload row) plus
    :data:`EXTRA_FIELDS`."""
    fields: Dict[str, float] = {}

    def take(prefix: str, mapping: Dict[str, Any]) -> None:
        for key, value in mapping.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if key.endswith("_seconds") or key in EXTRA_FIELDS:
                fields[f"{prefix}{key}"] = float(value)

    take("", results)
    for row in results.get("workloads", []):
        name = row.get("workload", "?")
        take(f"{name}.", row)
    return fields


def load_history(path: str) -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def append_snapshots(bench_dir: str, history_path: str) -> int:
    """Append every BENCH_*.json in ``bench_dir``; returns how many new
    records were written."""
    entries = load_history(history_path)
    seen = {
        (entry.get("benchmark"), entry.get("git_commit")): entry.get("fields")
        for entry in entries
    }
    added = 0
    with open(history_path, "a", encoding="utf-8") as handle:
        for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
            with open(path, "r", encoding="utf-8") as artifact:
                document = json.load(artifact)
            name = document.get("benchmark") or os.path.basename(path)
            record = {
                "benchmark": name,
                "generated_at": document.get("generated_at"),
                "git_commit": document.get("git_commit"),
                "python": document.get("environment", {}).get("python"),
                "fields": wall_fields(document.get("results", {})),
            }
            if seen.get((name, record["git_commit"])) == record["fields"]:
                continue
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            seen[(name, record["git_commit"])] = record["fields"]
            added += 1
    print(f"{history_path}: {added} snapshot(s) appended")
    return added


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def _chart(series: Dict[str, List[Optional[float]]], points: int) -> str:
    """One normalised multi-line SVG chart; each series scaled to its
    own max so heterogeneous magnitudes share the plot."""
    width, height, pad = 760, 150, 10
    parts = [
        f'<svg role="img" width="{width}" height="{height + 20}" '
        'aria-label="perf trajectory">'
    ]
    step = (width - 2 * pad) / max(points - 1, 1)
    for index, (field, values) in enumerate(sorted(series.items())):
        peak = max((v for v in values if v is not None), default=0.0)
        if peak <= 0:
            continue
        colour = _PALETTE[index % len(_PALETTE)]
        coords = [
            (pad + i * step, pad + (height - 2 * pad) * (1 - v / peak))
            for i, v in enumerate(values)
            if v is not None
        ]
        if len(coords) == 1:
            x, y = coords[0]
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" '
                f'fill="{colour}"/>'
            )
        else:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            parts.append(
                f'<polyline points="{path}" fill="none" '
                f'stroke="{colour}" stroke-width="1.5"/>'
            )
        last = next(v for v in reversed(values) if v is not None)
        parts.append(
            f'<text x="{coords[-1][0] + 4:.1f}" y="{coords[-1][1]:.1f}" '
            f'fill="{colour}">{_esc(f"{last:.4g}")}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def render_page(history_path: str, out_path: str) -> None:
    entries = load_history(history_path)
    by_benchmark: Dict[str, List[Dict[str, Any]]] = {}
    for entry in entries:
        by_benchmark.setdefault(str(entry.get("benchmark")), []).append(entry)

    sections = []
    for name in sorted(by_benchmark):
        snapshots = by_benchmark[name]
        fields = sorted({f for s in snapshots for f in s.get("fields", {})})
        series = {
            field: [s.get("fields", {}).get(field) for s in snapshots]
            for field in fields
        }
        legend = " &#183; ".join(
            f'<span style="color:{_PALETTE[i % len(_PALETTE)]}">'
            f"{_esc(field)}</span>"
            for i, field in enumerate(fields)
        )
        latest = snapshots[-1]
        latest_fields = latest.get("fields", {})
        commit = str(latest.get("git_commit") or "?")[:12]
        table_rows = "".join(
            f"<tr><td>{_esc(field)}</td>"
            f"<td>{_esc(f'{latest_fields.get(field, 0):.4g}')}</td></tr>"
            for field in fields
        )
        sections.append(
            f"<h2>{_esc(name)}</h2>"
            f'<div class="card">'
            f'<p class="sub">{len(snapshots)} snapshot(s), latest '
            f"{_esc(latest.get('generated_at') or '?')} @ {_esc(commit)}"
            f"</p><p class=\"sub\">{legend}</p>"
            + _chart(series, len(snapshots))
            + f"<table><thead><tr><th>field</th><th>latest</th></tr>"
            f"</thead><tbody>{table_rows}</tbody></table>"
            "</div>"
        )

    page = (
        "<!DOCTYPE html>"
        '<html lang="en"><head><meta charset="utf-8"/>'
        "<title>repro perf trajectory</title>"
        f"<style>{_CSS}</style></head><body>"
        "<h1>repro perf trajectory</h1>"
        f'<p class="sub">{len(entries)} snapshot(s) from '
        f"{_esc(history_path)}; each series normalised to its own "
        "maximum, latest absolute value labelled</p>"
        + "".join(sections)
        + "</body></html>"
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(page)
    print(f"wrote {out_path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Append BENCH_*.json snapshots to a JSONL history "
        "and render the perf-trajectory page."
    )
    parser.add_argument(
        "action", nargs="?", default="both",
        choices=["append", "render", "both"],
    )
    parser.add_argument("--bench-dir", default=".",
                        help="directory holding fresh BENCH_*.json files")
    parser.add_argument("--history", default="BENCH_history.jsonl")
    parser.add_argument("--out", default="perf_trajectory.html")
    args = parser.parse_args(argv)

    if args.action in ("append", "both"):
        append_snapshots(args.bench_dir, args.history)
    if args.action in ("render", "both"):
        if not os.path.exists(args.history):
            print(f"error: no history at {args.history}", file=sys.stderr)
            return 1
        render_page(args.history, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
