"""Gate benchmark results against the committed baselines.

Compares freshly generated ``BENCH_*.json`` artifacts (see
``emit_bench_json`` in :mod:`benchmarks.common`) with the baselines
committed at the repository root and fails — exit status 1 — when a
wall-clock number regresses beyond the tolerance.

Two kinds of fields, two kinds of checks:

* **Wall-clock seconds** (``serial_seconds``, ``threads_seconds``,
  ``naive_double_sort_seconds``, …) are noisy and machine-dependent, so
  they pass while ``fresh <= baseline * (1 + tolerance)``.  Getting
  *faster* never fails.  The default tolerance is 0.25 (25 %),
  overridable per run with ``--tolerance`` or the
  ``REPRO_BENCH_TOLERANCE`` environment variable — CI uses a much looser
  bound because its machines differ from the one that recorded the
  baseline.
* **Deterministic fields** (``tuples``, ``rows``, ``modelled_seconds``,
  ``num_keys``) come from the simulator's cost model and the data
  generators, not the host, so they must match the baseline exactly.
  A drift here is a correctness bug, never noise.
* **Metrics snapshots** (the ``metrics`` field, a
  ``MetricsRegistry.as_dict`` dump) are fingerprinted: every family in
  the deterministic ``run`` group must match the baseline sample-for-
  sample, while the host-dependent ``wall`` group and the
  fault-injection ``faults`` group are explicitly allowlisted out of
  the comparison.  Run-group counters are executor- and
  fault-invariant by design, so any drift is a correctness bug.
  Baselines recorded before metrics snapshots existed still pass.
* **Informational fields** (``executor``, ``workers``, ``note``, the
  ``git_commit``/``generated_at``/``python`` provenance stamps, and the
  per-executor ``phases`` wall breakdowns) describe the measuring run
  and are never gated — old baselines without them pass, and new
  baselines carrying them do not fail runs from a different host.
  Replication-factor drift has its own dedicated gate,
  ``check_replication.py``, and cost-model prediction drift has
  ``check_model_error.py``.

Usage::

    python benchmarks/bench_executors.py      # writes BENCH_executors.json
    python benchmarks/bench_shuffle_sort.py   # writes BENCH_shuffle_sort.json
    python benchmarks/check_regression.py --fresh-dir . --baseline-dir <repo>

Derived ratios (``*_speedup``, ``speedup``) are reported but never
gated: they are quotients of two noisy numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Environment variable overriding the default wall-clock tolerance.
TOLERANCE_ENV = "REPRO_BENCH_TOLERANCE"

#: Relative slack allowed on wall-clock fields before a comparison fails.
DEFAULT_TOLERANCE = 0.25

#: The benchmark artifacts this gate knows about.
BENCH_FILES = (
    "BENCH_executors.json",
    "BENCH_shuffle_sort.json",
    "BENCH_explain.json",
    "BENCH_profile.json",
    "BENCH_live.json",
)

#: Fields that must match the baseline bit-for-bit (simulator-determined).
EXACT_FIELDS = frozenset({"tuples", "rows", "modelled_seconds", "num_keys"})

#: Fields compared with relative tolerance (host-dependent wall clock).
WALL_SUFFIX = "_seconds"

#: Fields that describe the run rather than measure it (executor label,
#: worker count, free-form notes).  Never gated and never required:
#: baselines recorded before these fields existed still pass, and
#: baselines recorded with them do not fail fresh runs from a
#: differently-provisioned host.
INFORMATIONAL_FIELDS = frozenset(
    {
        "executor",
        "workers",
        "note",
        # Provenance stamps (emit_bench_json envelope; also harmless if a
        # payload ever carries them): where/when the numbers came from,
        # never what they should be.
        "git_commit",
        "generated_at",
        "python",
        # Nested per-executor phase wall-clock breakdowns — pure
        # diagnostics, as host-dependent as any other wall number but
        # without a stable scalar to gate.
        "phases",
    }
)

#: Metric groups allowlisted out of the ``metrics`` fingerprint: the
#: ``wall`` group is host wall-clock (noise by definition), the
#: ``faults`` group depends on whether the run injected faults, the
#: ``profile`` group is the data-plane profiler's CPU/memory/pickle
#: accounting (host-dependent and only present on profiled runs), and
#: the ``live`` group is the telemetry hub's heartbeat/progress/ETA
#: state (time-throttled beats and wall-clock ETAs, only present on
#: monitored runs).  Every other group — in practice ``run`` — is
#: deterministic and compared sample-for-sample.
SKIPPED_METRIC_GROUPS = frozenset({"wall", "faults", "profile", "live"})


class Comparison:
    """One field-level comparison between baseline and fresh values."""

    def __init__(
        self,
        label: str,
        field: str,
        baseline: Any,
        fresh: Any,
        ok: bool,
        note: str,
    ) -> None:
        self.label = label
        self.field = field
        self.baseline = baseline
        self.fresh = fresh
        self.ok = ok
        self.note = note

    def render(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        return (
            f"  [{status}] {self.label}.{self.field}: "
            f"baseline={self.baseline} fresh={self.fresh} ({self.note})"
        )


def _load(path: str) -> Optional[Dict[str, Any]]:
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _compare_scalar(
    label: str, field: str, baseline: Any, fresh: Any, tolerance: float
) -> Optional[Comparison]:
    """Compare one field; ``None`` means the field is not gated."""
    if field in EXACT_FIELDS:
        ok = baseline == fresh
        return Comparison(
            label, field, baseline, fresh, ok, "exact match required"
        )
    if field.endswith(WALL_SUFFIX) and isinstance(baseline, (int, float)):
        if not isinstance(fresh, (int, float)) or baseline <= 0:
            return Comparison(
                label, field, baseline, fresh, False, "not comparable"
            )
        ratio = fresh / baseline
        ok = ratio <= 1.0 + tolerance
        return Comparison(
            label,
            field,
            baseline,
            fresh,
            ok,
            f"ratio {ratio:.2f}, tolerance +{tolerance:.0%}",
        )
    return None


def _metric_fingerprint(
    snapshot: Dict[str, Any],
) -> Dict[str, Tuple[Tuple[Any, Any], ...]]:
    """``family name -> sorted (labels, value) samples`` for every
    family outside the allowlisted noisy groups."""
    families: Dict[str, Tuple[Tuple[Any, Any], ...]] = {}
    for name, entry in snapshot.items():
        if not isinstance(entry, dict):
            continue
        if entry.get("group") in SKIPPED_METRIC_GROUPS:
            continue
        families[name] = tuple(
            sorted(
                (tuple(sample.get("labels", ())), sample.get("value"))
                for sample in entry.get("samples", ())
            )
        )
    return families


def _compare_metrics(
    label: str, baseline: Any, fresh: Any
) -> Iterable[Comparison]:
    """Fingerprint comparison of two ``MetricsRegistry.as_dict``
    snapshots (deterministic groups only, see SKIPPED_METRIC_GROUPS)."""
    if not isinstance(baseline, dict):
        return
    if not isinstance(fresh, dict):
        yield Comparison(
            label, "metrics", "snapshot", fresh, False,
            "metrics snapshot missing from fresh run",
        )
        return
    base_families = _metric_fingerprint(baseline)
    fresh_families = _metric_fingerprint(fresh)
    for name in sorted(set(base_families) | set(fresh_families)):
        field = f"metrics.{name}"
        if name not in fresh_families:
            yield Comparison(
                label, field, "present", "absent", False,
                "deterministic family missing from fresh run",
            )
        elif name not in base_families:
            yield Comparison(
                label, field, "absent", "present", False,
                "deterministic family absent from baseline "
                "(regenerate the baseline)",
            )
        else:
            ok = base_families[name] == fresh_families[name]
            yield Comparison(
                label,
                field,
                f"{len(base_families[name])} sample(s)",
                f"{len(fresh_families[name])} sample(s)",
                ok,
                "run-group fingerprint, exact match required"
                if ok
                else "sample values drifted from the baseline",
            )


def _compare_mapping(
    label: str,
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    tolerance: float,
) -> Iterable[Comparison]:
    for field, base_value in sorted(baseline.items()):
        if field in INFORMATIONAL_FIELDS:
            continue
        if field == "metrics":
            yield from _compare_metrics(label, base_value, fresh.get(field))
            continue
        if field not in fresh:
            yield Comparison(
                label, field, base_value, None, False, "missing from fresh run"
            )
            continue
        comparison = _compare_scalar(
            label, field, base_value, fresh[field], tolerance
        )
        if comparison is not None:
            yield comparison


def compare_results(
    name: str,
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    tolerance: float,
) -> List[Comparison]:
    """Compare the ``results`` payloads of one benchmark artifact."""
    comparisons: List[Comparison] = []
    base_results = baseline.get("results", {})
    fresh_results = fresh.get("results", {})

    base_workloads = {
        row.get("workload"): row
        for row in base_results.get("workloads", [])
    }
    fresh_workloads = {
        row.get("workload"): row
        for row in fresh_results.get("workloads", [])
    }
    for workload, base_row in sorted(base_workloads.items()):
        label = f"{name}:{workload}"
        fresh_row = fresh_workloads.get(workload)
        if fresh_row is None:
            comparisons.append(
                Comparison(
                    label, "workload", workload, None, False,
                    "workload missing from fresh run",
                )
            )
            continue
        comparisons.extend(
            _compare_mapping(label, base_row, fresh_row, tolerance)
        )

    scalars = {
        field: value
        for field, value in base_results.items()
        if field != "workloads"
    }
    comparisons.extend(
        _compare_mapping(name, scalars, fresh_results, tolerance)
    )
    return comparisons


def check(
    baseline_dir: str, fresh_dir: str, tolerance: float
) -> Tuple[List[Comparison], List[str]]:
    """Run every known artifact through the gate.

    Returns the comparisons plus a list of structural errors (missing
    files) that fail the gate on their own.
    """
    comparisons: List[Comparison] = []
    errors: List[str] = []
    for filename in BENCH_FILES:
        baseline = _load(os.path.join(baseline_dir, filename))
        fresh = _load(os.path.join(fresh_dir, filename))
        if baseline is None:
            errors.append(f"baseline {filename} not found in {baseline_dir}")
            continue
        if fresh is None:
            errors.append(f"fresh {filename} not found in {fresh_dir}")
            continue
        comparisons.extend(
            compare_results(
                baseline.get("benchmark", filename), baseline, fresh, tolerance
            )
        )
    return comparisons, errors


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Fail when fresh BENCH_*.json results regress against the "
            "committed baselines."
        )
    )
    parser.add_argument(
        "--baseline-dir",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="directory holding the committed BENCH_*.json baselines "
        "(default: the repository root)",
    )
    parser.add_argument(
        "--fresh-dir",
        default=".",
        help="directory holding the freshly generated BENCH_*.json "
        "artifacts (default: current directory)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=f"allowed relative wall-clock slowdown (default "
        f"{DEFAULT_TOLERANCE}, or ${TOLERANCE_ENV})",
    )
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(
            os.environ.get(TOLERANCE_ENV, str(DEFAULT_TOLERANCE))
        )
    if tolerance < 0:
        parser.error("--tolerance must be non-negative")

    comparisons, errors = check(args.baseline_dir, args.fresh_dir, tolerance)

    print(
        f"bench regression gate — tolerance +{tolerance:.0%} on wall clock, "
        f"exact on {', '.join(sorted(EXACT_FIELDS))}"
    )
    for comparison in comparisons:
        print(comparison.render())
    for error in errors:
        print(f"  [FAIL] {error}")

    failures = [c for c in comparisons if not c.ok]
    if failures or errors:
        print(
            f"FAILED: {len(failures)} regressed field(s), "
            f"{len(errors)} structural error(s)"
        )
        return 1
    print(f"OK: {len(comparisons)} field(s) within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
