"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's evaluation tables/figures
at laptop scale.  Data sizes are the paper's divided by a per-experiment
*scale factor*; the cost model's per-record coefficients are multiplied by
the same factor so modelled times land in the paper's magnitude range
while job-startup overhead stays fixed (startup does not shrink when data
does).  Absolute seconds are still not the point — the *shape* (who wins,
by what factor, where crossovers fall) is; EXPERIMENTS.md records both.

Each ``bench_*`` module exposes

* pytest-benchmark tests (small configurations, one round each) so
  ``pytest benchmarks/ --benchmark-only`` measures real wall-clock of the
  simulated stacks, and
* a ``main()`` that prints the full paper-style table; ``run_paper_tables``
  drives them all.
"""

from __future__ import annotations

import datetime
import itertools
import json
import os
import platform
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.executor import execute
from repro.core.query import IntervalJoinQuery
from repro.core.results import JoinResult
from repro.mapreduce.cost import CostModel
from repro.obs import ChromeTraceSink, TraceRecorder
from repro.stats import human_count, human_seconds, render_table

__all__ = [
    "scaled_cost_model",
    "run_algorithm",
    "trace_artifact_dir",
    "emit_bench_json",
    "git_commit",
    "human_count",
    "human_seconds",
    "render_table",
    "print_section",
]

#: Environment variable naming a directory for per-run trace artifacts.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Environment variable naming the directory BENCH_*.json artifacts go to
#: (default: the current working directory).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

_TRACE_SEQ = itertools.count(1)


def git_commit() -> Optional[str]:
    """The commit the numbers were measured at, or ``None``.

    Prefers ``$GITHUB_SHA`` (set by CI even in shallow/detached
    checkouts), then asks ``git rev-parse HEAD``; outside a repository
    the stamp is simply absent rather than an error.
    """
    sha = os.environ.get("GITHUB_SHA", "").strip()
    if sha:
        return sha
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def trace_artifact_dir() -> Optional[str]:
    """The directory benchmark trace artifacts go to, or ``None``.

    Set ``REPRO_TRACE_DIR=/some/dir`` (or pass ``trace_dir=`` to
    :func:`run_algorithm`) and every benchmark execution writes a
    Perfetto-loadable Chrome trace-event JSON there, one file per run.
    Default off: an unobserved run is bit-identical to the seed.
    """
    directory = os.environ.get(TRACE_DIR_ENV, "").strip()
    return directory or None


def scaled_cost_model(scale: float) -> CostModel:
    """The default cost model with per-record coefficients scaled up by
    the data down-scaling factor (see module docstring).

    ``output_cost`` is zeroed: the paper's reported times cannot include
    materialising the full join output (at its stated densities the
    output would exceed what the cluster could write by orders of
    magnitude), so its time shape is communication- and straggler-driven.
    All compared algorithms produce identical output anyway, so the term
    is a constant offset; EXPERIMENTS.md discusses this in detail.
    """
    base = CostModel()
    return CostModel(
        read_cost=base.read_cost * scale,
        shuffle_cost=base.shuffle_cost * scale,
        comparison_cost=base.comparison_cost * scale,
        output_cost=0.0,
        per_cycle_overhead=base.per_cycle_overhead,
        parallelism=base.parallelism,
    )


def run_algorithm(
    query: IntervalJoinQuery,
    data,
    algorithm: str,
    *,
    num_partitions: int = 16,
    cost_model: Optional[CostModel] = None,
    grid_parts: Optional[int] = None,
    trace_dir: Optional[str] = None,
    observer: Optional[TraceRecorder] = None,
) -> JoinResult:
    """Execute one algorithm with benchmark-friendly defaults.

    When ``trace_dir`` (or ``$REPRO_TRACE_DIR``) names a directory, the
    run is observed and a Chrome trace-event artifact
    ``<algorithm>-<seq>.trace.json`` is written there.  Pass your own
    ``observer`` instead to keep the recorder (spans, job results,
    metrics) after the call; it wins over ``trace_dir``.
    """
    from repro.core.planner import ALGORITHMS

    from repro.core.validation import validate_result

    trace_dir = trace_dir or trace_artifact_dir()
    owns_observer = observer is None
    if observer is None and trace_dir:
        trace_path = os.path.join(
            trace_dir, f"{algorithm}-{next(_TRACE_SEQ):03d}.trace.json"
        )
        observer = TraceRecorder(ChromeTraceSink(trace_path))

    if grid_parts is not None:
        cls = ALGORITHMS[algorithm]
        try:
            instance = cls(grid_parts=grid_parts)  # type: ignore[call-arg]
        except TypeError:
            instance = cls()
        result = execute(
            query,
            data,
            algorithm=instance,
            num_partitions=num_partitions,
            cost_model=cost_model or CostModel(),
            observer=observer,
        )
    else:
        result = execute(
            query,
            data,
            algorithm=algorithm,
            num_partitions=num_partitions,
            cost_model=cost_model or CostModel(),
            observer=observer,
        )
    if observer is not None and owns_observer:
        observer.close()
    # Every benchmark run self-checks: tuples satisfy the query, no
    # duplicates (scales where the reference oracle cannot).
    validate_result(result)
    return result


def emit_bench_json(
    name: str, payload: Dict[str, Any], metrics: Optional[Any] = None
) -> str:
    """Write a machine-readable benchmark artifact ``BENCH_<name>.json``.

    The file lands in ``$REPRO_BENCH_DIR`` (created if needed) or the
    current directory, and wraps ``payload`` in an envelope recording the
    environment the numbers were measured on — CPU count above all, since
    parallel-executor speedups are meaningless without it.  Every
    artifact also records the resolved ``executor`` and ``workers`` the
    numbers were measured with (informational to ``check_regression.py``)
    and ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry` or its
    ``as_dict`` snapshot) attaches the run's metric families — whose
    deterministic ``run`` group ``check_regression.py`` fingerprints
    against the baseline sample-for-sample (the ``wall`` and ``faults``
    groups stay allowlisted out).  Old baselines without a ``metrics``
    field still pass.  Returns the path written.
    """
    from repro.mapreduce.runner import resolve_executor, resolve_workers

    directory = os.environ.get(BENCH_DIR_ENV, "").strip() or "."
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    results = dict(payload)
    results.setdefault("executor", resolve_executor(None))
    results.setdefault("workers", resolve_workers(None))
    if metrics is not None:
        if hasattr(metrics, "as_dict"):
            metrics = metrics.as_dict()
        results["metrics"] = metrics
    document = {
        "benchmark": name,
        "generated_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "git_commit": git_commit(),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "results": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return path


def print_section(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
