"""Ablation A1 — partition-count / grid-granularity sweep.

How does the number of partitions (RCCIS) or the per-dimension grid
granularity (All-Matrix) trade communication against parallelism?  More
partitions means finer load spreading but more boundary-crossing
intervals to replicate (RCCIS) and more cells to fan out to (grids).
The paper fixes 16 reducers / o=6 grids; this sweep shows those choices
sit on a flat region of the curve.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    human_count,
    human_seconds,
    print_section,
    render_table,
    run_algorithm,
    scaled_cost_model,
)

from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

SCALE = 2_000.0
Q1 = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)
Q2 = IntervalJoinQuery.parse(
    [("R1", "before", "R2"), ("R2", "before", "R3")]
)


def colocation_data(n: int = 2_000):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=n, t_range=(0, 100_000), length_range=(1, 1_000), seed=seed
            ),
        )
        for seed, name in enumerate(("R1", "R2", "R3"))
    }


def sequence_data(n: int = 100):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=n, t_range=(0, 1_000), length_range=(1, 100), seed=seed
            ),
        )
        for seed, name in enumerate(("R1", "R2", "R3"))
    }


def main() -> None:
    cost = scaled_cost_model(SCALE)

    print_section("Ablation A1a — RCCIS vs #partitions (Q1, nI = 2000)")
    data = colocation_data()
    rows = []
    for parts in (2, 4, 8, 16, 32, 64):
        result = run_algorithm(
            Q1, data, "rccis", num_partitions=parts, cost_model=cost
        )
        rows.append(
            [
                parts,
                human_seconds(result.metrics.simulated_seconds),
                human_count(result.metrics.replicated_intervals),
                human_count(result.metrics.shuffled_records),
                human_count(result.metrics.max_reducer_load),
            ]
        )
    print(
        render_table(
            "",
            ["partitions", "time", "#replicated", "pairs", "max load"],
            rows,
            note="replication grows with boundary density; straggler "
            "shrinks with parallelism — the paper's 16 sits in the flat "
            "middle",
        )
    )

    print_section(
        "Ablation A1b — All-Matrix vs grid granularity o (Q2, nI = 100)"
    )
    data = sequence_data()
    rows = []
    for o in (2, 3, 4, 6, 8):
        result = run_algorithm(
            Q2, data, "all_matrix", num_partitions=o,
            cost_model=cost, grid_parts=o,
        )
        rows.append(
            [
                o,
                f"{result.metrics.consistent_reducers}/"
                f"{result.metrics.total_reducers}",
                human_seconds(result.metrics.simulated_seconds),
                human_count(result.metrics.shuffled_records),
                human_count(result.metrics.max_reducer_load),
            ]
        )
    print(
        render_table(
            "",
            ["o", "consistent/total", "time", "pairs", "max cell load"],
            rows,
            note="fan-out grows ~o^(m-1)/m per interval; straggler "
            "shrinks ~o^m — the sweet spot balances the two",
        )
    )


@pytest.mark.parametrize("parts", [4, 16, 64])
def test_ablation_partitions_bench(benchmark, parts):
    data = colocation_data(800)
    cost = scaled_cost_model(SCALE)
    result = benchmark.pedantic(
        lambda: run_algorithm(
            Q1, data, "rccis", num_partitions=parts, cost_model=cost
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result) > 0


if __name__ == "__main__":
    main()
