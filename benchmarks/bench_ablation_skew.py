"""Ablation A2 — skewed start-point distributions and equi-depth
partitioning.

The paper's evaluation uses uniform start points; its skew handling is
only sketched ("we carried out experiments varying dS ... similar
results").  This ablation makes the skew story concrete: under heavily
skewed start points, equi-width partitions funnel most intervals into a
few reducers; boundary-at-quantile (equi-depth) partitioning — this
library's extension — restores balance at identical output.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

from common import (  # noqa: E402
    human_count,
    human_seconds,
    print_section,
    render_table,
    run_algorithm,
    scaled_cost_model,
)

from repro.core.executor import execute  # noqa: E402
from repro.core.query import IntervalJoinQuery  # noqa: E402
from repro.stats import load_balance  # noqa: E402
from repro.workloads import SyntheticConfig, generate_relation  # noqa: E402

SCALE = 2_000.0
Q1 = IntervalJoinQuery.parse(
    [("R1", "overlaps", "R2"), ("R2", "overlaps", "R3")]
)


def skewed_data(distribution: str, n: int = 1_000):
    return {
        name: generate_relation(
            name,
            SyntheticConfig(
                n=n,
                start_dist=distribution,
                t_range=(0, 100_000),
                length_range=(1, 150),
                seed=seed,
            ),
        )
        for seed, name in enumerate(("R1", "R2", "R3"))
    }


def run_pair(distribution: str):
    data = skewed_data(distribution)
    cost = scaled_cost_model(SCALE)
    width = execute(
        Q1, data, algorithm="rccis", num_partitions=16,
        cost_model=cost, partition_strategy="uniform",
    )
    depth = execute(
        Q1, data, algorithm="rccis", num_partitions=16,
        cost_model=cost, partition_strategy="equi_depth",
    )
    assert width.same_output(depth)
    return width, depth


def main() -> None:
    print_section(
        "Ablation A2 — skewed dS: equi-width vs equi-depth partitioning "
        "(RCCIS, Q1, nI = 1000, 16 partitions)"
    )
    rows = []
    for distribution in ("uniform", "normal", "exponential", "zipf"):
        width, depth = run_pair(distribution)
        wb = load_balance(width.metrics.reducer_loads)
        db = load_balance(depth.metrics.reducer_loads)
        rows.append(
            [
                distribution,
                human_seconds(width.metrics.simulated_seconds),
                f"{wb.imbalance:.1f}",
                human_seconds(depth.metrics.simulated_seconds),
                f"{db.imbalance:.1f}",
                human_count(len(width)),
            ]
        )
    print(
        render_table(
            "",
            [
                "dS", "t equi-width", "max/mean", "t equi-depth",
                "max/mean", "output",
            ],
            rows,
            note="equi-depth keeps reducer loads near-uniform under "
            "skew; identical join output in all cases",
        )
    )


def test_equi_depth_improves_balance_under_zipf():
    width, depth = run_pair("zipf")
    wb = load_balance(width.metrics.reducer_loads)
    db = load_balance(depth.metrics.reducer_loads)
    assert db.imbalance < wb.imbalance


@pytest.mark.parametrize("strategy", ["uniform", "equi_depth"])
def test_ablation_skew_bench(benchmark, strategy):
    data = skewed_data("zipf", 400)
    cost = scaled_cost_model(SCALE)
    result = benchmark.pedantic(
        lambda: execute(
            Q1, data, algorithm="rccis", num_partitions=16,
            cost_model=cost, partition_strategy=strategy,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result) >= 0


if __name__ == "__main__":
    main()
